//! Differential tests for the vectorized scanning module: every kernel
//! tier (scalar / SWAR / SSE2 / AVX2) must be byte-identical to the
//! scalar reference on adversarial inputs, and the full lexer must
//! produce identical token streams under every forced kernel × chunk
//! size combination — including chunk-boundary straddles.

use gcx_xml::scan::{self, ScanKernel};
use gcx_xml::{TagInterner, XmlLexer, XmlToken};
use std::io::Read;

/// Deterministic xorshift64* so the random corpus is reproducible.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn byte_from(&mut self, alphabet: &[u8]) -> u8 {
        alphabet[(self.next_u64() % alphabet.len() as u64) as usize]
    }
}

/// Asserts every available kernel agrees with the scalar reference on
/// all five scan primitives over `hay`.
fn assert_kernels_agree(hay: &[u8], ctx: &str) {
    let fb = scan::find_byte_with(ScanKernel::Scalar, hay, b'<');
    let fb2 = scan::find_byte2_with(ScanKernel::Scalar, hay, b'<', b'&');
    let fb3 = scan::find_byte3_with(ScanKernel::Scalar, hay, b'>', b'"', b'\'');
    let fnw = scan::find_non_ws_with(ScanKernel::Scalar, hay);
    let nrl = scan::name_run_len_with(ScanKernel::Scalar, hay);
    for k in ScanKernel::available() {
        assert_eq!(
            scan::find_byte_with(k, hay, b'<'),
            fb,
            "find_byte {k:?} {ctx} len={}",
            hay.len()
        );
        assert_eq!(
            scan::find_byte2_with(k, hay, b'<', b'&'),
            fb2,
            "find_byte2 {k:?} {ctx} len={}",
            hay.len()
        );
        assert_eq!(
            scan::find_byte3_with(k, hay, b'>', b'"', b'\''),
            fb3,
            "find_byte3 {k:?} {ctx} len={}",
            hay.len()
        );
        assert_eq!(
            scan::find_non_ws_with(k, hay),
            fnw,
            "find_non_ws {k:?} {ctx} len={}",
            hay.len()
        );
        assert_eq!(
            scan::name_run_len_with(k, hay),
            nrl,
            "name_run_len {k:?} {ctx} len={}",
            hay.len()
        );
    }
}

/// Target byte at every position of every length 0..=200 — covers the
/// 16-byte quick block, the 64-byte unrolled main loop, 16-byte tail
/// blocks and the scalar tail, plus the miss (no target) case.
#[test]
fn target_at_every_position() {
    for len in 0..=200usize {
        let base = vec![b'a'; len];
        assert_kernels_agree(&base, "miss");
        for pos in 0..len {
            for target in [b'<', b'&', b'>', b'"', b'\'', b' ', b'\n'] {
                let mut hay = base.clone();
                hay[pos] = target;
                assert_kernels_agree(&hay, "single-target");
            }
        }
    }
}

/// Name runs and whitespace runs of every length 0..=200, terminated at
/// every boundary class (run fills haystack, run ends mid-haystack).
#[test]
fn run_lengths_exhaustive() {
    for run in 0..=200usize {
        for tail_len in [0usize, 1, 3, 17, 65] {
            let mut name = vec![b'x'; run];
            name.extend(std::iter::repeat_n(b'<', tail_len));
            assert_kernels_agree(&name, "name-run");

            let mut ws = vec![b' '; run];
            ws.extend(std::iter::repeat_n(b'z', tail_len));
            assert_kernels_agree(&ws, "ws-run");
        }
    }
}

/// Every slice offset 0..64 into a random buffer: the kernels use
/// unaligned loads, so alignment must never change the answer.
#[test]
fn unaligned_slices() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    // Mostly filler, sparse structural bytes.
    let alphabet = b"aaaaaaaaaaaaaaaabcdefgh <>&\"'\n\t_-.:";
    let buf: Vec<u8> = (0..4096).map(|_| rng.byte_from(alphabet)).collect();
    for off in 0..64usize {
        for len in [
            0usize, 1, 7, 15, 16, 17, 31, 63, 64, 65, 79, 80, 81, 127, 128, 200, 1000,
        ] {
            if off + len <= buf.len() {
                assert_kernels_agree(&buf[off..off + len], "unaligned");
            }
        }
    }
}

/// SWAR borrow-chain adversaries: 0x01 bytes sit exactly one below a
/// zero, where the `wrapping_sub` trick can produce false carries in
/// lanes above the first true hit; 0x80/0xFF stress the sign bits the
/// masks are built from.
#[test]
fn swar_borrow_adversaries() {
    let patterns: &[&[u8]] = &[
        &[0x01; 40],
        &[0x00; 40],
        &[0xFF; 40],
        &[0x80; 40],
        &[0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00],
        b"\x1f\x1f\x1f\x1f<\x1f\x1f\x1f",
        b"\x01\x01\x01\x01\x01\x01\x01<",
    ];
    for p in patterns {
        for off in 0..p.len() {
            assert_kernels_agree(&p[off..], "borrow");
        }
    }
    // Target value adjacencies: for each probe byte b, haystacks of b-1,
    // b, b+1 in every arrangement over two words.
    for b in [b'<', b'&', b'>', b'"', b'\'', b' '] {
        let vals = [b.wrapping_sub(1), b, b.wrapping_add(1)];
        for i in 0..3 {
            for j in 0..3 {
                let mut hay = [vals[i]; 16];
                hay[9] = vals[j];
                assert_kernels_agree(&hay, "adjacent-value");
            }
        }
    }
}

/// Random haystacks from a structural-byte-rich alphabet.
#[test]
fn random_haystacks() {
    let mut rng = Rng(0xdead_beef_cafe_f00d);
    let alphabet = b"ab<>&\"' \t\r\nxyz_-.:]";
    for _ in 0..2000 {
        let len = (rng.next_u64() % 300) as usize;
        let hay: Vec<u8> = (0..len).map(|_| rng.byte_from(alphabet)).collect();
        assert_kernels_agree(&hay, "random");
    }
}

// ---------------------------------------------------------------------
// Lexer-level differential: full documents, forced kernels, chunked IO
// ---------------------------------------------------------------------

/// Feeds the lexer `chunk` bytes per `read` call so buffer windows end
/// at arbitrary byte positions — every scan must behave identically
/// when its target straddles a refill boundary.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Adversarial whole documents: overlapping CDATA terminators, comments
/// with dash runs, quoted `>` in attributes and DOCTYPE literals, PIs,
/// entity references, bachelor tags.
const DOCS: &[&str] = &[
    "<r><k><![CDATA[x]]]></k><after/></r>",
    "<r><k><![CDATA[y]]]]></k><!--z---><after/></r>",
    "<r><k><!-- </k> <x> -- almost --><e/></k><after/></r>",
    "<r><k a=\"1>2\" b='</k>' c=\"x'y\"><e f='a\"b>c'/></k><after/></r>",
    "<r><k><?pi </k> ?><e/></k><solo x=\"v>w\"/><after/></r>",
    "<r><k><!DOCTYPE d SYSTEM \"a>b\" [<!ENTITY e 'v>w'>]><e/></k><after/></r>",
    "<r><k>&lt;&amp;&#65;<e>&quot;</e></k><after>&gt;</after></r>",
    "<r><k>t1<e>t2</e\t>t3<e />t4</k ><after/></r>",
];

/// Builds a larger-than-one-buffer document (several 64 KiB refills)
/// whose dead subtree mixes long text runs (AVX2 main-loop territory),
/// CDATA, comments and dense markup.
fn big_doc() -> String {
    let mut doc = String::from("<r><live>head</live><k>");
    let long_text = "lorem ipsum dolor sit amet consectetur adipiscing elit ".repeat(8);
    for i in 0..220 {
        doc.push_str("<item id='");
        doc.push_str(&i.to_string());
        doc.push_str("' note=\"a>b\"><name>n</name><desc>");
        doc.push_str(&long_text);
        doc.push_str("</desc><!-- dead > comment --><blob><![CDATA[tail x]]]></blob></item>");
    }
    doc.push_str("</k><after>tail</after></r>");
    doc
}

/// Renders a full token stream, optionally skipping the subtree of
/// every element named `k` via `skip_subtree`.
fn lex_tokens(doc: &[u8], chunk: usize, skip_k: bool) -> Vec<String> {
    let mut tags = TagInterner::new();
    let k = tags.intern("k");
    let reader = ChunkedReader {
        data: doc.to_vec(),
        pos: 0,
        chunk,
    };
    let mut lexer = XmlLexer::new(reader, &mut tags);
    let mut out = Vec::new();
    while let Some(t) = lexer.next_token().expect("lex") {
        let is_k_open = matches!(t, XmlToken::Open(id) if id == k);
        out.push(format!("{:?}", t));
        if skip_k && is_k_open {
            let skipped = lexer.skip_subtree().expect("skip");
            out.push(format!("skipped={skipped}"));
        }
    }
    assert!(lexer.document_done());
    out
}

/// The one test that mutates the process-wide kernel selection: drives
/// whole documents through every available kernel at several chunk
/// sizes and demands identical token streams (plain and skip mode).
/// Kept as a single #[test] so the global force never races a parallel
/// test; the `_with`-based tests above never read the global.
#[test]
fn lexer_identical_under_all_kernels() {
    let orig = scan::active_kernel();
    let big = big_doc();
    let mut docs: Vec<&[u8]> = DOCS.iter().map(|d| d.as_bytes()).collect();
    docs.push(big.as_bytes());

    // References: scalar kernel, whole-buffer reads.
    let mut reference = Vec::new();
    scan::force_kernel(ScanKernel::Scalar);
    for doc in &docs {
        reference.push((
            lex_tokens(doc, usize::MAX, false),
            lex_tokens(doc, usize::MAX, true),
        ));
    }

    for kernel in ScanKernel::available() {
        scan::force_kernel(kernel);
        assert_eq!(scan::active_kernel(), kernel);
        for (di, doc) in docs.iter().enumerate() {
            for chunk in [1usize, 2, 3, 7, 64, 4096, usize::MAX] {
                let plain = lex_tokens(doc, chunk, false);
                assert_eq!(
                    plain, reference[di].0,
                    "plain stream differs: kernel={kernel:?} doc={di} chunk={chunk}"
                );
                let skipped = lex_tokens(doc, chunk, true);
                assert_eq!(
                    skipped, reference[di].1,
                    "skip stream differs: kernel={kernel:?} doc={di} chunk={chunk}"
                );
            }
        }
    }
    scan::force_kernel(orig);
}
