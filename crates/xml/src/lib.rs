//! # gcx-xml — streaming XML substrate for GCX
//!
//! The GCX paper (Schmidt, Scherzinger, Koch; ICDE 2007) operates on XML
//! *streams*: sequences of opening tags, closing tags and character data,
//! dual to unranked ordered labeled trees (paper §2). This crate provides
//! that substrate, built from scratch:
//!
//! * [`TagInterner`] — the symbol table replacing tag names by integers
//!   (paper §6, "Buffer Representation").
//! * [`XmlToken`] — the stream event model.
//! * [`lexer::XmlLexer`] — a pull-based streaming tokenizer over any
//!   [`std::io::Read`], with the attribute→subelement conversion the paper
//!   applied to its benchmark data.
//! * [`writer::XmlWriter`] — an escaping stream writer (used for query
//!   output and by the XMark generator).
//! * [`tree::Document`] — a simple DOM used by the in-memory baseline
//!   engines and as the reference for document projection (paper Def. 1).

pub mod error;
pub mod lexer;
pub mod scan;
pub mod tags;
pub mod token;
pub mod tree;
pub mod writer;

pub use error::XmlError;
pub use lexer::{AttributeMode, LexerOptions, WhitespaceMode, XmlLexer};
pub use scan::ScanKernel;
pub use tags::{FxBuildHasher, FxHasher, TagId, TagInterner};
pub use token::{XmlEvent, XmlToken};
pub use tree::{Document, NodeId, NodeKind};
pub use writer::{CountingSink, XmlWriter};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, XmlError>;
