//! Vectorized structural byte scanning for the streaming lexer.
//!
//! After skip-mode lexing (dead subtrees consumed as raw bytes), the
//! byte-level scan loops *are* the throughput bound: 66–99 % of XMark
//! input is consumed looking for the next `<`, the closing quote of an
//! attribute value, or a comment/CDATA terminator. This module provides
//! memchr-style primitives for exactly those scans, with three kernel
//! tiers selected once at runtime:
//!
//! * **AVX2** (32-byte blocks) and **SSE2** (16-byte blocks) via
//!   `std::arch` intrinsics, runtime-detected with
//!   `is_x86_feature_detected!` — no external crates, the build is
//!   offline.
//! * **SWAR** — a portable wide-word fallback processing 8 bytes per
//!   `u64` with the classic zero-byte trick, used on non-x86_64 targets.
//! * **Scalar** — the reference implementation every other kernel must
//!   match byte for byte (see `tests/scan_differential.rs`).
//!
//! All primitives are pure functions over `&[u8]` returning indices
//! *relative to the slice*; chunk-boundary correctness is the caller's
//! concern (the lexer re-invokes them after every buffer refill, and the
//! differential suite proves a target straddling a refill behaves
//! identically to the scalar path).
//!
//! Kernel selection: the best available kernel is chosen on first use.
//! `GCX_SCAN_KERNEL=scalar|swar|sse2|avx2|auto` forces a specific tier
//! (requests for an unavailable tier fall back to the best available),
//! and building `gcx-xml` with the `force-scalar` feature pins the
//! scalar kernel at compile time so CI can exercise the fallback on
//! AVX2 machines.

use std::sync::atomic::{AtomicU8, Ordering};

/// A scanning kernel tier. Ordered from reference to fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKernel {
    /// Byte-at-a-time reference implementation.
    Scalar,
    /// Portable 8-bytes-per-`u64` wide-word kernel.
    Swar,
    /// 16-byte SSE2 blocks (x86_64 baseline, always available there).
    Sse2,
    /// 32-byte AVX2 blocks (runtime-detected).
    Avx2,
}

impl ScanKernel {
    /// Stable lowercase name (env values, logs, bench reports).
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Scalar => "scalar",
            ScanKernel::Swar => "swar",
            ScanKernel::Sse2 => "sse2",
            ScanKernel::Avx2 => "avx2",
        }
    }

    /// Whether this kernel can run on the current machine.
    pub fn is_available(self) -> bool {
        match self {
            ScanKernel::Scalar | ScanKernel::Swar => true,
            #[cfg(target_arch = "x86_64")]
            ScanKernel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            ScanKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every kernel runnable on this machine (reference first).
    pub fn available() -> Vec<ScanKernel> {
        [
            ScanKernel::Scalar,
            ScanKernel::Swar,
            ScanKernel::Sse2,
            ScanKernel::Avx2,
        ]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
    }

    fn to_u8(self) -> u8 {
        match self {
            ScanKernel::Scalar => 1,
            ScanKernel::Swar => 2,
            ScanKernel::Sse2 => 3,
            ScanKernel::Avx2 => 4,
        }
    }

    fn from_u8(v: u8) -> Option<ScanKernel> {
        match v {
            1 => Some(ScanKernel::Scalar),
            2 => Some(ScanKernel::Swar),
            3 => Some(ScanKernel::Sse2),
            4 => Some(ScanKernel::Avx2),
            _ => None,
        }
    }
}

/// 0 = unresolved; otherwise `ScanKernel::to_u8`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn resolve_kernel() -> ScanKernel {
    let chosen = if cfg!(feature = "force-scalar") {
        ScanKernel::Scalar
    } else {
        let best = best_available();
        match std::env::var("GCX_SCAN_KERNEL").ok().as_deref() {
            Some("scalar") => ScanKernel::Scalar,
            Some("swar") => ScanKernel::Swar,
            Some("sse2") if ScanKernel::Sse2.is_available() => ScanKernel::Sse2,
            Some("avx2") if ScanKernel::Avx2.is_available() => ScanKernel::Avx2,
            // Unknown value, unavailable tier, or "auto": best available.
            _ => best,
        }
    };
    ACTIVE.store(chosen.to_u8(), Ordering::Relaxed);
    chosen
}

fn best_available() -> ScanKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            ScanKernel::Avx2
        } else {
            ScanKernel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    ScanKernel::Swar
}

/// The kernel all top-level scan functions dispatch to, resolved once
/// (feature pin → `GCX_SCAN_KERNEL` → best available).
#[inline]
pub fn active_kernel() -> ScanKernel {
    match ScanKernel::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        Some(k) => k,
        None => resolve_kernel(),
    }
}

/// Stable name of the active kernel (diagnostics, bench reports).
pub fn kernel_name() -> &'static str {
    active_kernel().name()
}

/// Overrides the active kernel process-wide. Testing hook: lets the
/// differential suite drive the full lexer through every kernel; the
/// request is clamped to an available tier.
pub fn force_kernel(k: ScanKernel) {
    let k = if k.is_available() {
        k
    } else {
        best_available()
    };
    ACTIVE.store(k.to_u8(), Ordering::Relaxed);
}

/// True for bytes allowed in element/attribute names (the lexer's name
/// grammar: ASCII alphanumerics plus `_ - . :`).
#[inline]
pub fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':'
}

/// Inline-SSE2 probe width used when the AVX2 kernel is active.
/// `#[target_feature]` functions cannot inline into their callers, so
/// every AVX2 scan is a real function call — pure overhead when the
/// match lands a few bytes in, which is the common case for the lexer
/// (whitespace gaps, names, inter-tag text runs are almost always well
/// under 128 bytes). The dispatch therefore runs an inlinable SSE2 scan
/// over the first `AVX2_PROBE` bytes and only hands the remainder to
/// the AVX2 call when the probe comes up empty, i.e. for genuinely long
/// runs where the wider vector amortizes the call.
#[cfg(target_arch = "x86_64")]
const AVX2_PROBE: usize = 128;

/// Dispatches one scan: Scalar/Swar/Sse2 directly (all inlinable), Avx2
/// as inline-SSE2 probe over the first [`AVX2_PROBE`] bytes, then the
/// out-of-line AVX2 call for the remainder.
macro_rules! dispatch {
    ($fn:ident, $hay:ident, ( $($arg:expr),* )) => {
        match active_kernel() {
            ScanKernel::Scalar => scalar::$fn($hay $(, $arg)*),
            ScanKernel::Swar => swar::$fn($hay $(, $arg)*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86_64 baseline.
            ScanKernel::Sse2 => unsafe { sse2::$fn($hay $(, $arg)*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2 is only selectable when runtime-detected.
            ScanKernel::Avx2 => unsafe {
                if $hay.len() <= AVX2_PROBE {
                    sse2::$fn($hay $(, $arg)*)
                } else {
                    match sse2::$fn(&$hay[..AVX2_PROBE] $(, $arg)*) {
                        Some(i) => Some(i),
                        None => avx2::$fn(&$hay[AVX2_PROBE..] $(, $arg)*)
                            .map(|p| AVX2_PROBE + p),
                    }
                }
            },
            #[cfg(not(target_arch = "x86_64"))]
            _ => swar::$fn($hay $(, $arg)*),
        }
    };
}

/// Index of the first occurrence of `b0` (memchr).
#[inline]
pub fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
    dispatch!(find_byte, hay, (b0))
}

/// Index of the first occurrence of `b0` or `b1`.
#[inline]
pub fn find_byte2(hay: &[u8], b0: u8, b1: u8) -> Option<usize> {
    dispatch!(find_byte2, hay, (b0, b1))
}

/// Index of the first occurrence of `b0`, `b1` or `b2`.
#[inline]
pub fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
    dispatch!(find_byte3, hay, (b0, b1, b2))
}

/// Index of the first byte that is *not* ASCII whitespace
/// (space, `\t`, `\n`, `\x0C`, `\r`).
#[inline]
pub fn find_non_ws(hay: &[u8]) -> Option<usize> {
    dispatch!(find_non_ws, hay, ())
}

/// Length of the leading run of name bytes (see [`is_name_byte`]).
#[inline]
pub fn name_run_len(hay: &[u8]) -> usize {
    match active_kernel() {
        ScanKernel::Scalar => scalar::name_run_len(hay),
        ScanKernel::Swar => swar::name_run_len(hay),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        ScanKernel::Sse2 => unsafe { sse2::name_run_len(hay) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only selectable when runtime-detected.
        ScanKernel::Avx2 => unsafe {
            if hay.len() <= AVX2_PROBE {
                sse2::name_run_len(hay)
            } else {
                let n = sse2::name_run_len(&hay[..AVX2_PROBE]);
                if n < AVX2_PROBE {
                    n
                } else {
                    AVX2_PROBE + avx2::name_run_len(&hay[AVX2_PROBE..])
                }
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => swar::name_run_len(hay),
    }
}

macro_rules! with_kernel {
    ($k:expr, $fn:ident ( $($arg:expr),* )) => {
        match $k {
            ScanKernel::Scalar => scalar::$fn($($arg),*),
            ScanKernel::Swar => swar::$fn($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86_64 baseline.
            ScanKernel::Sse2 => unsafe { sse2::$fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            ScanKernel::Avx2 => {
                assert!(ScanKernel::Avx2.is_available(), "AVX2 not available");
                // SAFETY: asserted above.
                unsafe { avx2::$fn($($arg),*) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => swar::$fn($($arg),*),
        }
    };
}

/// [`find_byte`] through an explicit kernel (differential tests).
pub fn find_byte_with(k: ScanKernel, hay: &[u8], b0: u8) -> Option<usize> {
    with_kernel!(k, find_byte(hay, b0))
}

/// [`find_byte2`] through an explicit kernel (differential tests).
pub fn find_byte2_with(k: ScanKernel, hay: &[u8], b0: u8, b1: u8) -> Option<usize> {
    with_kernel!(k, find_byte2(hay, b0, b1))
}

/// [`find_byte3`] through an explicit kernel (differential tests).
pub fn find_byte3_with(k: ScanKernel, hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
    with_kernel!(k, find_byte3(hay, b0, b1, b2))
}

/// [`find_non_ws`] through an explicit kernel (differential tests).
pub fn find_non_ws_with(k: ScanKernel, hay: &[u8]) -> Option<usize> {
    with_kernel!(k, find_non_ws(hay))
}

/// [`name_run_len`] through an explicit kernel (differential tests).
pub fn name_run_len_with(k: ScanKernel, hay: &[u8]) -> usize {
    with_kernel!(k, name_run_len(hay))
}

// ---------------------------------------------------------------------
// Monomorphizable ops for tight state machines
// ---------------------------------------------------------------------

/// Scan primitives as a monomorphizable trait: a caller driving a tight
/// per-item state machine (the lexer's `skip_subtree`) selects one impl
/// per buffer window, which hoists kernel dispatch — and, for the SIMD
/// impl, the vector splat constants — out of the per-item loop entirely.
pub trait ScanOps {
    fn find_byte(hay: &[u8], b0: u8) -> Option<usize>;
    fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize>;
}

/// [`ScanOps`] through the scalar reference kernel.
pub struct ScalarOps;

impl ScanOps for ScalarOps {
    #[inline]
    fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        scalar::find_byte(hay, b0)
    }

    #[inline]
    fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        scalar::find_byte3(hay, b0, b1, b2)
    }
}

/// [`ScanOps`] through the SWAR kernel.
pub struct SwarOps;

impl ScanOps for SwarOps {
    #[inline]
    fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        swar::find_byte(hay, b0)
    }

    #[inline]
    fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        swar::find_byte3(hay, b0, b1, b2)
    }
}

/// [`ScanOps`] through inline SSE2 — used for both the Sse2 and Avx2
/// tiers: inside a per-item state machine the runs are short, the
/// out-of-line AVX2 call cannot inline (`#[target_feature]`), and fully
/// inlined SSE2 with hoisted constants wins.
#[cfg(target_arch = "x86_64")]
pub struct SimdOps;

#[cfg(target_arch = "x86_64")]
impl ScanOps for SimdOps {
    #[inline]
    fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { sse2::find_byte(hay, b0) }
    }

    #[inline]
    fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { sse2::find_byte3(hay, b0, b1, b2) }
    }
}

// ---------------------------------------------------------------------
// Scalar reference kernel
// ---------------------------------------------------------------------

mod scalar {
    use super::is_name_byte;

    #[inline]
    pub fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        hay.iter().position(|&b| b == b0)
    }

    #[inline]
    pub fn find_byte2(hay: &[u8], b0: u8, b1: u8) -> Option<usize> {
        hay.iter().position(|&b| b == b0 || b == b1)
    }

    #[inline]
    pub fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        hay.iter().position(|&b| b == b0 || b == b1 || b == b2)
    }

    #[inline]
    pub fn find_non_ws(hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| !b.is_ascii_whitespace())
    }

    #[inline]
    pub fn name_run_len(hay: &[u8]) -> usize {
        hay.iter()
            .position(|&b| !is_name_byte(b))
            .unwrap_or(hay.len())
    }
}

// ---------------------------------------------------------------------
// SWAR kernel: 8 bytes per u64, no architecture assumptions beyond
// little-or-big-endian u64 loads (from_le_bytes pins the byte order).
// ---------------------------------------------------------------------

mod swar {
    use super::scalar;

    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;

    #[inline]
    fn splat(b: u8) -> u64 {
        LO * b as u64
    }

    #[inline]
    fn load(hay: &[u8], i: usize) -> u64 {
        u64::from_le_bytes(hay[i..i + 8].try_into().expect("8 bytes"))
    }

    /// High bit set in each byte of `x` that is zero — with possible
    /// false positives strictly *above* (more significant than) a true
    /// zero byte, because the borrow that creates them can only
    /// originate at a zero byte below. `trailing_zeros` therefore
    /// always lands on a true match (the classic memchr trick).
    #[inline]
    fn zero_mask_approx(x: u64) -> u64 {
        x.wrapping_sub(LO) & !x & HI
    }

    /// High bit set in *exactly* the zero bytes of `x` (no false
    /// positives: the per-byte add is masked to 7 bits, so no carry
    /// crosses byte lanes). Needed when a mask is complemented.
    #[inline]
    fn zero_mask_exact(x: u64) -> u64 {
        let y = (x & !HI).wrapping_add(!HI);
        !(y | x) & HI
    }

    /// High bit set in exactly the bytes within `[lo, hi]`
    /// (`lo <= hi <= 0x7f`; bytes with the top bit set never match).
    #[inline]
    fn range_mask_exact(w: u64, lo: u8, hi: u8) -> u64 {
        debug_assert!(lo <= hi && hi <= 0x7f);
        let heavy = w & HI;
        let w7 = w & !HI;
        let ge = w7.wrapping_add(splat(0x80 - lo)) & HI;
        let le = (LO * (0x80 + hi as u64)).wrapping_sub(w7) & HI;
        ge & le & !heavy
    }

    #[inline]
    fn first_index(mask: u64) -> usize {
        (mask.trailing_zeros() >> 3) as usize
    }

    #[inline]
    pub fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        let t0 = splat(b0);
        let mut i = 0;
        while i + 8 <= hay.len() {
            let m = zero_mask_approx(load(hay, i) ^ t0);
            if m != 0 {
                return Some(i + first_index(m));
            }
            i += 8;
        }
        scalar::find_byte(&hay[i..], b0).map(|p| i + p)
    }

    #[inline]
    pub fn find_byte2(hay: &[u8], b0: u8, b1: u8) -> Option<usize> {
        let (t0, t1) = (splat(b0), splat(b1));
        let mut i = 0;
        while i + 8 <= hay.len() {
            let w = load(hay, i);
            // OR of approximate masks: each mask's false positives sit
            // above its own true match, so the lowest set bit of the OR
            // is still a true match of one of the targets.
            let m = zero_mask_approx(w ^ t0) | zero_mask_approx(w ^ t1);
            if m != 0 {
                return Some(i + first_index(m));
            }
            i += 8;
        }
        scalar::find_byte2(&hay[i..], b0, b1).map(|p| i + p)
    }

    #[inline]
    pub fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        let (t0, t1, t2) = (splat(b0), splat(b1), splat(b2));
        let mut i = 0;
        while i + 8 <= hay.len() {
            let w = load(hay, i);
            let m = zero_mask_approx(w ^ t0) | zero_mask_approx(w ^ t1) | zero_mask_approx(w ^ t2);
            if m != 0 {
                return Some(i + first_index(m));
            }
            i += 8;
        }
        scalar::find_byte3(&hay[i..], b0, b1, b2).map(|p| i + p)
    }

    #[inline]
    pub fn find_non_ws(hay: &[u8]) -> Option<usize> {
        // ASCII whitespace: \t (09), \n (0A), \x0C, \r (0D), space (20).
        let sp = splat(b' ');
        let mut i = 0;
        while i + 8 <= hay.len() {
            let w = load(hay, i);
            let ws = range_mask_exact(w, 0x09, 0x0a)
                | range_mask_exact(w, 0x0c, 0x0d)
                | zero_mask_exact(w ^ sp);
            let non = !ws & HI;
            if non != 0 {
                return Some(i + first_index(non));
            }
            i += 8;
        }
        scalar::find_non_ws(&hay[i..]).map(|p| i + p)
    }

    #[inline]
    pub fn name_run_len(hay: &[u8]) -> usize {
        let mut i = 0;
        while i + 8 <= hay.len() {
            let w = load(hay, i);
            let name = range_mask_exact(w, b'a', b'z')
                | range_mask_exact(w, b'A', b'Z')
                | range_mask_exact(w, b'0', b'9')
                | zero_mask_exact(w ^ splat(b'_'))
                | zero_mask_exact(w ^ splat(b'-'))
                | zero_mask_exact(w ^ splat(b'.'))
                | zero_mask_exact(w ^ splat(b':'));
            let non = !name & HI;
            if non != 0 {
                return i + first_index(non);
            }
            i += 8;
        }
        i + scalar::name_run_len(&hay[i..])
    }
}

// ---------------------------------------------------------------------
// SSE2 kernel: 16-byte blocks. SSE2 is part of the x86_64 baseline, so
// these are callable whenever the target arch matches; they are still
// `unsafe fn` for uniformity with the AVX2 tier.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::scalar;
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn load(hay: &[u8], i: usize) -> __m128i {
        debug_assert!(i + 16 <= hay.len());
        _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i)
    }

    /// Movemask of bytes equal to any of up to three targets.
    #[inline]
    unsafe fn eq_any_mask(v: __m128i, targets: &[u8]) -> u32 {
        let mut acc = _mm_setzero_si128();
        for &t in targets {
            acc = _mm_or_si128(acc, _mm_cmpeq_epi8(v, _mm_set1_epi8(t as i8)));
        }
        _mm_movemask_epi8(acc) as u32
    }

    #[inline]
    pub unsafe fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        let t = _mm_set1_epi8(b0 as i8);
        let n = hay.len();
        let mut i = 0;
        if n >= 16 {
            // First block alone: most scans match within 16 bytes.
            let m = _mm_movemask_epi8(_mm_cmpeq_epi8(load(hay, 0), t)) as u32;
            if m != 0 {
                return Some(m.trailing_zeros() as usize);
            }
            i = 16;
            // 64-byte unrolled main loop for long runs: one OR-tree
            // branch per 64 bytes, exact position recovered from the
            // per-block masks only on a hit.
            while i + 64 <= n {
                let a = _mm_cmpeq_epi8(load(hay, i), t);
                let b = _mm_cmpeq_epi8(load(hay, i + 16), t);
                let c = _mm_cmpeq_epi8(load(hay, i + 32), t);
                let d = _mm_cmpeq_epi8(load(hay, i + 48), t);
                let any = _mm_or_si128(_mm_or_si128(a, b), _mm_or_si128(c, d));
                if _mm_movemask_epi8(any) != 0 {
                    let mask = _mm_movemask_epi8(a) as u64
                        | (_mm_movemask_epi8(b) as u64) << 16
                        | (_mm_movemask_epi8(c) as u64) << 32
                        | (_mm_movemask_epi8(d) as u64) << 48;
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 64;
            }
            while i + 16 <= n {
                let m = _mm_movemask_epi8(_mm_cmpeq_epi8(load(hay, i), t)) as u32;
                if m != 0 {
                    return Some(i + m.trailing_zeros() as usize);
                }
                i += 16;
            }
        }
        scalar::find_byte(&hay[i..], b0).map(|p| i + p)
    }

    #[inline]
    pub unsafe fn find_byte2(hay: &[u8], b0: u8, b1: u8) -> Option<usize> {
        let mut i = 0;
        while i + 16 <= hay.len() {
            let m = eq_any_mask(load(hay, i), &[b0, b1]);
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        scalar::find_byte2(&hay[i..], b0, b1).map(|p| i + p)
    }

    #[inline]
    pub unsafe fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        let mut i = 0;
        while i + 16 <= hay.len() {
            let m = eq_any_mask(load(hay, i), &[b0, b1, b2]);
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        scalar::find_byte3(&hay[i..], b0, b1, b2).map(|p| i + p)
    }

    #[inline]
    pub unsafe fn find_non_ws(hay: &[u8]) -> Option<usize> {
        let mut i = 0;
        while i + 16 <= hay.len() {
            let ws = eq_any_mask(load(hay, i), &[b' ', b'\t', b'\n', 0x0c, b'\r']);
            let non = !ws & 0xffff;
            if non != 0 {
                return Some(i + non.trailing_zeros() as usize);
            }
            i += 16;
        }
        scalar::find_non_ws(&hay[i..]).map(|p| i + p)
    }

    /// Movemask of bytes within `[lo, hi]` (unsigned, via max/min).
    #[inline]
    unsafe fn range_mask(v: __m128i, lo: u8, hi: u8) -> __m128i {
        let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, _mm_set1_epi8(lo as i8)), v);
        let le = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(hi as i8)), v);
        _mm_and_si128(ge, le)
    }

    #[inline]
    pub unsafe fn name_run_len(hay: &[u8]) -> usize {
        let mut i = 0;
        while i + 16 <= hay.len() {
            let v = load(hay, i);
            let mut name = _mm_or_si128(range_mask(v, b'a', b'z'), range_mask(v, b'A', b'Z'));
            name = _mm_or_si128(name, range_mask(v, b'0', b'9'));
            for t in [b'_', b'-', b'.', b':'] {
                name = _mm_or_si128(name, _mm_cmpeq_epi8(v, _mm_set1_epi8(t as i8)));
            }
            let non = !(_mm_movemask_epi8(name) as u32) & 0xffff;
            if non != 0 {
                return i + non.trailing_zeros() as usize;
            }
            i += 16;
        }
        i + scalar::name_run_len(&hay[i..])
    }
}

// ---------------------------------------------------------------------
// AVX2 kernel: 32-byte blocks; callers must have runtime-detected AVX2.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::sse2;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    unsafe fn load(hay: &[u8], i: usize) -> __m256i {
        debug_assert!(i + 32 <= hay.len());
        _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn eq_any_mask(v: __m256i, targets: &[u8]) -> u32 {
        let mut acc = _mm256_setzero_si256();
        for &t in targets {
            acc = _mm256_or_si256(acc, _mm256_cmpeq_epi8(v, _mm256_set1_epi8(t as i8)));
        }
        _mm256_movemask_epi8(acc) as u32
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn find_byte(hay: &[u8], b0: u8) -> Option<usize> {
        let t = _mm256_set1_epi8(b0 as i8);
        let mut i = 0;
        while i + 32 <= hay.len() {
            let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(load(hay, i), t)) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        sse2::find_byte(&hay[i..], b0).map(|p| i + p)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn find_byte2(hay: &[u8], b0: u8, b1: u8) -> Option<usize> {
        let mut i = 0;
        while i + 32 <= hay.len() {
            let m = eq_any_mask(load(hay, i), &[b0, b1]);
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        sse2::find_byte2(&hay[i..], b0, b1).map(|p| i + p)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn find_byte3(hay: &[u8], b0: u8, b1: u8, b2: u8) -> Option<usize> {
        let mut i = 0;
        while i + 32 <= hay.len() {
            let m = eq_any_mask(load(hay, i), &[b0, b1, b2]);
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        sse2::find_byte3(&hay[i..], b0, b1, b2).map(|p| i + p)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn find_non_ws(hay: &[u8]) -> Option<usize> {
        let mut i = 0;
        while i + 32 <= hay.len() {
            let ws = eq_any_mask(load(hay, i), &[b' ', b'\t', b'\n', 0x0c, b'\r']);
            let non = !ws;
            if non != 0 {
                return Some(i + non.trailing_zeros() as usize);
            }
            i += 32;
        }
        sse2::find_non_ws(&hay[i..]).map(|p| i + p)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn range_mask(v: __m256i, lo: u8, hi: u8) -> __m256i {
        let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, _mm256_set1_epi8(lo as i8)), v);
        let le = _mm256_cmpeq_epi8(_mm256_min_epu8(v, _mm256_set1_epi8(hi as i8)), v);
        _mm256_and_si256(ge, le)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn name_run_len(hay: &[u8]) -> usize {
        let mut i = 0;
        while i + 32 <= hay.len() {
            let v = load(hay, i);
            let mut name = _mm256_or_si256(range_mask(v, b'a', b'z'), range_mask(v, b'A', b'Z'));
            name = _mm256_or_si256(name, range_mask(v, b'0', b'9'));
            for t in [b'_', b'-', b'.', b':'] {
                name = _mm256_or_si256(name, _mm256_cmpeq_epi8(v, _mm256_set1_epi8(t as i8)));
            }
            let non = !(_mm256_movemask_epi8(name) as u32);
            if non != 0 {
                return i + non.trailing_zeros() as usize;
            }
            i += 32;
        }
        i + sse2::name_run_len(&hay[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_roundtrip() {
        for k in [
            ScanKernel::Scalar,
            ScanKernel::Swar,
            ScanKernel::Sse2,
            ScanKernel::Avx2,
        ] {
            assert_eq!(ScanKernel::from_u8(k.to_u8()), Some(k));
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn available_kernels_include_portables() {
        let avail = ScanKernel::available();
        assert!(avail.contains(&ScanKernel::Scalar));
        assert!(avail.contains(&ScanKernel::Swar));
        #[cfg(target_arch = "x86_64")]
        assert!(avail.contains(&ScanKernel::Sse2));
    }

    #[test]
    fn active_kernel_is_available() {
        assert!(active_kernel().is_available());
        assert_eq!(kernel_name(), active_kernel().name());
    }

    #[test]
    fn basic_scans_on_active_kernel() {
        let hay = b"hello <world> & \"quoted\" text with a longer tail to cross blocks....";
        assert_eq!(find_byte(hay, b'<'), Some(6));
        assert_eq!(find_byte(hay, b'z'), None);
        assert_eq!(find_byte2(hay, b'&', b'"'), Some(14));
        assert_eq!(find_byte3(hay, b'!', b'?', b'>'), Some(12));
        assert_eq!(find_non_ws(b"   \t\n x"), Some(6));
        assert_eq!(find_non_ws(b" \t "), None);
        assert_eq!(name_run_len(b"abc-d.e:f_9 rest"), 11);
        assert_eq!(name_run_len(b""), 0);
        assert_eq!(name_run_len(b"abcdefghijklmnopqrstuvwxyz0123456789"), 36);
    }

    /// The SWAR approximate-mask trick must still report exact first
    /// positions: targets adjacent to bytes that trigger borrow chains.
    #[test]
    fn swar_borrow_chain_adversaries() {
        // 0x01 bytes directly above a true match are the classic false
        // positive; the true match must still win.
        for k in ScanKernel::available() {
            let hay = [0x01u8, 0x01, b'<', 0x01, 0x01, 0x01, 0x01, 0x01, 0x01];
            assert_eq!(find_byte_with(k, &hay, b'<'), Some(2), "{k:?}");
            let hay2 = [b'=', 0x3d, b'<', b'=', b'<', 0x01, 0x3c, 0x3d];
            assert_eq!(find_byte_with(k, &hay2, b'<'), Some(2), "{k:?}");
            assert_eq!(find_byte2_with(k, &hay2, b'<', b'='), Some(0), "{k:?}");
        }
    }
}
