//! Tag interning: the "symbol table to replace tagnames by integers"
//! from §6 of the paper.
//!
//! Every distinct element name is mapped to a dense [`TagId`] so that the
//! buffer, the projection matcher and the evaluator compare `u32`s instead
//! of strings on the hot path.

use std::collections::HashMap;
use std::fmt;

/// Interned tag name. Dense, starts at 0, stable for the life of the
/// [`TagInterner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// The dense index of this tag.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between tag names and [`TagId`]s.
///
/// Interners are cheap to create; a single interner must be shared between
/// the query compiler and the stream lexer of one evaluation run so that
/// tag comparisons are meaningful.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    names: Vec<Box<str>>,
    ids: HashMap<Box<str>, TagId>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id when already present.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Looks up a tag without interning it.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// Resolves an id back to the tag name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct interned tags.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_ref()))
    }

    /// Approximate heap footprint of the interner in bytes (used by the
    /// buffer statistics so that "memory" numbers include the symbol table).
    pub fn approx_bytes(&self) -> usize {
        self.names.iter().map(|n| n.len() + 16).sum::<usize>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("bib");
        let b = t.intern("book");
        let a2 = t.intern("bib");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut t = TagInterner::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let id = t.intern(name);
            assert_eq!(id.index(), i);
            assert_eq!(t.name(id), *name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = TagInterner::new();
        assert!(t.get("x").is_none());
        t.intern("x");
        assert!(t.get("x").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = TagInterner::new();
        t.intern("one");
        t.intern("two");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["one", "two"]);
    }

    #[test]
    fn empty_interner() {
        let t = TagInterner::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
