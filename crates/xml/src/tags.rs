//! Tag interning: the "symbol table to replace tagnames by integers"
//! from §6 of the paper.
//!
//! Every distinct element name is mapped to a dense [`TagId`] so that the
//! buffer, the projection matcher and the evaluator compare `u32`s instead
//! of strings on the hot path.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A fast multiply-xor hasher (FxHash-style) for the interner's raw-bytes
/// lookup. Tag names are short, trusted identifiers, so a DoS-resistant
/// hash (SipHash, the `HashMap` default) wastes most of its cycles here —
/// this hasher is the difference between "one hash per opening tag" being
/// free and being visible in profiles.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        // Fold the length in so "ab" and "ab\0" cannot collide trivially.
        tail = (tail << 8) | bytes.len() as u64;
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Interned tag name. Dense, starts at 0, stable for the life of the
/// [`TagInterner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// The dense index of this tag.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between tag names and [`TagId`]s.
///
/// Interners are cheap to create; a single interner must be shared between
/// the query compiler and the stream lexer of one evaluation run so that
/// tag comparisons are meaningful.
///
/// ## Copy-on-write overlays
///
/// A serving runtime opens many concurrent sessions against one master
/// interner. Cloning the whole symbol table per session is O(master) —
/// instead, [`TagInterner::overlay`] builds a view over an immutable
/// `Arc`-shared snapshot: lookups fall through to the frozen base, and
/// only tags first seen in the session's own document are stored locally
/// (their ids start at `base.len()`, so base ids remain valid verbatim).
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    /// Frozen shared base; its ids occupy `0..base_len`.
    base: Option<Arc<TagInterner>>,
    base_len: u32,
    /// UTF-8 bytes of every locally interned name, concatenated — one
    /// growing arena instead of one heap `Box<str>` per name (interning
    /// a document's vocabulary used to dominate the engine's residual
    /// per-run allocation count).
    names_data: String,
    /// `(offset, len)` of each local name in `names_data`, by local id.
    names: Vec<(u32, u32)>,
    /// Raw-bytes lookup: [`FxHasher`] of the name's UTF-8 → local id,
    /// verified by content on every hit (no owned key). The rare true
    /// 64-bit collision falls back to [`Self::collisions`]. Covers local
    /// names only; base names resolve through `base`.
    ids: HashMap<u64, TagId, FxBuildHasher>,
    /// Local ids whose hash slot was taken by a different name; scanned
    /// linearly (in practice empty).
    collisions: Vec<TagId>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a copy-on-write overlay over a frozen snapshot: every id
    /// of `base` resolves identically, and newly interned tags are stored
    /// in the overlay only (ids from `base.len()` upward). O(1).
    pub fn overlay(base: Arc<TagInterner>) -> Self {
        let base_len = u32::try_from(base.len()).expect("interner within u32 range");
        TagInterner {
            base: Some(base),
            base_len,
            ..Default::default()
        }
    }

    /// True when this interner is an overlay over a shared base.
    pub fn is_overlay(&self) -> bool {
        self.base.is_some()
    }

    /// Interns `name`, returning the existing id when already present.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(id) = self.lookup(name.as_bytes()) {
            return id;
        }
        self.insert_new(name)
    }

    /// Interns a name given as raw UTF-8 bytes. The hot-path entry point
    /// of the streaming lexer: a known name costs one hash lookup and
    /// zero allocations; only a genuinely new name is copied and
    /// validated.
    ///
    /// # Errors
    /// Returns `None` when `bytes` is not valid UTF-8 (never the case for
    /// the lexer, whose name characters are an ASCII subset).
    pub fn intern_bytes(&mut self, bytes: &[u8]) -> Option<TagId> {
        if let Some(id) = self.lookup(bytes) {
            return Some(id);
        }
        let name = std::str::from_utf8(bytes).ok()?;
        Some(self.insert_new(name))
    }

    #[inline]
    fn hash_bytes(bytes: &[u8]) -> u64 {
        use std::hash::Hasher as _;
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    /// The UTF-8 of a *locally* interned name.
    #[inline]
    fn local_name_bytes(&self, id: TagId) -> &[u8] {
        let (off, len) = self.names[(id.0 - self.base_len) as usize];
        &self.names_data.as_bytes()[off as usize..(off + len) as usize]
    }

    #[inline]
    fn lookup(&self, bytes: &[u8]) -> Option<TagId> {
        if let Some(&id) = self.ids.get(&Self::hash_bytes(bytes)) {
            if self.local_name_bytes(id) == bytes {
                return Some(id);
            }
            // Hash hit, content mismatch: a true collision — the other
            // name (if interned) lives in the fallback list.
            if let Some(&id) = self
                .collisions
                .iter()
                .find(|&&c| self.local_name_bytes(c) == bytes)
            {
                return Some(id);
            }
        }
        self.base.as_deref().and_then(|b| b.lookup(bytes))
    }

    fn insert_new(&mut self, name: &str) -> TagId {
        let id = TagId(self.base_len + self.names.len() as u32);
        let offset = u32::try_from(self.names_data.len()).expect("name arena within u32 range");
        self.names_data.push_str(name);
        self.names
            .push((offset, u32::try_from(name.len()).expect("name within u32")));
        match self.ids.entry(Self::hash_bytes(name.as_bytes())) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(id);
            }
            // The slot belongs to a different name (the caller already
            // established `name` is absent): remember this id in the
            // linear-scan fallback.
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push(id),
        }
        id
    }

    /// Looks up a tag without interning it.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.lookup(name.as_bytes())
    }

    /// Resolves an id back to the tag name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner (or its base).
    pub fn name(&self, id: TagId) -> &str {
        if id.0 < self.base_len {
            return self
                .base
                .as_deref()
                .expect("base ids imply a base")
                .name(id);
        }
        let (off, len) = self.names[(id.0 - self.base_len) as usize];
        &self.names_data[off as usize..(off + len) as usize]
    }

    /// Number of distinct interned tags (base + overlay).
    pub fn len(&self) -> usize {
        self.base_len as usize + self.names.len()
    }

    /// Number of tags interned locally, excluding any shared base
    /// (diagnostics: "how many tags did this session's document add").
    pub fn local_len(&self) -> usize {
        self.names.len()
    }

    /// True when no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        (0..self.len() as u32).map(move |i| (TagId(i), self.name(TagId(i))))
    }

    /// Approximate heap footprint of the interner in bytes (used by the
    /// buffer statistics so that "memory" numbers include the symbol
    /// table). For an overlay this counts the shared base once — the
    /// point of sharing is that sessions do not replicate it.
    pub fn approx_bytes(&self) -> usize {
        let own = self.names_data.capacity()
            + self.names.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.ids.capacity() * 16;
        own + self.base.as_deref().map_or(0, |b| b.approx_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("bib");
        let b = t.intern("book");
        let a2 = t.intern("bib");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut t = TagInterner::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let id = t.intern(name);
            assert_eq!(id.index(), i);
            assert_eq!(t.name(id), *name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = TagInterner::new();
        assert!(t.get("x").is_none());
        t.intern("x");
        assert!(t.get("x").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = TagInterner::new();
        t.intern("one");
        t.intern("two");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["one", "two"]);
    }

    #[test]
    fn empty_interner() {
        let t = TagInterner::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn intern_bytes_matches_intern() {
        let mut t = TagInterner::new();
        let a = t.intern("item");
        assert_eq!(t.intern_bytes(b"item"), Some(a));
        let b = t.intern_bytes(b"listitem").unwrap();
        assert_eq!(t.intern("listitem"), b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(b), "listitem");
    }

    #[test]
    fn intern_bytes_rejects_invalid_utf8() {
        let mut t = TagInterner::new();
        assert_eq!(t.intern_bytes(&[0xFF, 0xFE]), None);
        assert!(t.is_empty());
    }

    #[test]
    fn overlay_shares_base_ids_and_offsets_new_ones() {
        let mut master = TagInterner::new();
        let bib = master.intern("bib");
        let book = master.intern("book");
        let base = Arc::new(master);
        let mut session = TagInterner::overlay(base.clone());
        assert!(session.is_overlay());
        // Base names resolve to base ids without copying.
        assert_eq!(session.intern("bib"), bib);
        assert_eq!(session.get("book"), Some(book));
        assert_eq!(session.name(bib), "bib");
        assert_eq!(session.local_len(), 0, "no copy-on-write yet");
        // Document-side tags land in the overlay, ids past the base.
        let title = session.intern("title");
        assert_eq!(title.index(), base.len());
        assert_eq!(session.name(title), "title");
        assert_eq!(session.intern_bytes(b"title"), Some(title));
        assert_eq!(session.len(), 3);
        assert_eq!(session.local_len(), 1);
        // The shared base is untouched.
        assert_eq!(base.len(), 2);
        assert!(base.get("title").is_none());
    }

    #[test]
    fn overlay_iter_walks_base_then_local() {
        let mut master = TagInterner::new();
        master.intern("a");
        master.intern("b");
        let mut session = TagInterner::overlay(Arc::new(master));
        session.intern("c");
        let names: Vec<_> = session.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let ids: Vec<_> = session.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn overlay_clone_is_independent() {
        let mut master = TagInterner::new();
        master.intern("a");
        let mut s1 = TagInterner::overlay(Arc::new(master));
        let mut s2 = s1.clone();
        let x1 = s1.intern("x");
        let y2 = s2.intern("y");
        assert_eq!(x1, y2, "overlays allocate the same offset independently");
        assert_eq!(s1.name(x1), "x");
        assert_eq!(s2.name(y2), "y");
    }

    #[test]
    fn fx_hash_distinguishes_lengths_and_content() {
        use std::hash::Hasher as _;
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
        assert_ne!(h(b""), h(b"\0"));
        assert_eq!(h(b"person"), h(b"person"));
    }
}
