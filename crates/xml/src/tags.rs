//! Tag interning: the "symbol table to replace tagnames by integers"
//! from §6 of the paper.
//!
//! Every distinct element name is mapped to a dense [`TagId`] so that the
//! buffer, the projection matcher and the evaluator compare `u32`s instead
//! of strings on the hot path.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-xor hasher (FxHash-style) for the interner's raw-bytes
/// lookup. Tag names are short, trusted identifiers, so a DoS-resistant
/// hash (SipHash, the `HashMap` default) wastes most of its cycles here —
/// this hasher is the difference between "one hash per opening tag" being
/// free and being visible in profiles.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        // Fold the length in so "ab" and "ab\0" cannot collide trivially.
        tail = (tail << 8) | bytes.len() as u64;
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Interned tag name. Dense, starts at 0, stable for the life of the
/// [`TagInterner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

impl TagId {
    /// The dense index of this tag.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between tag names and [`TagId`]s.
///
/// Interners are cheap to create; a single interner must be shared between
/// the query compiler and the stream lexer of one evaluation run so that
/// tag comparisons are meaningful.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    names: Vec<Box<str>>,
    /// Raw-bytes lookup keyed by the UTF-8 of the name, so the streaming
    /// lexer can intern borrowed byte slices without building a `String`
    /// first. Keys are hashed with [`FxHasher`].
    ids: HashMap<Box<[u8]>, TagId, FxBuildHasher>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id when already present.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name.as_bytes()) {
            return id;
        }
        self.insert_new(name)
    }

    /// Interns a name given as raw UTF-8 bytes. The hot-path entry point
    /// of the streaming lexer: a known name costs one hash lookup and
    /// zero allocations; only a genuinely new name is copied and
    /// validated.
    ///
    /// # Errors
    /// Returns `None` when `bytes` is not valid UTF-8 (never the case for
    /// the lexer, whose name characters are an ASCII subset).
    pub fn intern_bytes(&mut self, bytes: &[u8]) -> Option<TagId> {
        if let Some(&id) = self.ids.get(bytes) {
            return Some(id);
        }
        let name = std::str::from_utf8(bytes).ok()?;
        Some(self.insert_new(name))
    }

    fn insert_new(&mut self, name: &str) -> TagId {
        let id = TagId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.ids.insert(boxed.clone().into_boxed_bytes(), id);
        self.names.push(boxed);
        id
    }

    /// Looks up a tag without interning it.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name.as_bytes()).copied()
    }

    /// Resolves an id back to the tag name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct interned tags.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no tag has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_ref()))
    }

    /// Approximate heap footprint of the interner in bytes (used by the
    /// buffer statistics so that "memory" numbers include the symbol table).
    pub fn approx_bytes(&self) -> usize {
        self.names.iter().map(|n| n.len() + 16).sum::<usize>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("bib");
        let b = t.intern("book");
        let a2 = t.intern("bib");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut t = TagInterner::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let id = t.intern(name);
            assert_eq!(id.index(), i);
            assert_eq!(t.name(id), *name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = TagInterner::new();
        assert!(t.get("x").is_none());
        t.intern("x");
        assert!(t.get("x").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = TagInterner::new();
        t.intern("one");
        t.intern("two");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, vec!["one", "two"]);
    }

    #[test]
    fn empty_interner() {
        let t = TagInterner::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn intern_bytes_matches_intern() {
        let mut t = TagInterner::new();
        let a = t.intern("item");
        assert_eq!(t.intern_bytes(b"item"), Some(a));
        let b = t.intern_bytes(b"listitem").unwrap();
        assert_eq!(t.intern("listitem"), b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(b), "listitem");
    }

    #[test]
    fn intern_bytes_rejects_invalid_utf8() {
        let mut t = TagInterner::new();
        assert_eq!(t.intern_bytes(&[0xFF, 0xFE]), None);
        assert!(t.is_empty());
    }

    #[test]
    fn fx_hash_distinguishes_lengths_and_content() {
        use std::hash::Hasher as _;
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefgi"));
        assert_ne!(h(b""), h(b"\0"));
        assert_eq!(h(b"person"), h(b"person"));
    }
}
