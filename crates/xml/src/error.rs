//! Error type for XML lexing and tree construction.

use std::fmt;

/// Errors produced while tokenizing or building XML.
///
/// Every variant carries the byte offset in the input stream at which the
/// problem was detected, so callers can point at the offending input.
#[derive(Debug)]
pub enum XmlError {
    /// Underlying I/O failure while reading the stream.
    Io(std::io::Error),
    /// The stream ended in the middle of a construct (tag, comment, …).
    UnexpectedEof { offset: u64, context: &'static str },
    /// A closing tag did not match the innermost open element.
    MismatchedClose {
        offset: u64,
        expected: String,
        found: String,
    },
    /// A closing tag appeared with no element open.
    UnbalancedClose { offset: u64, tag: String },
    /// The document ended while elements were still open.
    UnclosedElements { offset: u64, open: usize },
    /// Malformed syntax (bad tag name, broken entity, stray `<`, …).
    Malformed { offset: u64, detail: String },
    /// Attributes were encountered while [`crate::AttributeMode::Error`] is active.
    UnexpectedAttribute { offset: u64, name: String },
    /// More than one top-level element, or text at top level.
    TrailingContent { offset: u64 },
}

impl XmlError {
    /// True when lexing stopped only because a non-blocking input has no
    /// bytes available right now. The lexer has rewound to the previous
    /// construct boundary: retry the same call once more input arrives
    /// and the token stream continues exactly as if it had never blocked.
    pub fn is_would_block(&self) -> bool {
        matches!(self, XmlError::Io(e) if e.kind() == std::io::ErrorKind::WouldBlock)
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
            XmlError::UnexpectedEof { offset, context } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset} while reading {context}"
                )
            }
            XmlError::MismatchedClose {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag </{found}> at byte {offset}, expected </{expected}>"
            ),
            XmlError::UnbalancedClose { offset, tag } => {
                write!(
                    f,
                    "closing tag </{tag}> at byte {offset} with no open element"
                )
            }
            XmlError::UnclosedElements { offset, open } => {
                write!(
                    f,
                    "input ended at byte {offset} with {open} unclosed element(s)"
                )
            }
            XmlError::Malformed { offset, detail } => {
                write!(f, "malformed XML at byte {offset}: {detail}")
            }
            XmlError::UnexpectedAttribute { offset, name } => {
                write!(f, "unexpected attribute '{name}' at byte {offset}")
            }
            XmlError::TrailingContent { offset } => {
                write!(f, "content after the document element at byte {offset}")
            }
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XmlError::MismatchedClose {
            offset: 42,
            expected: "a".into(),
            found: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("</b>"));
        assert!(s.contains("</a>"));
        assert!(s.contains("42"));
    }

    #[test]
    fn io_error_wraps_source() {
        let e: XmlError = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn eof_mentions_context() {
        let e = XmlError::UnexpectedEof {
            offset: 7,
            context: "comment",
        };
        assert!(e.to_string().contains("comment"));
    }
}
