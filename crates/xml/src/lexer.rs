//! Pull-based streaming XML tokenizer.
//!
//! The GCX stream preprojector consumes the input one token at a time
//! (paper Fig. 11: the buffer manager issues `nextNode()` requests). This
//! lexer delivers exactly that interface: [`XmlLexer::next_token`] returns
//! the next [`XmlToken`] without ever materializing the document.
//!
//! Supported input constructs: elements, character data, entity references
//! (`&lt; &gt; &amp; &apos; &quot; &#10; &#x0A;`), CDATA sections, comments,
//! processing instructions, XML declarations and DOCTYPE declarations
//! (the latter four are skipped). Attributes are handled according to
//! [`AttributeMode`]; the paper converted attributes into subelements for
//! all of its benchmarks, which is this lexer's default.
//!
//! ## Skip mode
//!
//! When a consumer has proven a subtree irrelevant (the projection
//! matcher's dead-subtree verdict), [`XmlLexer::skip_subtree`] consumes
//! the rest of it as raw bytes: no text is copied into scratch, no
//! entities are decoded, no attribute names or values are interned, and
//! no events are materialized. The scanner tracks only element nesting
//! depth, stepping over comments, CDATA sections (which may contain
//! `</`), processing instructions and quoted attribute values (which may
//! contain `>`). Structural well-formedness (balanced nesting, the
//! subtree root's close-tag name, EOF) is still enforced; *content*
//! validation that the per-event path performs — close-tag name matching
//! strictly inside the skipped subtree, entity names, UTF-8 in character
//! data — is intentionally not, because the bytes are discarded anyway.
//! Skipped byte counts accumulate in [`XmlLexer::bytes_skipped`].
//!
//! ## Non-blocking readers
//!
//! The lexer is resumable over readers that return
//! [`std::io::ErrorKind::WouldBlock`]: every construct boundary is a
//! rewind checkpoint, refills preserve the bytes from the checkpoint
//! onward, and a `WouldBlock` mid-construct rewinds the lexer to the
//! checkpoint before propagating (see [`XmlError::is_would_block`]).
//! Calling [`XmlLexer::next_event`] (or [`XmlLexer::skip_subtree`],
//! which additionally persists its nesting depth) again once more bytes
//! are available continues exactly where the blocking lexer would have:
//! the token stream is bit-identical to the blocking one. A reader's
//! `Ok(0)` still means end of input, so a non-blocking source must
//! return `WouldBlock` — never a zero read — while input is merely
//! pending.

use crate::error::XmlError;
use crate::scan::{self, ScanKernel};
use crate::tags::{TagId, TagInterner};
use crate::token::{XmlEvent, XmlToken};
use crate::Result;
use std::collections::VecDeque;
use std::io::Read;

/// Queued follow-up events (bachelor tags, attribute expansion). Attribute
/// text is stored as a range into the lexer's `attr_buf` scratch arena so
/// queueing never allocates in steady state.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Open(TagId),
    Close(TagId),
    AttrText { start: u32, end: u32 },
}

/// What to do with attributes in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttributeMode {
    /// Convert each attribute `a="v"` of `<e>` into a leading subelement
    /// `<a>v</a>` of `e`, in attribute order. This is the adaptation the
    /// paper applied to the XMark data ("we converted XML attributes into
    /// subelements", §7).
    #[default]
    AsSubelements,
    /// Silently drop attributes.
    Ignore,
    /// Reject documents containing attributes.
    Error,
}

/// What to do with whitespace-only character data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WhitespaceMode {
    /// Deliver whitespace-only text tokens (faithful to the stream).
    Keep,
    /// Drop text tokens that consist solely of XML whitespace. Useful when
    /// evaluating queries over pretty-printed documents, where indentation
    /// would otherwise be buffered by `dos::node()` projections.
    #[default]
    DropWhitespaceOnly,
}

/// Lexer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct LexerOptions {
    pub attributes: AttributeMode,
    pub whitespace: WhitespaceMode,
}

/// Streaming tokenizer over any [`Read`].
///
/// The lexer performs its own buffering (do not wrap the reader in a
/// `BufReader`). Well-formedness is enforced: tags must balance, and
/// exactly one document element is allowed.
pub struct XmlLexer<'t, R: Read> {
    reader: R,
    buf: Vec<u8>,
    /// Valid bytes are `buf[pos..len]`.
    pos: usize,
    len: usize,
    /// Total bytes consumed from the reader before `buf\[0\]`.
    base: u64,
    tags: &'t mut TagInterner,
    opts: LexerOptions,
    /// Stack of open element tags, for balance checking.
    open: Vec<TagId>,
    /// Queued events (from bachelor tags / attribute expansion).
    pending: VecDeque<Pending>,
    /// True once the single document element has closed.
    document_done: bool,
    /// Scratch for character data accumulation (raw UTF-8 bytes). Reused
    /// across tokens; cleared lazily after the borrowed text event has
    /// been handed out.
    text: Vec<u8>,
    /// The previous `next_event` call returned a borrow of `text`; clear
    /// it on the next call.
    text_emitted: bool,
    /// Scratch arena for attribute values of the current tag.
    attr_buf: Vec<u8>,
    /// Scratch for names that span a buffer refill (rare).
    name_buf: Vec<u8>,
    /// Total bytes consumed by [`Self::skip_subtree`] raw scans.
    bytes_skipped: u64,
    eof: bool,
    /// Rewind checkpoint (≤ `pos`): the buffer index of the current
    /// construct's start. [`Self::fill`] preserves `buf[ckpt..len]`
    /// across refills, and a `WouldBlock` read rewinds to here so the
    /// construct re-lexes verbatim once more input arrives.
    ckpt: usize,
    /// Text-scratch length at the checkpoint (rewind truncates to it).
    ckpt_text: usize,
    /// An in-flight [`Self::skip_subtree`] interrupted by `WouldBlock`:
    /// call `skip_subtree` again to resume it.
    skip: Option<SkipState>,
}

/// Persisted state of a raw subtree skip across `WouldBlock` returns.
struct SkipState {
    /// Nesting depth relative to the element being skipped.
    depth: usize,
    /// Input offset where the skip began (for the byte count).
    start: u64,
}

const BUF_SIZE: usize = 64 * 1024;

impl<'t, R: Read> XmlLexer<'t, R> {
    /// Creates a lexer with default options.
    pub fn new(reader: R, tags: &'t mut TagInterner) -> Self {
        Self::with_options(reader, tags, LexerOptions::default())
    }

    /// Creates a lexer with explicit options.
    pub fn with_options(reader: R, tags: &'t mut TagInterner, opts: LexerOptions) -> Self {
        XmlLexer {
            reader,
            buf: vec![0; BUF_SIZE],
            pos: 0,
            len: 0,
            base: 0,
            tags,
            opts,
            open: Vec::with_capacity(16),
            pending: VecDeque::new(),
            document_done: false,
            text: Vec::new(),
            text_emitted: false,
            attr_buf: Vec::new(),
            name_buf: Vec::new(),
            bytes_skipped: 0,
            eof: false,
            ckpt: 0,
            ckpt_text: 0,
            skip: None,
        }
    }

    /// Byte offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Access to the shared tag interner.
    pub fn tags(&self) -> &TagInterner {
        self.tags
    }

    /// True once the document element has been completely read.
    pub fn document_done(&self) -> bool {
        self.document_done && self.pending.is_empty()
    }

    /// Total bytes consumed by [`Self::skip_subtree`] raw scans (for
    /// throughput statistics: these bytes never became events).
    pub fn bytes_skipped(&self) -> u64 {
        self.bytes_skipped
    }

    /// Marks the current position as a rewind checkpoint: everything
    /// before it is consumed for good, everything from it on re-lexes
    /// after a `WouldBlock` rewind.
    #[inline]
    fn set_ckpt(&mut self) {
        self.ckpt = self.pos;
        self.ckpt_text = self.text.len();
    }

    /// Rewinds to the checkpoint after a `WouldBlock` read: position and
    /// text scratch return to the construct boundary, and any events the
    /// partial construct queued (attribute expansion) are dropped — the
    /// retry re-derives them. Called with the queue in its checkpoint
    /// state (empty): checkpoints are only set once it has drained.
    fn rewind_to_ckpt(&mut self) {
        self.pos = self.ckpt;
        self.text.truncate(self.ckpt_text);
        self.pending.clear();
    }

    #[inline]
    fn fill(&mut self) -> Result<bool> {
        if self.pos < self.len {
            return Ok(true);
        }
        if self.eof {
            return Ok(false);
        }
        // Compact: discard only up to the rewind checkpoint, so a
        // construct interrupted by `WouldBlock` re-lexes from bytes we
        // still hold. In the common case `ckpt == len` and the whole
        // buffer is discarded, exactly as a plain refill.
        let keep = self.ckpt.min(self.len);
        self.buf.copy_within(keep..self.len, 0);
        self.base += keep as u64;
        self.pos -= keep;
        self.len -= keep;
        self.ckpt = 0;
        if self.len == self.buf.len() {
            // A single construct spans the entire buffer (giant text
            // run or CDATA section pinned by the checkpoint): grow so
            // lexing can make progress.
            let new_len = self.buf.len() * 2;
            self.buf.resize(new_len, 0);
        }
        loop {
            let dst = self.len;
            match self.reader.read(&mut self.buf[dst..]) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.len += n;
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.rewind_to_ckpt();
                    return Err(e.into());
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    #[inline]
    fn peek(&mut self) -> Result<Option<u8>> {
        if self.fill()? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    #[inline]
    fn bump(&mut self, context: &'static str) -> Result<u8> {
        match self.peek()? {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(XmlError::UnexpectedEof {
                offset: self.offset(),
                context,
            }),
        }
    }

    fn expect(&mut self, b: u8, context: &'static str) -> Result<()> {
        let got = self.bump(context)?;
        if got != b {
            return Err(XmlError::Malformed {
                offset: self.offset() - 1,
                detail: format!(
                    "expected '{}' in {context}, found '{}'",
                    b as char, got as char
                ),
            });
        }
        Ok(())
    }

    /// Consumes input up to and including `suffix`, with proper overlap
    /// fallback on mismatch (KMP-style): after matching `]]` of `]]>`,
    /// another `]` must keep two bytes matched, not reset to one —
    /// otherwise `x]]]>` style terminators are scanned past.
    ///
    /// Fast path: a vectorized scan for the suffix's first byte (the
    /// anchor), then a direct slice compare when the whole suffix is
    /// visible in the buffer. A candidate too close to the buffer end —
    /// the terminator may straddle a refill — drops to the byte-at-a-time
    /// KMP loop, which is also where overlapping candidates (`]]]>`)
    /// resolve; once the partial match dies back to zero the scan
    /// returns to the vectorized anchor search.
    fn skip_until(&mut self, suffix: &[u8], context: &'static str) -> Result<()> {
        // Longest proper prefix of suffix[..matched] that is also a
        // suffix of it (then the current byte is retried at that length).
        fn fallback(suffix: &[u8], matched: usize) -> usize {
            (1..matched)
                .rev()
                .find(|&k| suffix[..k] == suffix[matched - k..matched])
                .unwrap_or(0)
        }
        let mut matched = 0usize;
        loop {
            if matched == 0 {
                // Vectorized anchor scan within the buffered bytes.
                if !self.fill()? {
                    return Err(XmlError::UnexpectedEof {
                        offset: self.offset(),
                        context,
                    });
                }
                match scan::find_byte(&self.buf[self.pos..self.len], suffix[0]) {
                    None => {
                        self.pos = self.len;
                        continue;
                    }
                    Some(i) => {
                        let cand = self.pos + i;
                        if cand + suffix.len() <= self.len {
                            if &self.buf[cand..cand + suffix.len()] == suffix {
                                self.pos = cand + suffix.len();
                                return Ok(());
                            }
                            // Not the terminator: step past the anchor
                            // byte only (a later candidate may start
                            // inside this failed window, e.g. "]]]>").
                            self.pos = cand + 1;
                            continue;
                        }
                        // The window straddles the buffer end; resolve
                        // it byte-at-a-time across the refill.
                        self.pos = cand;
                    }
                }
            }
            let b = self.bump(context)?;
            loop {
                if b == suffix[matched] {
                    matched += 1;
                    break;
                }
                if matched == 0 {
                    break;
                }
                matched = fallback(suffix, matched);
            }
            if matched == suffix.len() {
                return Ok(());
            }
        }
    }

    /// Consumes input up to and including the next `target` byte
    /// (vectorized). Shared by the raw-skip quote/close-tag scans.
    #[inline]
    fn skip_to_byte(&mut self, target: u8, context: &'static str) -> Result<()> {
        loop {
            if !self.fill()? {
                return Err(XmlError::UnexpectedEof {
                    offset: self.offset(),
                    context,
                });
            }
            match scan::find_byte(&self.buf[self.pos..self.len], target) {
                Some(i) => {
                    self.pos += i + 1;
                    return Ok(());
                }
                None => self.pos = self.len,
            }
        }
    }

    /// Consumes a DOCTYPE declaration after `<!D`, up to its closing
    /// `>`. Steps over the `[...]` internal subset *and* quoted
    /// system/public literals — a literal may legally contain `>`
    /// (`<!DOCTYPE foo SYSTEM "a>b">`), which must not terminate the
    /// declaration. Shared by the per-event and raw-skip paths.
    fn skip_doctype(&mut self) -> Result<()> {
        let mut brackets = 0usize;
        loop {
            match self.bump("DOCTYPE")? {
                b'[' => brackets += 1,
                b']' => brackets = brackets.saturating_sub(1),
                q @ (b'"' | b'\'') => self.skip_to_byte(q, "DOCTYPE literal")?,
                b'>' if brackets == 0 => return Ok(()),
                _ => {}
            }
        }
    }

    /// Reads a name and interns it directly from the input buffer. The
    /// fast path (name fully visible in the current buffer — virtually
    /// always, with 64 KiB refills) performs zero allocations: the
    /// borrowed byte slice goes straight into the interner's raw-bytes
    /// hash lookup. Only names spanning a refill take the scratch-copy
    /// slow path.
    fn read_name_id(&mut self, context: &'static str) -> Result<TagId> {
        if self.peek()?.is_none() {
            return Err(XmlError::UnexpectedEof {
                offset: self.offset(),
                context,
            });
        }
        let start = self.pos;
        let i = start + scan::name_run_len(&self.buf[start..self.len]);
        if i < self.len {
            if i == start {
                return Err(XmlError::Malformed {
                    offset: self.offset(),
                    detail: format!("empty name in {context}"),
                });
            }
            self.pos = i;
            let id = self
                .tags
                .intern_bytes(&self.buf[start..i])
                .expect("name bytes are an ASCII subset");
            return Ok(id);
        }
        // The name touches the end of the buffer: continue through refills
        // via the reusable scratch.
        self.name_buf.clear();
        self.name_buf.extend_from_slice(&self.buf[start..i]);
        self.pos = i;
        loop {
            if !self.fill()? {
                return Err(XmlError::UnexpectedEof {
                    offset: self.offset(),
                    context,
                });
            }
            let n = scan::name_run_len(&self.buf[self.pos..self.len]);
            self.name_buf
                .extend_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            if self.pos < self.len {
                break; // hit a non-name byte
            }
        }
        if self.name_buf.is_empty() {
            return Err(XmlError::Malformed {
                offset: self.offset(),
                detail: format!("empty name in {context}"),
            });
        }
        let id = self
            .tags
            .intern_bytes(&self.name_buf)
            .expect("name bytes are an ASCII subset");
        Ok(id)
    }

    fn skip_ws(&mut self) -> Result<()> {
        loop {
            if !self.fill()? {
                return Ok(());
            }
            match scan::find_non_ws(&self.buf[self.pos..self.len]) {
                Some(i) => {
                    self.pos += i;
                    return Ok(());
                }
                None => self.pos = self.len,
            }
        }
    }

    /// Decodes one entity reference; the leading `&` is already consumed.
    /// Allocation-free on success: the entity name lives in a stack
    /// buffer (names longer than 11 bytes are malformed anyway).
    fn read_entity(&mut self) -> Result<char> {
        let mut name = [0u8; 12];
        let mut n = 0usize;
        loop {
            let b = self.bump("entity reference")?;
            if b == b';' {
                break;
            }
            if n >= 11 {
                return Err(XmlError::Malformed {
                    offset: self.offset(),
                    detail: "entity reference too long".into(),
                });
            }
            name[n] = b;
            n += 1;
        }
        let name = &name[..n];
        let shown = |name: &[u8]| String::from_utf8_lossy(name).into_owned();
        let bad = |detail: String, offset: u64| XmlError::Malformed { offset, detail };
        let off = self.offset();
        Ok(match name {
            b"lt" => '<',
            b"gt" => '>',
            b"amp" => '&',
            b"apos" => '\'',
            b"quot" => '"',
            _ if name.starts_with(b"#x") || name.starts_with(b"#X") => {
                let digits = std::str::from_utf8(&name[2..]).map_err(|_| {
                    bad(
                        format!("bad hex character reference &{};", shown(name)),
                        off,
                    )
                })?;
                let cp = u32::from_str_radix(digits, 16).map_err(|_| {
                    bad(
                        format!("bad hex character reference &{};", shown(name)),
                        off,
                    )
                })?;
                char::from_u32(cp)
                    .ok_or_else(|| bad(format!("invalid code point in &{};", shown(name)), off))?
            }
            _ if name.starts_with(b"#") => {
                let digits = std::str::from_utf8(&name[1..])
                    .map_err(|_| bad(format!("bad character reference &{};", shown(name)), off))?;
                let cp: u32 = digits
                    .parse()
                    .map_err(|_| bad(format!("bad character reference &{};", shown(name)), off))?;
                char::from_u32(cp)
                    .ok_or_else(|| bad(format!("invalid code point in &{};", shown(name)), off))?
            }
            _ => return Err(bad(format!("unknown entity &{};", shown(name)), off)),
        })
    }

    /// Reads a quoted attribute value (opening quote already consumed)
    /// into the `attr_buf` scratch arena, batching plain byte runs with a
    /// single copy per buffered stretch. Returns the `(start, end)` range
    /// of the (UTF-8 validated) value within the arena.
    fn read_attr_value(&mut self, quote: u8) -> Result<(u32, u32)> {
        let start = self.attr_buf.len();
        loop {
            if !self.fill()? {
                return Err(XmlError::UnexpectedEof {
                    offset: self.offset(),
                    context: "attribute value",
                });
            }
            let i = match scan::find_byte2(&self.buf[self.pos..self.len], quote, b'&') {
                Some(k) => self.pos + k,
                None => self.len,
            };
            self.attr_buf.extend_from_slice(&self.buf[self.pos..i]);
            self.pos = i;
            if i == self.len {
                continue;
            }
            let b = self.buf[i];
            self.pos += 1;
            if b == quote {
                std::str::from_utf8(&self.attr_buf[start..]).map_err(|_| XmlError::Malformed {
                    offset: self.offset(),
                    detail: "attribute value is not valid UTF-8".into(),
                })?;
                return Ok((start as u32, self.attr_buf.len() as u32));
            }
            // b == '&'
            let c = self.read_entity()?;
            let mut enc = [0u8; 4];
            self.attr_buf
                .extend_from_slice(c.encode_utf8(&mut enc).as_bytes());
        }
    }

    /// Parses the inside of an opening tag after the name. Returns `true`
    /// when the tag is self-closing. Attribute tokens are queued according
    /// to the configured [`AttributeMode`].
    fn read_tag_rest(&mut self) -> Result<bool> {
        loop {
            self.skip_ws()?;
            match self.peek()? {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>', "self-closing tag")?;
                    return Ok(true);
                }
                Some(_) => {
                    let at = self.offset();
                    let id = self.read_name_id("attribute name")?;
                    self.skip_ws()?;
                    self.expect(b'=', "attribute")?;
                    self.skip_ws()?;
                    let q = self.bump("attribute value")?;
                    if q != b'"' && q != b'\'' {
                        return Err(XmlError::Malformed {
                            offset: self.offset() - 1,
                            detail: "attribute value must be quoted".into(),
                        });
                    }
                    let (start, end) = self.read_attr_value(q)?;
                    match self.opts.attributes {
                        AttributeMode::AsSubelements => {
                            self.pending.push_back(Pending::Open(id));
                            if end > start {
                                self.pending.push_back(Pending::AttrText { start, end });
                            }
                            self.pending.push_back(Pending::Close(id));
                        }
                        AttributeMode::Ignore => {
                            self.attr_buf.truncate(start as usize);
                        }
                        AttributeMode::Error => {
                            return Err(XmlError::UnexpectedAttribute {
                                offset: at,
                                name: self.tags.name(id).to_string(),
                            });
                        }
                    }
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        offset: self.offset(),
                        context: "opening tag",
                    })
                }
            }
        }
    }

    /// Consumes a CDATA section (after `<![`) into the text buffer.
    /// Bracket-free stretches are located with the vectorized `]` scan
    /// and copied wholesale; the `]]>` terminator (including `x]]]>`
    /// style overlaps and refill straddles) resolves byte-at-a-time.
    fn read_cdata(&mut self) -> Result<()> {
        for &b in b"CDATA[" {
            self.expect(b, "CDATA section")?;
        }
        loop {
            if !self.fill()? {
                return Err(XmlError::UnexpectedEof {
                    offset: self.offset(),
                    context: "CDATA section",
                });
            }
            match scan::find_byte(&self.buf[self.pos..self.len], b']') {
                None => {
                    self.text.extend_from_slice(&self.buf[self.pos..self.len]);
                    self.pos = self.len;
                }
                Some(i) => {
                    self.text
                        .extend_from_slice(&self.buf[self.pos..self.pos + i]);
                    self.pos += i;
                    // At a ']': resolve a potential terminator.
                    let mut tail = 0usize; // trailing ']' seen
                    loop {
                        let b = self.bump("CDATA section")?;
                        match (b, tail) {
                            (b']', _) => tail += 1,
                            (b'>', t) if t >= 2 => {
                                for _ in 0..t - 2 {
                                    self.text.push(b']');
                                }
                                return Ok(());
                            }
                            (_, t) => {
                                for _ in 0..t {
                                    self.text.push(b']');
                                }
                                self.text.push(b);
                                break; // back to the vectorized scan
                            }
                        }
                    }
                }
            }
        }
    }

    /// Decides whether the accumulated text should be emitted (per the
    /// whitespace mode), validating UTF-8 up front. A dropped run is
    /// cleared immediately; a kept run stays in `text` for the borrowed
    /// event (cleared lazily on the next call).
    fn take_text_pending(&mut self) -> Result<bool> {
        if self.text.is_empty() {
            return Ok(false);
        }
        let keep = match self.opts.whitespace {
            WhitespaceMode::Keep => true,
            WhitespaceMode::DropWhitespaceOnly => {
                self.text.iter().any(|b| !b.is_ascii_whitespace())
            }
        };
        if !keep {
            self.text.clear();
            return Ok(false);
        }
        std::str::from_utf8(&self.text).map_err(|_| XmlError::Malformed {
            offset: self.offset(),
            detail: "character data is not valid UTF-8".into(),
        })?;
        Ok(true)
    }

    /// The accumulated text, after [`Self::take_text_pending`] validated it.
    #[inline]
    fn text_str(&self) -> &str {
        debug_assert!(std::str::from_utf8(&self.text).is_ok());
        // Validated by take_text_pending just before every call.
        std::str::from_utf8(&self.text).expect("validated UTF-8")
    }

    fn close_tag(&mut self, id: TagId) -> Result<TagId> {
        match self.open.pop() {
            Some(top) if top == id => {
                if self.open.is_empty() {
                    self.document_done = true;
                }
                Ok(id)
            }
            Some(top) => Err(XmlError::MismatchedClose {
                offset: self.offset(),
                expected: self.tags.name(top).to_string(),
                found: self.tags.name(id).to_string(),
            }),
            None => Err(XmlError::UnbalancedClose {
                offset: self.offset(),
                tag: self.tags.name(id).to_string(),
            }),
        }
    }

    /// Resolves a queued event against the scratch arenas.
    #[inline]
    fn resolve_pending(&self, p: Pending) -> XmlEvent<'_> {
        match p {
            Pending::Open(t) => XmlEvent::Open(t),
            Pending::Close(t) => XmlEvent::Close(t),
            Pending::AttrText { start, end } => XmlEvent::Text(
                std::str::from_utf8(&self.attr_buf[start as usize..end as usize])
                    .expect("validated at parse time"),
            ),
        }
    }

    /// Returns the next event, or `None` at the end of the document.
    ///
    /// This is the zero-allocation hot path: tag names are interned from
    /// borrowed byte slices and character data is handed out as a borrow
    /// of the lexer's reusable scratch buffer. Once the document's tag
    /// vocabulary is interned and the scratch buffers have reached their
    /// high-water capacity, steady-state lexing performs no heap
    /// allocations at all.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent<'_>>> {
        if self.text_emitted {
            self.text.clear();
            self.text_emitted = false;
        }
        if let Some(p) = self.pending.pop_front() {
            return Ok(Some(self.resolve_pending(p)));
        }
        // The attribute arena only backs queued events; the queue is empty.
        self.attr_buf.clear();
        // Construct boundary: a WouldBlock anywhere below rewinds here
        // (with the text accumulated so far — re-entry keeps appending).
        self.set_ckpt();
        loop {
            let b = match self.peek()? {
                Some(b) => b,
                None => {
                    if !self.open.is_empty() {
                        return Err(XmlError::UnclosedElements {
                            offset: self.offset(),
                            open: self.open.len(),
                        });
                    }
                    return Ok(None);
                }
            };
            if b != b'<' {
                self.pos += 1;
                if self.open.is_empty() {
                    if !b.is_ascii_whitespace() {
                        return Err(if self.document_done {
                            XmlError::TrailingContent {
                                offset: self.offset() - 1,
                            }
                        } else {
                            XmlError::Malformed {
                                offset: self.offset() - 1,
                                detail: "character data outside document element".into(),
                            }
                        });
                    }
                    continue;
                }
                if b == b'&' {
                    let c = self.read_entity()?;
                    let mut enc = [0u8; 4];
                    self.text
                        .extend_from_slice(c.encode_utf8(&mut enc).as_bytes());
                } else {
                    // Batch the whole plain run visible in the buffer into
                    // the text scratch with one copy (vectorized scan for
                    // the run's end: the next markup start or entity).
                    self.text.push(b);
                    let i = match scan::find_byte2(&self.buf[self.pos..self.len], b'<', b'&') {
                        Some(k) => self.pos + k,
                        None => self.len,
                    };
                    self.text.extend_from_slice(&self.buf[self.pos..i]);
                    self.pos = i;
                }
                // Accumulated-text state is re-enterable (next_event
                // resumes appending): advance the checkpoint so long
                // text runs neither pin the buffer nor re-lex on retry.
                self.set_ckpt();
                continue;
            }
            // A markup construct begins; flush any accumulated text first,
            // then process the markup on the next call(s).
            self.pos += 1;
            let b2 = self.bump("markup")?;
            match b2 {
                b'?' => {
                    self.skip_until(b"?>", "processing instruction")?;
                }
                b'!' => {
                    let b3 = self.bump("markup declaration")?;
                    if b3 == b'-' {
                        self.expect(b'-', "comment")?;
                        self.skip_until(b"-->", "comment")?;
                    } else if b3 == b'[' {
                        if self.open.is_empty() {
                            return Err(XmlError::Malformed {
                                offset: self.offset(),
                                detail: "CDATA outside document element".into(),
                            });
                        }
                        self.read_cdata()?;
                    } else if b3 == b'D' {
                        self.skip_doctype()?;
                    } else {
                        return Err(XmlError::Malformed {
                            offset: self.offset(),
                            detail: "unsupported '<!' construct".into(),
                        });
                    }
                }
                b'/' => {
                    let has_text = self.take_text_pending()?;
                    let id = self.read_name_id("closing tag")?;
                    self.skip_ws()?;
                    self.expect(b'>', "closing tag")?;
                    let id = self.close_tag(id)?;
                    if has_text {
                        self.pending.push_back(Pending::Close(id));
                        self.text_emitted = true;
                        return Ok(Some(XmlEvent::Text(self.text_str())));
                    }
                    return Ok(Some(XmlEvent::Close(id)));
                }
                _ => {
                    if self.document_done {
                        return Err(XmlError::TrailingContent {
                            offset: self.offset(),
                        });
                    }
                    let has_text = self.take_text_pending()?;
                    self.pos -= 1; // un-consume the first name byte
                    let id = self.read_name_id("opening tag")?;
                    // Attribute events are queued by read_tag_rest; they must
                    // appear *after* the Open event — the queue is empty here
                    // (drained before any markup is read).
                    debug_assert!(self.pending.is_empty(), "pending drained before markup");
                    let self_closing = self.read_tag_rest()?;
                    if self_closing {
                        self.pending.push_back(Pending::Close(id));
                        if self.open.is_empty() {
                            self.document_done = true;
                        }
                    } else {
                        self.open.push(id);
                    }
                    if has_text {
                        self.pending.push_front(Pending::Open(id));
                        self.text_emitted = true;
                        return Ok(Some(XmlEvent::Text(self.text_str())));
                    }
                    return Ok(Some(XmlEvent::Open(id)));
                }
            }
        }
    }

    /// Consumes the rest of the current element's subtree — the element
    /// whose [`XmlEvent::Open`] the previous [`Self::next_event`] call
    /// returned — up to and including its matching close tag, as raw
    /// bytes. Returns the number of bytes scanned past.
    ///
    /// This is the dead-subtree fast path (see the module docs): nothing
    /// is copied, decoded, interned or materialized; the scanner only
    /// tracks nesting depth and steps over comments, CDATA sections,
    /// processing instructions, DOCTYPE declarations and quoted attribute
    /// values. The element's queued events (attribute expansion, a
    /// bachelor tag's own close) are discarded as part of the subtree; if
    /// the element was self-closing the queue already terminates it and
    /// no input bytes are consumed at all.
    ///
    /// Contract: call only immediately after an `Open` event, before any
    /// other lexer call. Relaxations versus per-event skipping are listed
    /// in the module docs; structural errors (unbalanced nesting at EOF,
    /// a mismatched close of the subtree root itself) still surface.
    pub fn skip_subtree(&mut self) -> Result<u64> {
        let (mut depth, start) = match self.skip.take() {
            // Resuming a skip interrupted by WouldBlock: position and
            // depth are back at the last item boundary.
            Some(s) => (s.depth, s.start),
            None => {
                debug_assert!(!self.text_emitted, "skip_subtree must follow an Open event");
                // Depth relative to the element being skipped: 0 means
                // the next close at this level is the element's own.
                let mut depth = 0usize;
                let mut done = false;
                while let Some(p) = self.pending.pop_front() {
                    match p {
                        Pending::Open(_) => depth += 1,
                        Pending::Close(_) => {
                            if depth == 0 {
                                // Self-closing element: the queue
                                // terminated the subtree before any raw
                                // bytes belonged to it.
                                done = true;
                                break;
                            }
                            depth -= 1;
                        }
                        Pending::AttrText { .. } => {}
                    }
                }
                if done {
                    return Ok(0);
                }
                (depth, self.offset())
            }
        };
        loop {
            match self.skip_one(&mut depth, start) {
                Ok(Some(skipped)) => return Ok(skipped),
                Ok(None) => {}
                Err(e) => {
                    if e.is_would_block() {
                        // Park the skip so the next call resumes at the
                        // item boundary the lexer rewound to.
                        self.skip = Some(SkipState { depth, start });
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One pass of the raw skip: the vectorized window scan, plus — when
    /// the window ends mid-item — one cross-refill item resolution.
    /// Returns `Some(byte count)` once the subtree root's close tag has
    /// been consumed. A `WouldBlock` read restores `depth` and the
    /// position to the in-flight item's boundary before propagating, so
    /// the pass retries verbatim.
    fn skip_one(&mut self, depth: &mut usize, start: u64) -> Result<Option<u64>> {
        // Fast path: drive the state machine over the buffered window
        // with a register-resident cursor and no helper calls (see
        // [`skip_fast`]). The kernel is selected once per window so
        // dispatch and vector constants hoist out of the per-item
        // loop; the Sse2 and Avx2 tiers share the inline-SSE2 impl
        // (scan-level rationale on [`scan::SimdOps`]).
        let outcome = match scan::active_kernel() {
            ScanKernel::Scalar => {
                skip_fast::<scan::ScalarOps>(&self.buf, self.pos, self.len, depth)
            }
            ScanKernel::Swar => skip_fast::<scan::SwarOps>(&self.buf, self.pos, self.len, depth),
            #[cfg(target_arch = "x86_64")]
            ScanKernel::Sse2 | ScanKernel::Avx2 => {
                skip_fast::<scan::SimdOps>(&self.buf, self.pos, self.len, depth)
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => skip_fast::<scan::SwarOps>(&self.buf, self.pos, self.len, depth),
        };
        match outcome {
            SkipFast::Drained => self.pos = self.len,
            SkipFast::Rewind(lt) => self.pos = lt,
            SkipFast::RootClose(i) => {
                // The subtree root's own close tag: validate it like
                // the per-event path (the name is already interned
                // from its open tag, so this allocates nothing in
                // steady state). Rewind target: the close tag's '<'
                // (depth is untouched on this path).
                self.pos = i;
                self.ckpt = i - 2;
                self.ckpt_text = self.text.len();
                let id = self.read_name_id("closing tag")?;
                self.skip_ws()?;
                self.expect(b'>', "closing tag")?;
                self.close_tag(id)?;
                let skipped = self.offset() - start;
                self.bytes_skipped += skipped;
                return Ok(Some(skipped));
            }
        }
        // Generic path: refill and resolve one item with the
        // cross-refill helpers, then return to the fast loop. Character
        // data up to the item's '<' is consumed for good (the
        // checkpoint advances with it); the item itself rewinds to its
        // '<' on WouldBlock.
        let lt;
        loop {
            self.set_ckpt();
            if !self.fill()? {
                return Err(XmlError::UnclosedElements {
                    offset: self.offset(),
                    open: self.open.len() + *depth,
                });
            }
            match scan::find_byte(&self.buf[self.pos..self.len], b'<') {
                Some(i) => {
                    lt = self.pos + i;
                    self.pos = lt + 1;
                    break;
                }
                None => self.pos = self.len,
            }
        }
        self.ckpt = lt;
        self.ckpt_text = self.text.len();
        let ck_depth = *depth;
        match self.skip_resolve_item(depth) {
            Ok(true) => {
                let skipped = self.offset() - start;
                self.bytes_skipped += skipped;
                Ok(Some(skipped))
            }
            Ok(false) => Ok(None),
            Err(e) => {
                if e.is_would_block() {
                    *depth = ck_depth;
                }
                Err(e)
            }
        }
    }

    /// Resolves one markup item whose `<` has just been consumed,
    /// possibly across refills. Returns `true` when it was the subtree
    /// root's own close tag (consumed and validated).
    fn skip_resolve_item(&mut self, depth: &mut usize) -> Result<bool> {
        match self.bump("skipped subtree")? {
            b'/' => {
                if *depth == 0 {
                    // The subtree root's own close tag: validate it
                    // like the per-event path (the name is already
                    // interned from its open tag, so this allocates
                    // nothing in steady state).
                    let id = self.read_name_id("closing tag")?;
                    self.skip_ws()?;
                    self.expect(b'>', "closing tag")?;
                    self.close_tag(id)?;
                    return Ok(true);
                }
                // Close-tag names cannot contain '>'.
                self.skip_to_byte(b'>', "closing tag")?;
                *depth -= 1;
            }
            b'!' => {
                let b3 = self.bump("markup declaration")?;
                if b3 == b'-' {
                    self.expect(b'-', "comment")?;
                    self.skip_until(b"-->", "comment")?;
                } else if b3 == b'[' {
                    for &c in b"CDATA[" {
                        self.expect(c, "CDATA section")?;
                    }
                    self.skip_until(b"]]>", "CDATA section")?;
                } else if b3 == b'D' {
                    self.skip_doctype()?;
                } else {
                    return Err(XmlError::Malformed {
                        offset: self.offset(),
                        detail: "unsupported '<!' construct".into(),
                    });
                }
            }
            b'?' => self.skip_until(b"?>", "processing instruction")?,
            _ => {
                // Opening tag. Scan to its '>' stepping over quoted
                // attribute values (which may legally contain '>');
                // '/' immediately before '>' makes it self-closing.
                // Vectorized: jump to the next of '>'/'"'/'\'',
                // tracking the last byte consumed before the jump
                // target so the self-closing check survives both
                // quote skips and buffer refills.
                let mut last = 0u8; // first name byte: never '/'
                loop {
                    if !self.fill()? {
                        return Err(XmlError::UnexpectedEof {
                            offset: self.offset(),
                            context: "opening tag",
                        });
                    }
                    match scan::find_byte3(&self.buf[self.pos..self.len], b'>', b'"', b'\'') {
                        None => {
                            last = self.buf[self.len - 1];
                            self.pos = self.len;
                        }
                        Some(i) => {
                            let c = self.buf[self.pos + i];
                            let prev = if i == 0 {
                                last
                            } else {
                                self.buf[self.pos + i - 1]
                            };
                            self.pos += i + 1;
                            if c == b'>' {
                                if prev != b'/' {
                                    *depth += 1;
                                }
                                break;
                            }
                            // A quoted attribute value: step over it
                            // wholesale ('>' inside is not a tag end).
                            self.skip_to_byte(c, "attribute value")?;
                            last = c;
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    /// Returns the next token as an owned value, or `None` at the end of
    /// the document. Allocating compatibility wrapper over
    /// [`Self::next_event`]; hot paths should prefer the borrowed API.
    pub fn next_token(&mut self) -> Result<Option<XmlToken>> {
        Ok(self.next_event()?.map(XmlEvent::into_owned))
    }

    /// Drains the remaining stream into a vector (convenience for tests).
    pub fn tokenize_all(&mut self) -> Result<Vec<XmlToken>> {
        let mut v = Vec::new();
        while let Some(t) = self.next_token()? {
            v.push(t);
        }
        Ok(v)
    }
}

/// Outcome of one [`skip_fast`] pass over the buffered window.
enum SkipFast {
    /// Window exhausted scanning character data: refill and continue.
    Drained,
    /// The markup item whose '<' is at the returned index straddles the
    /// window end or needs cross-refill machinery (comment, CDATA, PI,
    /// DOCTYPE): rewind there and resolve it with the generic helpers.
    Rewind(usize),
    /// The subtree root's own close tag: the index is just past `</`.
    RootClose(usize),
}

/// The register-resident core of [`XmlLexer::skip_subtree`]: drives the
/// dead-subtree state machine over `buf[pos..end]` with no refills and
/// no lexer-state writes. Raw character data cannot contain an
/// unescaped '<' (entities carry no raw '<'), so a plain byte scan
/// between markup items is exact. Nothing — not even `depth` — is
/// mutated until an item resolves entirely within the window, so the
/// caller can rewind to an unresolved item's '<' without state repair.
///
/// Index bookkeeping uses unchecked slicing/reads: every index is
/// bounded by `end` before use, and the caller guarantees
/// `pos <= end <= buf.len()` (it passes `self.pos`/`self.len`, the
/// lexer's buffered-window invariant). The `debug_assert!` pins that
/// contract in debug builds.
#[inline]
fn skip_fast<K: scan::ScanOps>(buf: &[u8], pos: usize, end: usize, depth: &mut usize) -> SkipFast {
    debug_assert!(pos <= end && end <= buf.len());
    // SAFETY (for every use below): `lo <= hi <= end <= buf.len()` at
    // each call site — `lo`/`hi` are only ever advanced to positions a
    // bound check against `end` has admitted.
    let tail = |lo: usize, hi: usize| unsafe { buf.get_unchecked(lo..hi) };
    let byte = |at: usize| unsafe { *buf.get_unchecked(at) };
    let mut i = pos;
    loop {
        // Adjacent markup ("</a><b>") is the common case in dense
        // regions: a one-byte check there skips the whole find call.
        let lt = if i < end && byte(i) == b'<' {
            i
        } else {
            match K::find_byte(tail(i, end), b'<') {
                Some(k) => i + k,
                None => return SkipFast::Drained,
            }
        };
        i = lt + 1;
        if i >= end {
            return SkipFast::Rewind(lt);
        }
        let b = byte(i);
        i += 1;
        match b {
            b'/' => {
                if *depth == 0 {
                    return SkipFast::RootClose(i);
                }
                // Close-tag names cannot contain '>'.
                match K::find_byte(tail(i, end), b'>') {
                    Some(k) => {
                        i += k + 1;
                        *depth -= 1;
                    }
                    None => return SkipFast::Rewind(lt),
                }
            }
            b'!' => {
                // "<!--" comment or "<![CDATA[": resolve within the
                // window, anchored on the terminator's first byte and
                // stepping past the anchor only on a failed candidate so
                // overlapping terminators ("x]]]>", "--->") resolve
                // exactly like the generic `skip_until`. DOCTYPE, a
                // malformed construct, or a terminator that may straddle
                // the window end all rewind to the generic path.
                if end - i >= 2 && byte(i) == b'-' && byte(i + 1) == b'-' {
                    let mut j = i + 2;
                    loop {
                        match K::find_byte(tail(j, end), b'-') {
                            Some(k) if j + k + 3 <= end => {
                                let m = j + k;
                                if byte(m + 1) == b'-' && byte(m + 2) == b'>' {
                                    i = m + 3;
                                    break;
                                }
                                j = m + 1;
                            }
                            _ => return SkipFast::Rewind(lt),
                        }
                    }
                } else if end - i >= 7 && tail(i, i + 7) == b"[CDATA[" {
                    let mut j = i + 7;
                    loop {
                        match K::find_byte(tail(j, end), b']') {
                            Some(k) if j + k + 3 <= end => {
                                let m = j + k;
                                if byte(m + 1) == b']' && byte(m + 2) == b'>' {
                                    i = m + 3;
                                    break;
                                }
                                j = m + 1;
                            }
                            _ => return SkipFast::Rewind(lt),
                        }
                    }
                } else {
                    return SkipFast::Rewind(lt);
                }
            }
            b'?' => {
                // Processing instruction: terminator "?>".
                let mut j = i;
                loop {
                    match K::find_byte(tail(j, end), b'?') {
                        Some(k) if j + k + 2 <= end => {
                            let m = j + k;
                            if byte(m + 1) == b'>' {
                                i = m + 2;
                                break;
                            }
                            j = m + 1;
                        }
                        _ => return SkipFast::Rewind(lt),
                    }
                }
            }
            _ => {
                // Opening tag: scan to its '>' stepping over quoted
                // attribute values (which may legally contain '>'); '/'
                // immediately before '>' makes it self-closing. The
                // whole tag is inside the window, so the byte before any
                // candidate is always addressable.
                let done = loop {
                    match K::find_byte3(tail(i, end), b'>', b'"', b'\'') {
                        None => break false,
                        Some(k) => {
                            let c = byte(i + k);
                            let prev = byte(i + k - 1);
                            i += k + 1;
                            if c == b'>' {
                                if prev != b'/' {
                                    *depth += 1;
                                }
                                break true;
                            }
                            // A quoted attribute value: step over it
                            // wholesale.
                            match K::find_byte(tail(i, end), c) {
                                Some(k2) => i += k2 + 1,
                                None => break false,
                            }
                        }
                    }
                };
                if !done {
                    return SkipFast::Rewind(lt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(input: &str) -> Vec<String> {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new(input.as_bytes(), &mut tags);
        let tokens = lexer.tokenize_all().expect("lex ok");
        tokens
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            lex("<a><b>hi</b></a>"),
            vec!["<a>", "<b>", "\"hi\"", "</b>", "</a>"]
        );
    }

    #[test]
    fn bachelor_tag_expands() {
        assert_eq!(
            lex("<a><title/></a>"),
            vec!["<a>", "<title>", "</title>", "</a>"]
        );
    }

    #[test]
    fn bachelor_root() {
        assert_eq!(lex("<a/>"), vec!["<a>", "</a>"]);
    }

    #[test]
    fn entities_resolve() {
        let t = lex("<a>&lt;x&gt; &amp; &#65;&#x42;</a>");
        assert_eq!(t[1], "\"<x> & AB\"");
    }

    #[test]
    fn entity_in_attribute() {
        let t = lex("<a v=\"x&amp;y\"/>");
        assert_eq!(t, vec!["<a>", "<v>", "\"x&y\"", "</v>", "</a>"]);
    }

    #[test]
    fn comments_and_pis_skipped() {
        assert_eq!(
            lex("<?xml version=\"1.0\"?><!-- c --><a><!-- inner -->x</a>"),
            vec!["<a>", "\"x\"", "</a>"]
        );
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            lex("<a><![CDATA[1 < 2 & 3]]></a>"),
            vec!["<a>", "\"1 < 2 & 3\"", "</a>"]
        );
    }

    #[test]
    fn cdata_with_trailing_bracket() {
        assert_eq!(lex("<a><![CDATA[x]]]></a>"), vec!["<a>", "\"x]\"", "</a>"]);
    }

    #[test]
    fn cdata_with_inner_brackets() {
        assert_eq!(
            lex("<a><![CDATA[a]]b]]></a>"),
            vec!["<a>", "\"a]]b\"", "</a>"]
        );
    }

    #[test]
    fn attributes_become_subelements() {
        assert_eq!(
            lex("<item id=\"i1\" featured=\"yes\">text</item>"),
            vec![
                "<item>",
                "<id>",
                "\"i1\"",
                "</id>",
                "<featured>",
                "\"yes\"",
                "</featured>",
                "\"text\"",
                "</item>"
            ]
        );
    }

    #[test]
    fn attributes_ignored_when_configured() {
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            attributes: AttributeMode::Ignore,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options("<a x=\"1\">t</a>".as_bytes(), &mut tags, opts);
        let tokens = lexer.tokenize_all().unwrap();
        assert_eq!(tokens.len(), 3);
    }

    #[test]
    fn attributes_error_when_configured() {
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            attributes: AttributeMode::Error,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options("<a x=\"1\"/>".as_bytes(), &mut tags, opts);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::UnexpectedAttribute { .. })
        ));
    }

    #[test]
    fn whitespace_only_dropped_by_default() {
        assert_eq!(lex("<a>\n  <b/>\n</a>"), vec!["<a>", "<b>", "</b>", "</a>"]);
    }

    #[test]
    fn whitespace_kept_when_configured() {
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            whitespace: WhitespaceMode::Keep,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options("<a> <b/> </a>".as_bytes(), &mut tags, opts);
        let tokens = lexer.tokenize_all().unwrap();
        assert_eq!(tokens.len(), 6);
    }

    #[test]
    fn mismatched_close_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b></a></b>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::MismatchedClose { .. })
        ));
    }

    #[test]
    fn unclosed_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::UnclosedElements { .. })
        ));
    }

    #[test]
    fn stray_close_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("</a>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::UnbalancedClose { .. })
        ));
    }

    #[test]
    fn trailing_element_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a/><b/>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::TrailingContent { .. })
        ));
    }

    #[test]
    fn doctype_skipped() {
        assert_eq!(
            lex("<!DOCTYPE site SYSTEM \"x.dtd\" [<!ENTITY e \"v\">]><a/>"),
            vec!["<a>", "</a>"]
        );
    }

    /// Regression: '>' inside a quoted system/public literal must not
    /// terminate the DOCTYPE declaration.
    #[test]
    fn doctype_literal_with_gt() {
        assert_eq!(
            lex("<!DOCTYPE foo SYSTEM \"a>b\"><a>x</a>"),
            vec!["<a>", "\"x\"", "</a>"]
        );
        assert_eq!(
            lex("<!DOCTYPE foo PUBLIC 'p>q' \"a>b\" [<!ENTITY e \"v>w\">]><a/>"),
            vec!["<a>", "</a>"]
        );
    }

    #[test]
    fn utf8_text_passthrough() {
        let t = lex("<a>héllo wörld — ünïcode</a>");
        assert_eq!(t[1], "\"héllo wörld — ünïcode\"");
    }

    #[test]
    fn text_split_around_children() {
        assert_eq!(
            lex("<a>x<b>y</b>z</a>"),
            vec!["<a>", "\"x\"", "<b>", "\"y\"", "</b>", "\"z\"", "</a>"]
        );
    }

    #[test]
    fn text_before_open_with_attributes() {
        assert_eq!(
            lex("<a>x<b id=\"1\"/></a>"),
            vec!["<a>", "\"x\"", "<b>", "<id>", "\"1\"", "</id>", "</b>", "</a>"]
        );
    }

    #[test]
    fn depth_reporting() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b></b></a>".as_bytes(), &mut tags);
        assert_eq!(lexer.depth(), 0);
        lexer.next_token().unwrap();
        assert_eq!(lexer.depth(), 1);
        lexer.next_token().unwrap();
        assert_eq!(lexer.depth(), 2);
    }

    #[test]
    fn offsets_advance() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a></a>".as_bytes(), &mut tags);
        assert_eq!(lexer.offset(), 0);
        lexer.tokenize_all().unwrap();
        assert_eq!(lexer.offset(), 7);
    }

    #[test]
    fn document_done_flag() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b/></a>".as_bytes(), &mut tags);
        assert!(!lexer.document_done());
        lexer.tokenize_all().unwrap();
        assert!(lexer.document_done());
    }

    // ------------------------------------------------------------------
    // Skip-mode lexing
    // ------------------------------------------------------------------

    /// Adversarial dead-subtree corpus: every construct the raw scanner
    /// must step over without miscounting depth.
    const SKIP_CORPUS: &[&str] = &[
        // Nested same-name tags.
        "<r><k><d><d><d>x</d></d></d></k><after>y</after></r>",
        // CDATA containing a close-tag lookalike and ']]' teasers.
        "<r><k><![CDATA[</k> ]] ]>&& <nope>]]></k><after/></r>",
        // CDATA terminator preceded by a ']' run (overlap fallback), and
        // a comment ending in an extra dash.
        "<r><k><![CDATA[x]]]></k><after/></r>",
        "<r><k><![CDATA[y]]]]></k><!--z---><after/></r>",
        // Comments containing tags and dashes.
        "<r><k><!-- </k> <x> -- almost --><e/></k><after/></r>",
        // Entities (not decoded while skipping) and raw ampersands in CDATA.
        "<r><k>&lt;&amp;&#65;<e>&quot;</e></k><after>&gt;</after></r>",
        // Attribute values containing '>', '<' lookalikes and quotes.
        "<r><k a=\"1>2\" b='</k>' c=\"x'y\"><e f='a\"b>c'/></k><after/></r>",
        // Processing instructions and a self-closing skip root.
        "<r><k><?pi </k> ?><e/></k><solo x=\"v>w\"/><after/></r>",
        // Whitespace inside close tags, bachelor tags, mixed text.
        "<r><k>t1<e>t2</e\t>t3<e />t4</k ><after/></r>",
        // Deep nesting with text at every level.
        "<r><k>a<d>b<d>c<d>d</d>e</d>f</d>g</k><after/></r>",
        // DOCTYPE-shaped declaration with '>' inside quoted literals
        // (regression: the literal must be stepped over, not treated as
        // the declaration terminator).
        "<r><k><!DOCTYPE d SYSTEM \"a>b\" [<!ENTITY e 'v>w'>]><e/></k><after/></r>",
    ];

    /// Lexes `doc` twice — once plainly, once skipping the subtree of
    /// every element named `k` via `skip_subtree` — and checks the
    /// skipped stream equals the plain stream with those subtrees
    /// removed, byte-position for byte-position.
    fn check_skip_equivalence(doc: &str) {
        // Reference: full token stream.
        let mut tags = TagInterner::new();
        let k = tags.intern("k");
        let mut lexer = XmlLexer::new(doc.as_bytes(), &mut tags);
        let mut reference: Vec<XmlToken> = Vec::new();
        let mut depth_skip = 0usize; // >0 while inside a skipped subtree
        while let Some(t) = lexer.next_token().expect("reference lex") {
            if depth_skip > 0 {
                match t {
                    XmlToken::Open(_) => depth_skip += 1,
                    XmlToken::Close(_) => depth_skip -= 1,
                    XmlToken::Text(_) => {}
                }
                continue;
            }
            if matches!(t, XmlToken::Open(tag) if tag == k) {
                depth_skip = 1;
                continue;
            }
            reference.push(t);
        }
        let reference_offset = lexer.offset();

        // Skip-mode: same traversal, subtree consumed by the raw scanner.
        let mut tags2 = TagInterner::new();
        let k2 = tags2.intern("k");
        let mut lexer2 = XmlLexer::new(doc.as_bytes(), &mut tags2);
        let mut got: Vec<XmlToken> = Vec::new();
        let mut skipped_total = 0u64;
        while let Some(t) = lexer2.next_token().expect("skip-mode lex") {
            if matches!(t, XmlToken::Open(tag) if tag == k2) {
                skipped_total += lexer2.skip_subtree().expect("skip ok");
                continue;
            }
            got.push(t);
        }
        // TagIds may differ between the two interners; compare rendered.
        let show = |ts: &[XmlToken], tags: &TagInterner| -> Vec<String> {
            ts.iter().map(|t| t.display(tags).to_string()).collect()
        };
        assert_eq!(
            show(&got, lexer2.tags()),
            show(&reference, lexer.tags()),
            "token streams diverge on {doc:?}"
        );
        assert_eq!(lexer2.offset(), reference_offset, "offsets diverge");
        assert_eq!(lexer2.bytes_skipped(), skipped_total);
        assert!(lexer2.document_done());
    }

    #[test]
    fn skip_subtree_equivalent_to_per_token_skipping() {
        for doc in SKIP_CORPUS {
            check_skip_equivalence(doc);
        }
    }

    /// The corpus under every chunking (mid-construct refills while the
    /// raw scanner is in flight).
    #[test]
    fn skip_subtree_chunking_invariant() {
        for doc in SKIP_CORPUS {
            for chunk in 1..=7 {
                let mut tags = TagInterner::new();
                let k = tags.intern("k");
                let reader = ChunkedReader {
                    data: doc.as_bytes(),
                    chunk,
                };
                let mut lexer = XmlLexer::new(reader, &mut tags);
                let mut shown = Vec::new();
                while let Some(t) = lexer.next_token().expect("lex ok") {
                    if matches!(t, XmlToken::Open(tag) if tag == k) {
                        lexer.skip_subtree().expect("skip ok");
                        continue;
                    }
                    shown.push(format!("{}", t.display(lexer.tags())));
                }
                assert!(
                    shown.iter().any(|s| s == "<after>"),
                    "chunk {chunk} on {doc:?}: {shown:?}"
                );
                assert!(
                    !shown
                        .iter()
                        .any(|s| s == "<e>" || s == "<d>" || s == "<nope>"),
                    "skipped content leaked at chunk {chunk} on {doc:?}: {shown:?}"
                );
            }
        }
    }

    /// Skipping a self-closing element (its close is already queued)
    /// consumes no raw bytes.
    #[test]
    fn skip_subtree_self_closing() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b x=\"v\"/><c/></a>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.next_token().unwrap(),
            Some(XmlToken::Open(_))
        )); // <a>
        assert!(matches!(
            lexer.next_token().unwrap(),
            Some(XmlToken::Open(_))
        )); // <b>
        assert_eq!(lexer.skip_subtree().unwrap(), 0, "queue terminated it");
        let rest = lexer.tokenize_all().unwrap();
        let shown: Vec<String> = rest
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect();
        assert_eq!(shown, vec!["<c>", "</c>", "</a>"]);
    }

    /// EOF inside a skipped subtree is an error, as in per-token mode.
    #[test]
    fn skip_subtree_eof_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><k><deep>".as_bytes(), &mut tags);
        lexer.next_token().unwrap(); // <a>
        lexer.next_token().unwrap(); // <k>
        assert!(matches!(
            lexer.skip_subtree(),
            Err(XmlError::UnclosedElements { .. })
        ));
    }

    /// A mismatched close of the skipped element itself is still caught.
    #[test]
    fn skip_subtree_mismatched_root_close_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><k><d>x</d></wrong></a>".as_bytes(), &mut tags);
        lexer.next_token().unwrap(); // <a>
        lexer.next_token().unwrap(); // <k>
        assert!(matches!(
            lexer.skip_subtree(),
            Err(XmlError::MismatchedClose { .. })
        ));
    }

    /// Skipping the document element finishes the document.
    #[test]
    fn skip_subtree_of_root_finishes_document() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b>x</b></a>".as_bytes(), &mut tags);
        lexer.next_token().unwrap(); // <a>
        let skipped = lexer.skip_subtree().unwrap();
        assert!(skipped > 0);
        assert!(lexer.document_done());
        assert!(lexer.next_token().unwrap().is_none());
    }

    /// A reader that yields at most `chunk` bytes per `read` call,
    /// simulating network arrival with splits at arbitrary points —
    /// including mid-tag, mid-entity, mid-CDATA and inside multi-byte
    /// UTF-8 sequences.
    struct ChunkedReader<'a> {
        data: &'a [u8],
        chunk: usize,
    }

    impl Read for ChunkedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.data.len().min(self.chunk).min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    fn lex_chunked(input: &str, chunk: usize) -> Vec<String> {
        let mut tags = TagInterner::new();
        let reader = ChunkedReader {
            data: input.as_bytes(),
            chunk,
        };
        let mut lexer = XmlLexer::new(reader, &mut tags);
        let tokens = lexer.tokenize_all().expect("lex ok");
        tokens
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect()
    }

    /// Chunk boundaries anywhere — even inside tokens — never change the
    /// token stream. This is the property the push-based session runtime
    /// (gcx-service) relies on.
    #[test]
    fn chunk_boundaries_mid_token_are_invisible() {
        let doc = "<a id=\"x&amp;y\"><![CDATA[1 < 2]]>h\u{e9}llo \u{2014} w\u{f6}rld\
                   <!-- c --><b/>&#65;&lt;tail</a>";
        let reference = lex(doc);
        assert!(!reference.is_empty());
        for chunk in 1..=16 {
            assert_eq!(
                lex_chunked(doc, chunk),
                reference,
                "token stream changed at chunk size {chunk}"
            );
        }
    }

    /// Splits inside a closing tag, an entity reference and a DOCTYPE.
    #[test]
    fn chunk_boundaries_in_every_construct() {
        let doc = "<!DOCTYPE site SYSTEM \"x.dtd\"><root><item k=\"v\">a&quot;b</item></root>";
        let reference = lex(doc);
        for chunk in 1..=7 {
            assert_eq!(lex_chunked(doc, chunk), reference, "chunk size {chunk}");
        }
    }

    /// Errors are also chunking-independent: malformed input fails the
    /// same way regardless of how it arrives.
    #[test]
    fn malformed_input_fails_identically_under_chunking() {
        let doc = "<a><b></a>";
        for chunk in [1usize, 2, 3, 1024] {
            let mut tags = TagInterner::new();
            let reader = ChunkedReader {
                data: doc.as_bytes(),
                chunk,
            };
            let mut lexer = XmlLexer::new(reader, &mut tags);
            assert!(
                matches!(lexer.tokenize_all(), Err(XmlError::MismatchedClose { .. })),
                "chunk size {chunk}"
            );
        }
    }

    /// A reader that returns `WouldBlock` before every chunk, simulating
    /// a non-blocking socket that runs dry at arbitrary points —
    /// including mid-tag, mid-entity, mid-comment and mid-CDATA.
    struct BlockyReader<'a> {
        data: &'a [u8],
        chunk: usize,
        ready: bool,
    }

    impl Read for BlockyReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            let n = self.data.len().min(self.chunk).min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    /// Lexes a document off a non-blocking reader, retrying the same
    /// call whenever the lexer reports `WouldBlock`. The rewind
    /// machinery must make the retries invisible: the token stream is
    /// identical to blocking lexing at every chunk size.
    #[test]
    fn would_block_retries_are_invisible() {
        let doc = "<a id=\"x&amp;y\"><![CDATA[1 < 2]]>h\u{e9}llo \u{2014} w\u{f6}rld\
                   <!-- c --><b/>&#65;&lt;tail</a>";
        let reference = lex(doc);
        for chunk in 1..=16 {
            let mut tags = TagInterner::new();
            let reader = BlockyReader {
                data: doc.as_bytes(),
                chunk,
                ready: false,
            };
            let mut lexer = XmlLexer::new(reader, &mut tags);
            let mut shown = Vec::new();
            let mut blocked = 0u32;
            loop {
                match lexer.next_token() {
                    Ok(Some(t)) => shown.push(t.display(lexer.tags()).to_string()),
                    Ok(None) => break,
                    Err(e) if e.is_would_block() => blocked += 1,
                    Err(e) => panic!("chunk {chunk}: {e}"),
                }
            }
            assert_eq!(shown, reference, "stream changed at chunk size {chunk}");
            assert!(blocked > 0, "the reader never ran dry at chunk {chunk}");
        }
    }

    /// `skip_subtree` interrupted by `WouldBlock` resumes where it left
    /// off: the adversarial corpus skips identically under a reader
    /// that runs dry between every chunk.
    #[test]
    fn skip_subtree_resumes_across_would_block() {
        for doc in SKIP_CORPUS {
            for chunk in 1..=7 {
                let mut tags = TagInterner::new();
                let k = tags.intern("k");
                let reader = BlockyReader {
                    data: doc.as_bytes(),
                    chunk,
                    ready: false,
                };
                let mut lexer = XmlLexer::new(reader, &mut tags);
                let mut shown = Vec::new();
                loop {
                    match lexer.next_token() {
                        Ok(Some(t)) => {
                            if matches!(t, XmlToken::Open(tag) if tag == k) {
                                loop {
                                    match lexer.skip_subtree() {
                                        Ok(_) => break,
                                        Err(e) if e.is_would_block() => continue,
                                        Err(e) => panic!("chunk {chunk} on {doc:?}: {e}"),
                                    }
                                }
                                continue;
                            }
                            shown.push(t.display(lexer.tags()).to_string());
                        }
                        Ok(None) => break,
                        Err(e) if e.is_would_block() => continue,
                        Err(e) => panic!("chunk {chunk} on {doc:?}: {e}"),
                    }
                }
                assert!(
                    shown.iter().any(|s| s == "<after>"),
                    "chunk {chunk} on {doc:?}: {shown:?}"
                );
                assert!(
                    !shown
                        .iter()
                        .any(|s| s == "<e>" || s == "<d>" || s == "<nope>"),
                    "skipped content leaked at chunk {chunk} on {doc:?}: {shown:?}"
                );
            }
        }
    }

    /// A construct larger than the lexer buffer grows it instead of
    /// wedging: a giant CDATA section (whose bytes the checkpoint pins
    /// until the terminator) lexes correctly.
    #[test]
    fn construct_larger_than_buffer_grows_it() {
        let big = "x".repeat(BUF_SIZE * 2 + 17);
        let doc = format!("<a><![CDATA[{big}]]></a>");
        let mut tags = TagInterner::new();
        let reader = ChunkedReader {
            data: doc.as_bytes(),
            chunk: 4096,
        };
        let mut lexer = XmlLexer::new(reader, &mut tags);
        let tokens = lexer.tokenize_all().unwrap();
        match &tokens[1] {
            XmlToken::Text(t) => assert_eq!(t.len(), big.len()),
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn small_reads_from_chunked_reader() {
        // A reader that yields one byte at a time stresses buffer refills.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut tags = TagInterner::new();
        let input = b"<a a1=\"v\">text<b/>more</a>";
        let mut lexer = XmlLexer::new(OneByte(input), &mut tags);
        let tokens = lexer.tokenize_all().unwrap();
        let shown: Vec<String> = tokens
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect();
        assert_eq!(
            shown,
            vec!["<a>", "<a1>", "\"v\"", "</a1>", "\"text\"", "<b>", "</b>", "\"more\"", "</a>"]
        );
    }
}
