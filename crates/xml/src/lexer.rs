//! Pull-based streaming XML tokenizer.
//!
//! The GCX stream preprojector consumes the input one token at a time
//! (paper Fig. 11: the buffer manager issues `nextNode()` requests). This
//! lexer delivers exactly that interface: [`XmlLexer::next_token`] returns
//! the next [`XmlToken`] without ever materializing the document.
//!
//! Supported input constructs: elements, character data, entity references
//! (`&lt; &gt; &amp; &apos; &quot; &#10; &#x0A;`), CDATA sections, comments,
//! processing instructions, XML declarations and DOCTYPE declarations
//! (the latter four are skipped). Attributes are handled according to
//! [`AttributeMode`]; the paper converted attributes into subelements for
//! all of its benchmarks, which is this lexer's default.

use crate::error::XmlError;
use crate::tags::{TagId, TagInterner};
use crate::token::XmlToken;
use crate::Result;
use std::collections::VecDeque;
use std::io::Read;

/// What to do with attributes in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttributeMode {
    /// Convert each attribute `a="v"` of `<e>` into a leading subelement
    /// `<a>v</a>` of `e`, in attribute order. This is the adaptation the
    /// paper applied to the XMark data ("we converted XML attributes into
    /// subelements", §7).
    #[default]
    AsSubelements,
    /// Silently drop attributes.
    Ignore,
    /// Reject documents containing attributes.
    Error,
}

/// What to do with whitespace-only character data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WhitespaceMode {
    /// Deliver whitespace-only text tokens (faithful to the stream).
    Keep,
    /// Drop text tokens that consist solely of XML whitespace. Useful when
    /// evaluating queries over pretty-printed documents, where indentation
    /// would otherwise be buffered by `dos::node()` projections.
    #[default]
    DropWhitespaceOnly,
}

/// Lexer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct LexerOptions {
    pub attributes: AttributeMode,
    pub whitespace: WhitespaceMode,
}

/// Streaming tokenizer over any [`Read`].
///
/// The lexer performs its own buffering (do not wrap the reader in a
/// `BufReader`). Well-formedness is enforced: tags must balance, and
/// exactly one document element is allowed.
pub struct XmlLexer<'t, R: Read> {
    reader: R,
    buf: Vec<u8>,
    /// Valid bytes are `buf[pos..len]`.
    pos: usize,
    len: usize,
    /// Total bytes consumed from the reader before `buf\[0\]`.
    base: u64,
    tags: &'t mut TagInterner,
    opts: LexerOptions,
    /// Stack of open element tags, for balance checking.
    open: Vec<TagId>,
    /// Queued tokens (from bachelor tags / attribute expansion).
    pending: VecDeque<XmlToken>,
    /// True once the single document element has closed.
    document_done: bool,
    /// Scratch for character data accumulation (raw UTF-8 bytes).
    text: Vec<u8>,
    eof: bool,
}

const BUF_SIZE: usize = 64 * 1024;

impl<'t, R: Read> XmlLexer<'t, R> {
    /// Creates a lexer with default options.
    pub fn new(reader: R, tags: &'t mut TagInterner) -> Self {
        Self::with_options(reader, tags, LexerOptions::default())
    }

    /// Creates a lexer with explicit options.
    pub fn with_options(reader: R, tags: &'t mut TagInterner, opts: LexerOptions) -> Self {
        XmlLexer {
            reader,
            buf: vec![0; BUF_SIZE],
            pos: 0,
            len: 0,
            base: 0,
            tags,
            opts,
            open: Vec::with_capacity(16),
            pending: VecDeque::new(),
            document_done: false,
            text: Vec::new(),
            eof: false,
        }
    }

    /// Byte offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Access to the shared tag interner.
    pub fn tags(&self) -> &TagInterner {
        self.tags
    }

    /// True once the document element has been completely read.
    pub fn document_done(&self) -> bool {
        self.document_done && self.pending.is_empty()
    }

    #[inline]
    fn fill(&mut self) -> Result<bool> {
        if self.pos < self.len {
            return Ok(true);
        }
        if self.eof {
            return Ok(false);
        }
        self.base += self.len as u64;
        self.pos = 0;
        self.len = 0;
        loop {
            match self.reader.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.len = n;
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    #[inline]
    fn peek(&mut self) -> Result<Option<u8>> {
        if self.fill()? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    #[inline]
    fn bump(&mut self, context: &'static str) -> Result<u8> {
        match self.peek()? {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(XmlError::UnexpectedEof {
                offset: self.offset(),
                context,
            }),
        }
    }

    fn expect(&mut self, b: u8, context: &'static str) -> Result<()> {
        let got = self.bump(context)?;
        if got != b {
            return Err(XmlError::Malformed {
                offset: self.offset() - 1,
                detail: format!(
                    "expected '{}' in {context}, found '{}'",
                    b as char, got as char
                ),
            });
        }
        Ok(())
    }

    fn skip_until(&mut self, suffix: &[u8], context: &'static str) -> Result<()> {
        let mut matched = 0;
        loop {
            let b = self.bump(context)?;
            if b == suffix[matched] {
                matched += 1;
                if matched == suffix.len() {
                    return Ok(());
                }
            } else {
                matched = usize::from(b == suffix[0]);
            }
        }
    }

    fn read_name(&mut self, context: &'static str) -> Result<String> {
        let mut name = String::new();
        loop {
            match self.peek()? {
                Some(b)
                    if b.is_ascii_alphanumeric()
                        || b == b'_'
                        || b == b'-'
                        || b == b'.'
                        || b == b':' =>
                {
                    name.push(b as char);
                    self.pos += 1;
                }
                Some(_) => break,
                None => {
                    return Err(XmlError::UnexpectedEof {
                        offset: self.offset(),
                        context,
                    })
                }
            }
        }
        if name.is_empty() {
            return Err(XmlError::Malformed {
                offset: self.offset(),
                detail: format!("empty name in {context}"),
            });
        }
        Ok(name)
    }

    fn skip_ws(&mut self) -> Result<()> {
        while let Some(b) = self.peek()? {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Decodes one entity reference; the leading `&` is already consumed.
    fn read_entity(&mut self) -> Result<char> {
        let mut name = String::new();
        loop {
            let b = self.bump("entity reference")?;
            if b == b';' {
                break;
            }
            if name.len() > 10 {
                return Err(XmlError::Malformed {
                    offset: self.offset(),
                    detail: "entity reference too long".into(),
                });
            }
            name.push(b as char);
        }
        let bad = |detail: String, offset: u64| XmlError::Malformed { offset, detail };
        let off = self.offset();
        Ok(match name.as_str() {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| bad(format!("bad hex character reference &{name};"), off))?;
                char::from_u32(cp)
                    .ok_or_else(|| bad(format!("invalid code point in &{name};"), off))?
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..]
                    .parse()
                    .map_err(|_| bad(format!("bad character reference &{name};"), off))?;
                char::from_u32(cp)
                    .ok_or_else(|| bad(format!("invalid code point in &{name};"), off))?
            }
            _ => return Err(bad(format!("unknown entity &{name};"), off)),
        })
    }

    /// Reads a quoted attribute value (opening quote already consumed).
    fn read_attr_value(&mut self, quote: u8) -> Result<String> {
        let mut v: Vec<u8> = Vec::new();
        loop {
            let b = self.bump("attribute value")?;
            if b == quote {
                return String::from_utf8(v).map_err(|_| XmlError::Malformed {
                    offset: self.offset(),
                    detail: "attribute value is not valid UTF-8".into(),
                });
            }
            if b == b'&' {
                let c = self.read_entity()?;
                let mut enc = [0u8; 4];
                v.extend_from_slice(c.encode_utf8(&mut enc).as_bytes());
            } else {
                v.push(b);
            }
        }
    }

    /// Parses the inside of an opening tag after the name. Returns `true`
    /// when the tag is self-closing. Attribute tokens are queued according
    /// to the configured [`AttributeMode`].
    fn read_tag_rest(&mut self) -> Result<bool> {
        loop {
            self.skip_ws()?;
            match self.peek()? {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>', "self-closing tag")?;
                    return Ok(true);
                }
                Some(_) => {
                    let at = self.offset();
                    let name = self.read_name("attribute name")?;
                    self.skip_ws()?;
                    self.expect(b'=', "attribute")?;
                    self.skip_ws()?;
                    let q = self.bump("attribute value")?;
                    if q != b'"' && q != b'\'' {
                        return Err(XmlError::Malformed {
                            offset: self.offset() - 1,
                            detail: "attribute value must be quoted".into(),
                        });
                    }
                    let value = self.read_attr_value(q)?;
                    match self.opts.attributes {
                        AttributeMode::AsSubelements => {
                            let id = self.tags.intern(&name);
                            self.pending.push_back(XmlToken::Open(id));
                            if !value.is_empty() {
                                self.pending.push_back(XmlToken::Text(value));
                            }
                            self.pending.push_back(XmlToken::Close(id));
                        }
                        AttributeMode::Ignore => {}
                        AttributeMode::Error => {
                            return Err(XmlError::UnexpectedAttribute { offset: at, name });
                        }
                    }
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        offset: self.offset(),
                        context: "opening tag",
                    })
                }
            }
        }
    }

    /// Consumes a CDATA section (after `<![`) into the text buffer.
    fn read_cdata(&mut self) -> Result<()> {
        for &b in b"CDATA[" {
            self.expect(b, "CDATA section")?;
        }
        // Scan for ]]> while copying bytes.
        let mut tail = 0usize; // how many trailing ']' seen
        loop {
            let b = self.bump("CDATA section")?;
            match (b, tail) {
                (b']', _) => tail += 1,
                (b'>', t) if t >= 2 => {
                    for _ in 0..t - 2 {
                        self.text.push(b']');
                    }
                    return Ok(());
                }
                (_, t) => {
                    for _ in 0..t {
                        self.text.push(b']');
                    }
                    tail = 0;
                    self.text.push(b);
                }
            }
        }
    }

    /// Flushes accumulated text as a token if non-empty and allowed by the
    /// whitespace mode.
    fn take_text(&mut self) -> Result<Option<XmlToken>> {
        if self.text.is_empty() {
            return Ok(None);
        }
        let keep = match self.opts.whitespace {
            WhitespaceMode::Keep => true,
            WhitespaceMode::DropWhitespaceOnly => {
                self.text.iter().any(|b| !b.is_ascii_whitespace())
            }
        };
        let bytes = std::mem::take(&mut self.text);
        if !keep {
            return Ok(None);
        }
        let s = String::from_utf8(bytes).map_err(|_| XmlError::Malformed {
            offset: self.offset(),
            detail: "character data is not valid UTF-8".into(),
        })?;
        Ok(Some(XmlToken::Text(s)))
    }

    fn close_tag(&mut self, name: &str) -> Result<TagId> {
        let id = self.tags.intern(name);
        match self.open.pop() {
            Some(top) if top == id => {
                if self.open.is_empty() {
                    self.document_done = true;
                }
                Ok(id)
            }
            Some(top) => Err(XmlError::MismatchedClose {
                offset: self.offset(),
                expected: self.tags.name(top).to_string(),
                found: name.to_string(),
            }),
            None => Err(XmlError::UnbalancedClose {
                offset: self.offset(),
                tag: name.to_string(),
            }),
        }
    }

    /// Returns the next token, or `None` at the end of the document.
    pub fn next_token(&mut self) -> Result<Option<XmlToken>> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Some(t));
        }
        loop {
            let b = match self.peek()? {
                Some(b) => b,
                None => {
                    if !self.open.is_empty() {
                        return Err(XmlError::UnclosedElements {
                            offset: self.offset(),
                            open: self.open.len(),
                        });
                    }
                    return Ok(None);
                }
            };
            if b != b'<' {
                self.pos += 1;
                if self.open.is_empty() {
                    if !b.is_ascii_whitespace() {
                        return Err(if self.document_done {
                            XmlError::TrailingContent {
                                offset: self.offset() - 1,
                            }
                        } else {
                            XmlError::Malformed {
                                offset: self.offset() - 1,
                                detail: "character data outside document element".into(),
                            }
                        });
                    }
                    continue;
                }
                if b == b'&' {
                    let c = self.read_entity()?;
                    let mut enc = [0u8; 4];
                    self.text
                        .extend_from_slice(c.encode_utf8(&mut enc).as_bytes());
                } else {
                    self.text.push(b);
                }
                continue;
            }
            // A markup construct begins; flush any accumulated text first,
            // then process the markup on the next call(s).
            self.pos += 1;
            let b2 = self.bump("markup")?;
            match b2 {
                b'?' => {
                    self.skip_until(b"?>", "processing instruction")?;
                }
                b'!' => {
                    let b3 = self.bump("markup declaration")?;
                    if b3 == b'-' {
                        self.expect(b'-', "comment")?;
                        self.skip_until(b"-->", "comment")?;
                    } else if b3 == b'[' {
                        if self.open.is_empty() {
                            return Err(XmlError::Malformed {
                                offset: self.offset(),
                                detail: "CDATA outside document element".into(),
                            });
                        }
                        self.read_cdata()?;
                    } else if b3 == b'D' {
                        let mut depth = 0usize;
                        loop {
                            let c = self.bump("DOCTYPE")?;
                            match c {
                                b'[' => depth += 1,
                                b']' => depth = depth.saturating_sub(1),
                                b'>' if depth == 0 => break,
                                _ => {}
                            }
                        }
                    } else {
                        return Err(XmlError::Malformed {
                            offset: self.offset(),
                            detail: "unsupported '<!' construct".into(),
                        });
                    }
                }
                b'/' => {
                    let text = self.take_text()?;
                    let name = self.read_name("closing tag")?;
                    self.skip_ws()?;
                    self.expect(b'>', "closing tag")?;
                    let id = self.close_tag(&name)?;
                    if let Some(t) = text {
                        self.pending.push_back(XmlToken::Close(id));
                        return Ok(Some(t));
                    }
                    return Ok(Some(XmlToken::Close(id)));
                }
                _ => {
                    if self.document_done {
                        return Err(XmlError::TrailingContent {
                            offset: self.offset(),
                        });
                    }
                    let text = self.take_text()?;
                    self.pos -= 1; // un-consume the first name byte
                    let name = self.read_name("opening tag")?;
                    let id = self.tags.intern(&name);
                    // Attribute tokens are queued by read_tag_rest; they must
                    // appear *after* the Open token, so remember where the
                    // queue started.
                    let queue_start = self.pending.len();
                    let self_closing = self.read_tag_rest()?;
                    debug_assert_eq!(queue_start, 0, "pending drained before markup");
                    if self_closing {
                        self.pending.push_back(XmlToken::Close(id));
                        if self.open.is_empty() {
                            self.document_done = true;
                        }
                    } else {
                        self.open.push(id);
                    }
                    if let Some(t) = text {
                        self.pending.push_front(XmlToken::Open(id));
                        return Ok(Some(t));
                    }
                    return Ok(Some(XmlToken::Open(id)));
                }
            }
        }
    }

    /// Drains the remaining stream into a vector (convenience for tests).
    pub fn tokenize_all(&mut self) -> Result<Vec<XmlToken>> {
        let mut v = Vec::new();
        while let Some(t) = self.next_token()? {
            v.push(t);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(input: &str) -> Vec<String> {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new(input.as_bytes(), &mut tags);
        let tokens = lexer.tokenize_all().expect("lex ok");
        tokens
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            lex("<a><b>hi</b></a>"),
            vec!["<a>", "<b>", "\"hi\"", "</b>", "</a>"]
        );
    }

    #[test]
    fn bachelor_tag_expands() {
        assert_eq!(
            lex("<a><title/></a>"),
            vec!["<a>", "<title>", "</title>", "</a>"]
        );
    }

    #[test]
    fn bachelor_root() {
        assert_eq!(lex("<a/>"), vec!["<a>", "</a>"]);
    }

    #[test]
    fn entities_resolve() {
        let t = lex("<a>&lt;x&gt; &amp; &#65;&#x42;</a>");
        assert_eq!(t[1], "\"<x> & AB\"");
    }

    #[test]
    fn entity_in_attribute() {
        let t = lex("<a v=\"x&amp;y\"/>");
        assert_eq!(t, vec!["<a>", "<v>", "\"x&y\"", "</v>", "</a>"]);
    }

    #[test]
    fn comments_and_pis_skipped() {
        assert_eq!(
            lex("<?xml version=\"1.0\"?><!-- c --><a><!-- inner -->x</a>"),
            vec!["<a>", "\"x\"", "</a>"]
        );
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            lex("<a><![CDATA[1 < 2 & 3]]></a>"),
            vec!["<a>", "\"1 < 2 & 3\"", "</a>"]
        );
    }

    #[test]
    fn cdata_with_trailing_bracket() {
        assert_eq!(lex("<a><![CDATA[x]]]></a>"), vec!["<a>", "\"x]\"", "</a>"]);
    }

    #[test]
    fn cdata_with_inner_brackets() {
        assert_eq!(
            lex("<a><![CDATA[a]]b]]></a>"),
            vec!["<a>", "\"a]]b\"", "</a>"]
        );
    }

    #[test]
    fn attributes_become_subelements() {
        assert_eq!(
            lex("<item id=\"i1\" featured=\"yes\">text</item>"),
            vec![
                "<item>",
                "<id>",
                "\"i1\"",
                "</id>",
                "<featured>",
                "\"yes\"",
                "</featured>",
                "\"text\"",
                "</item>"
            ]
        );
    }

    #[test]
    fn attributes_ignored_when_configured() {
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            attributes: AttributeMode::Ignore,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options("<a x=\"1\">t</a>".as_bytes(), &mut tags, opts);
        let tokens = lexer.tokenize_all().unwrap();
        assert_eq!(tokens.len(), 3);
    }

    #[test]
    fn attributes_error_when_configured() {
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            attributes: AttributeMode::Error,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options("<a x=\"1\"/>".as_bytes(), &mut tags, opts);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::UnexpectedAttribute { .. })
        ));
    }

    #[test]
    fn whitespace_only_dropped_by_default() {
        assert_eq!(lex("<a>\n  <b/>\n</a>"), vec!["<a>", "<b>", "</b>", "</a>"]);
    }

    #[test]
    fn whitespace_kept_when_configured() {
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            whitespace: WhitespaceMode::Keep,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options("<a> <b/> </a>".as_bytes(), &mut tags, opts);
        let tokens = lexer.tokenize_all().unwrap();
        assert_eq!(tokens.len(), 6);
    }

    #[test]
    fn mismatched_close_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b></a></b>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::MismatchedClose { .. })
        ));
    }

    #[test]
    fn unclosed_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::UnclosedElements { .. })
        ));
    }

    #[test]
    fn stray_close_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("</a>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::UnbalancedClose { .. })
        ));
    }

    #[test]
    fn trailing_element_rejected() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a/><b/>".as_bytes(), &mut tags);
        assert!(matches!(
            lexer.tokenize_all(),
            Err(XmlError::TrailingContent { .. })
        ));
    }

    #[test]
    fn doctype_skipped() {
        assert_eq!(
            lex("<!DOCTYPE site SYSTEM \"x.dtd\" [<!ENTITY e \"v\">]><a/>"),
            vec!["<a>", "</a>"]
        );
    }

    #[test]
    fn utf8_text_passthrough() {
        let t = lex("<a>héllo wörld — ünïcode</a>");
        assert_eq!(t[1], "\"héllo wörld — ünïcode\"");
    }

    #[test]
    fn text_split_around_children() {
        assert_eq!(
            lex("<a>x<b>y</b>z</a>"),
            vec!["<a>", "\"x\"", "<b>", "\"y\"", "</b>", "\"z\"", "</a>"]
        );
    }

    #[test]
    fn text_before_open_with_attributes() {
        assert_eq!(
            lex("<a>x<b id=\"1\"/></a>"),
            vec!["<a>", "\"x\"", "<b>", "<id>", "\"1\"", "</id>", "</b>", "</a>"]
        );
    }

    #[test]
    fn depth_reporting() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b></b></a>".as_bytes(), &mut tags);
        assert_eq!(lexer.depth(), 0);
        lexer.next_token().unwrap();
        assert_eq!(lexer.depth(), 1);
        lexer.next_token().unwrap();
        assert_eq!(lexer.depth(), 2);
    }

    #[test]
    fn offsets_advance() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a></a>".as_bytes(), &mut tags);
        assert_eq!(lexer.offset(), 0);
        lexer.tokenize_all().unwrap();
        assert_eq!(lexer.offset(), 7);
    }

    #[test]
    fn document_done_flag() {
        let mut tags = TagInterner::new();
        let mut lexer = XmlLexer::new("<a><b/></a>".as_bytes(), &mut tags);
        assert!(!lexer.document_done());
        lexer.tokenize_all().unwrap();
        assert!(lexer.document_done());
    }

    /// A reader that yields at most `chunk` bytes per `read` call,
    /// simulating network arrival with splits at arbitrary points —
    /// including mid-tag, mid-entity, mid-CDATA and inside multi-byte
    /// UTF-8 sequences.
    struct ChunkedReader<'a> {
        data: &'a [u8],
        chunk: usize,
    }

    impl Read for ChunkedReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.data.len().min(self.chunk).min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    fn lex_chunked(input: &str, chunk: usize) -> Vec<String> {
        let mut tags = TagInterner::new();
        let reader = ChunkedReader {
            data: input.as_bytes(),
            chunk,
        };
        let mut lexer = XmlLexer::new(reader, &mut tags);
        let tokens = lexer.tokenize_all().expect("lex ok");
        tokens
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect()
    }

    /// Chunk boundaries anywhere — even inside tokens — never change the
    /// token stream. This is the property the push-based session runtime
    /// (gcx-service) relies on.
    #[test]
    fn chunk_boundaries_mid_token_are_invisible() {
        let doc = "<a id=\"x&amp;y\"><![CDATA[1 < 2]]>h\u{e9}llo \u{2014} w\u{f6}rld\
                   <!-- c --><b/>&#65;&lt;tail</a>";
        let reference = lex(doc);
        assert!(!reference.is_empty());
        for chunk in 1..=16 {
            assert_eq!(
                lex_chunked(doc, chunk),
                reference,
                "token stream changed at chunk size {chunk}"
            );
        }
    }

    /// Splits inside a closing tag, an entity reference and a DOCTYPE.
    #[test]
    fn chunk_boundaries_in_every_construct() {
        let doc = "<!DOCTYPE site SYSTEM \"x.dtd\"><root><item k=\"v\">a&quot;b</item></root>";
        let reference = lex(doc);
        for chunk in 1..=7 {
            assert_eq!(lex_chunked(doc, chunk), reference, "chunk size {chunk}");
        }
    }

    /// Errors are also chunking-independent: malformed input fails the
    /// same way regardless of how it arrives.
    #[test]
    fn malformed_input_fails_identically_under_chunking() {
        let doc = "<a><b></a>";
        for chunk in [1usize, 2, 3, 1024] {
            let mut tags = TagInterner::new();
            let reader = ChunkedReader {
                data: doc.as_bytes(),
                chunk,
            };
            let mut lexer = XmlLexer::new(reader, &mut tags);
            assert!(
                matches!(lexer.tokenize_all(), Err(XmlError::MismatchedClose { .. })),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn small_reads_from_chunked_reader() {
        // A reader that yields one byte at a time stresses buffer refills.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut tags = TagInterner::new();
        let input = b"<a a1=\"v\">text<b/>more</a>";
        let mut lexer = XmlLexer::new(OneByte(input), &mut tags);
        let tokens = lexer.tokenize_all().unwrap();
        let shown: Vec<String> = tokens
            .iter()
            .map(|t| t.display(lexer.tags()).to_string())
            .collect();
        assert_eq!(
            shown,
            vec!["<a>", "<a1>", "\"v\"", "</a1>", "\"text\"", "<b>", "</b>", "\"more\"", "</a>"]
        );
    }
}
