//! The stream event model: XML documents as streams of opening tags,
//! closing tags and character data (paper §2).

use crate::tags::{TagId, TagInterner};
use std::fmt;

/// One event of an XML stream.
///
/// The depth-first left-to-right traversal of a document tree in document
/// order yields the corresponding token stream, and a well-formed token
/// stream encodes an unranked labeled tree (paper §2). Bachelor tags
/// (`<title/>`) are delivered as an [`XmlToken::Open`] immediately followed
/// by an [`XmlToken::Close`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlToken {
    /// `<tag>` — the opening tag of an element.
    Open(TagId),
    /// `</tag>` — the closing tag of an element.
    Close(TagId),
    /// Character data between tags (entity references already resolved).
    Text(String),
}

impl XmlToken {
    /// True for [`XmlToken::Open`].
    pub fn is_open(&self) -> bool {
        matches!(self, XmlToken::Open(_))
    }

    /// True for [`XmlToken::Close`].
    pub fn is_close(&self) -> bool {
        matches!(self, XmlToken::Close(_))
    }

    /// True for [`XmlToken::Text`].
    pub fn is_text(&self) -> bool {
        matches!(self, XmlToken::Text(_))
    }

    /// Renders the token with tag names resolved, for traces and tests.
    pub fn display<'a>(&'a self, tags: &'a TagInterner) -> TokenDisplay<'a> {
        TokenDisplay { token: self, tags }
    }

    /// Approximate in-memory size of the token payload in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            XmlToken::Open(_) | XmlToken::Close(_) => 4,
            XmlToken::Text(s) => s.len(),
        }
    }
}

/// A borrowed stream event, the zero-allocation dual of [`XmlToken`].
///
/// [`crate::XmlLexer::next_event`] hands text out as a `&str` into the
/// lexer's internal scratch buffer — valid until the next lexer call — so
/// the per-event hot path (lexer → projector → buffer) never materializes
/// an owned `String`. Convert with [`XmlEvent::into_owned`] when the event
/// must outlive the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// `<tag>` — the opening tag of an element.
    Open(TagId),
    /// `</tag>` — the closing tag of an element.
    Close(TagId),
    /// Character data borrowed from the lexer's scratch buffer.
    Text(&'a str),
}

impl XmlEvent<'_> {
    /// Copies the event into an owned [`XmlToken`].
    pub fn into_owned(self) -> XmlToken {
        match self {
            XmlEvent::Open(t) => XmlToken::Open(t),
            XmlEvent::Close(t) => XmlToken::Close(t),
            XmlEvent::Text(s) => XmlToken::Text(s.to_string()),
        }
    }
}

/// Helper returned by [`XmlToken::display`].
pub struct TokenDisplay<'a> {
    token: &'a XmlToken,
    tags: &'a TagInterner,
}

impl fmt::Display for TokenDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.token {
            XmlToken::Open(t) => write!(f, "<{}>", self.tags.name(*t)),
            XmlToken::Close(t) => write!(f, "</{}>", self.tags.name(*t)),
            XmlToken::Text(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        assert!(XmlToken::Open(a).is_open());
        assert!(XmlToken::Close(a).is_close());
        assert!(XmlToken::Text("x".into()).is_text());
        assert!(!XmlToken::Open(a).is_text());
    }

    #[test]
    fn display_resolves_names() {
        let mut tags = TagInterner::new();
        let a = tags.intern("bib");
        assert_eq!(XmlToken::Open(a).display(&tags).to_string(), "<bib>");
        assert_eq!(XmlToken::Close(a).display(&tags).to_string(), "</bib>");
        assert_eq!(
            XmlToken::Text("hi".into()).display(&tags).to_string(),
            "\"hi\""
        );
    }

    #[test]
    fn approx_bytes_counts_text() {
        assert_eq!(XmlToken::Text("abcd".into()).approx_bytes(), 4);
    }
}
