//! Escaping, streaming XML output.
//!
//! The GCX evaluator produces its result as a stream of tokens written
//! directly to a sink (paper Fig. 2, "output stream" column). [`XmlWriter`]
//! performs the escaping; [`CountingSink`] is a sink that only counts bytes,
//! used by the benchmark harness so that output I/O does not dominate the
//! measurements.

use crate::tags::{TagId, TagInterner};
use crate::token::XmlToken;
use std::io::{self, Write};

/// Writes XML tokens to an [`io::Write`], escaping character data.
///
/// The writer does not buffer; wrap the sink in a `BufWriter` (or use
/// [`XmlWriter::into_inner`] with a `Vec<u8>`) for performance.
pub struct XmlWriter<W: Write> {
    sink: W,
    bytes_written: u64,
    depth: usize,
}

impl<W: Write> XmlWriter<W> {
    /// Creates a writer over `sink`.
    pub fn new(sink: W) -> Self {
        XmlWriter {
            sink,
            bytes_written: 0,
            depth: 0,
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Current open-element depth of the written stream.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Writes one token, resolving tag names through `tags`.
    pub fn write_token(&mut self, token: &XmlToken, tags: &TagInterner) -> io::Result<()> {
        match token {
            XmlToken::Open(t) => self.open(*t, tags),
            XmlToken::Close(t) => self.close(*t, tags),
            XmlToken::Text(s) => self.text(s),
        }
    }

    /// Writes `<name>`.
    pub fn open(&mut self, tag: TagId, tags: &TagInterner) -> io::Result<()> {
        let name = tags.name(tag);
        self.sink.write_all(b"<")?;
        self.sink.write_all(name.as_bytes())?;
        self.sink.write_all(b">")?;
        self.bytes_written += name.len() as u64 + 2;
        self.depth += 1;
        Ok(())
    }

    /// Writes `</name>`.
    pub fn close(&mut self, tag: TagId, tags: &TagInterner) -> io::Result<()> {
        let name = tags.name(tag);
        self.sink.write_all(b"</")?;
        self.sink.write_all(name.as_bytes())?;
        self.sink.write_all(b">")?;
        self.bytes_written += name.len() as u64 + 3;
        self.depth = self.depth.saturating_sub(1);
        Ok(())
    }

    /// Writes escaped character data.
    pub fn text(&mut self, s: &str) -> io::Result<()> {
        let mut start = 0;
        let bytes = s.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            let repl: &[u8] = match b {
                b'<' => b"&lt;",
                b'>' => b"&gt;",
                b'&' => b"&amp;",
                _ => continue,
            };
            if start < i {
                self.sink.write_all(&bytes[start..i])?;
                self.bytes_written += (i - start) as u64;
            }
            self.sink.write_all(repl)?;
            self.bytes_written += repl.len() as u64;
            start = i + 1;
        }
        if start < bytes.len() {
            self.sink.write_all(&bytes[start..])?;
            self.bytes_written += (bytes.len() - start) as u64;
        }
        Ok(())
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// A sink that discards data and counts bytes. Implements [`Write`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    bytes: u64,
}

impl CountingSink {
    /// New zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes "written" so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Serializes a token slice to a `String` (tests and examples).
pub fn tokens_to_string(tokens: &[XmlToken], tags: &TagInterner) -> String {
    let mut out = Vec::new();
    let mut w = XmlWriter::new(&mut out);
    for t in tokens {
        w.write_token(t, tags).expect("vec write");
    }
    String::from_utf8(out).expect("writer output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{LexerOptions, WhitespaceMode, XmlLexer};

    #[test]
    fn writes_tokens() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let toks = vec![
            XmlToken::Open(a),
            XmlToken::Text("x<y&z".into()),
            XmlToken::Close(a),
        ];
        assert_eq!(tokens_to_string(&toks, &tags), "<a>x&lt;y&amp;z</a>");
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        let mut tags = TagInterner::new();
        let a = tags.intern("ab");
        {
            let mut w = XmlWriter::new(&mut sink);
            w.open(a, &tags).unwrap();
            w.close(a, &tags).unwrap();
            assert_eq!(w.bytes_written(), 9);
        }
        assert_eq!(sink.bytes(), 9);
    }

    #[test]
    fn depth_tracks() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let mut w = XmlWriter::new(Vec::new());
        w.open(a, &tags).unwrap();
        assert_eq!(w.depth(), 1);
        w.close(a, &tags).unwrap();
        assert_eq!(w.depth(), 0);
    }

    /// Lex → write → lex must be the identity on token streams.
    #[test]
    fn roundtrip_preserves_tokens() {
        let input = "<a><b attr=\"1\">x &amp; y</b><c/>tail</a>";
        let mut tags = TagInterner::new();
        let opts = LexerOptions {
            whitespace: WhitespaceMode::Keep,
            ..Default::default()
        };
        let mut lexer = XmlLexer::with_options(input.as_bytes(), &mut tags, opts);
        let toks = lexer.tokenize_all().unwrap();
        let text = tokens_to_string(&toks, &tags);
        let mut lexer2 = XmlLexer::with_options(text.as_bytes(), &mut tags, opts);
        let toks2 = lexer2.tokenize_all().unwrap();
        assert_eq!(toks, toks2);
    }
}
