//! In-memory document trees (DOM).
//!
//! The paper's data model (§2): XML documents as unranked, ordered,
//! node-labeled trees over a two-sorted domain of element nodes (with tag
//! names) and text values. [`Document`] is the arena-based realization used
//! by the in-memory baseline engines and by document-projection tests
//! (paper Def. 1). The GCX engine itself never builds a full `Document` —
//! that is the whole point of the paper — but the baselines and the
//! differential-testing oracle do.

use crate::lexer::{LexerOptions, XmlLexer};
use crate::tags::{TagId, TagInterner};
use crate::token::XmlToken;
use crate::writer::XmlWriter;
use crate::Result;
use std::io::Read;

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a document node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The virtual document root ("/" in the paper; parent of the document
    /// element). Exactly one per document, always [`Document::ROOT`].
    Root,
    /// An element node with an interned tag.
    Element(TagId),
    /// A text node.
    Text(String),
}

/// One node in the arena.
#[derive(Debug, Clone)]
pub struct DomNode {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
}

/// An in-memory XML document.
///
/// Node 0 is always the virtual root; the document element is its single
/// child (projected documents in tests may hang several children off the
/// root, which Def. 1 permits since only `root ∈ S` is required).
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<DomNode>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// The virtual root node id.
    pub const ROOT: NodeId = NodeId(0);

    /// Creates a document containing only the virtual root.
    pub fn new() -> Self {
        Document {
            nodes: vec![DomNode {
                kind: NodeKind::Root,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Parses a document from a reader with the given lexer options.
    pub fn parse_with_options<R: Read>(
        reader: R,
        tags: &mut TagInterner,
        opts: LexerOptions,
    ) -> Result<Self> {
        let mut lexer = XmlLexer::with_options(reader, tags, opts);
        let mut doc = Document::new();
        let mut stack = vec![Document::ROOT];
        while let Some(tok) = lexer.next_token()? {
            match tok {
                XmlToken::Open(t) => {
                    let parent = *stack.last().expect("stack never empty");
                    let id = doc.add_child(parent, NodeKind::Element(t));
                    stack.push(id);
                }
                XmlToken::Close(_) => {
                    stack.pop();
                }
                XmlToken::Text(s) => {
                    let parent = *stack.last().expect("stack never empty");
                    doc.add_child(parent, NodeKind::Text(s));
                }
            }
        }
        Ok(doc)
    }

    /// Parses a document with default options.
    pub fn parse<R: Read>(reader: R, tags: &mut TagInterner) -> Result<Self> {
        Self::parse_with_options(reader, tags, LexerOptions::default())
    }

    /// Parses from a string slice.
    pub fn parse_str(input: &str, tags: &mut TagInterner) -> Result<Self> {
        Self::parse(input.as_bytes(), tags)
    }

    /// Appends a child node under `parent` and returns its id.
    pub fn add_child(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(DomNode {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &DomNode {
        &self.nodes[id.index()]
    }

    /// Total number of nodes, including the virtual root (paper's `|T|`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the virtual root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The document element, if present.
    pub fn document_element(&self) -> Option<NodeId> {
        self.node(Document::ROOT)
            .children
            .iter()
            .copied()
            .find(|&c| matches!(self.node(c).kind, NodeKind::Element(_)))
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Tag of an element node, `None` for text/root.
    pub fn tag(&self, id: NodeId) -> Option<TagId> {
        match self.node(id).kind {
            NodeKind::Element(t) => Some(t),
            _ => None,
        }
    }

    /// True when the node is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// Descendants of `id` in document order, **excluding** `id`.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.node(id).children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.node(n).children.iter().rev());
        }
        out
    }

    /// Descendant-or-self in document order.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        out.extend(self.descendants(id));
        out
    }

    /// The string value of a node: concatenated text descendants
    /// (XPath/XQuery `string()` semantics for elements and text nodes).
    pub fn string_value(&self, id: NodeId) -> String {
        let mut s = String::new();
        self.collect_text(id, &mut s);
        s
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            _ => {
                for &c in &self.node(id).children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Serializes the subtree rooted at `id` (excluding the virtual root
    /// wrapper) as a token stream.
    pub fn subtree_tokens(&self, id: NodeId, out: &mut Vec<XmlToken>) {
        match &self.node(id).kind {
            NodeKind::Root => {
                for &c in &self.node(id).children {
                    self.subtree_tokens(c, out);
                }
            }
            NodeKind::Text(t) => out.push(XmlToken::Text(t.clone())),
            NodeKind::Element(tag) => {
                out.push(XmlToken::Open(*tag));
                for &c in &self.node(id).children {
                    self.subtree_tokens(c, out);
                }
                out.push(XmlToken::Close(*tag));
            }
        }
    }

    /// Serializes the whole document to a string.
    pub fn to_xml(&self, tags: &TagInterner) -> String {
        let mut toks = Vec::new();
        self.subtree_tokens(Document::ROOT, &mut toks);
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        for t in &toks {
            w.write_token(t, tags).expect("vec write");
        }
        String::from_utf8(out).expect("utf8")
    }

    /// Approximate heap bytes of the tree (used to compare baseline memory
    /// against the GCX buffer watermark on equal footing).
    pub fn approx_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<DomNode>()
                    + n.children.len() * std::mem::size_of::<NodeId>()
                    + match &n.kind {
                        NodeKind::Text(t) => t.len(),
                        _ => 0,
                    }
            })
            .sum()
    }

    /// Computes the projection `Π_S(T)` of this document w.r.t. a node set
    /// (paper Def. 1): the tree consisting of exactly the nodes in `S`
    /// (plus the virtual root), with ancestor-descendant and following
    /// relationships preserved. Used as the reference semantics in
    /// projection tests (paper Fig. 3).
    pub fn project(&self, keep: &std::collections::HashSet<NodeId>) -> Document {
        let mut out = Document::new();
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        map[Document::ROOT.index()] = Some(Document::ROOT);
        // Walk in document order; attach each kept node to its nearest kept
        // ancestor.
        let order = self.descendants(Document::ROOT);
        for n in order {
            if !keep.contains(&n) && n != Document::ROOT {
                continue;
            }
            // find nearest kept ancestor
            let mut a = self.node(n).parent;
            let new_parent = loop {
                match a {
                    Some(p) => {
                        if let Some(mapped) = map[p.index()] {
                            break mapped;
                        }
                        a = self.node(p).parent;
                    }
                    None => break Document::ROOT,
                }
            };
            let id = out.add_child(new_parent, self.node(n).kind.clone());
            map[n.index()] = Some(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sample() -> (Document, TagInterner) {
        let mut tags = TagInterner::new();
        let doc = Document::parse_str("<a><c/><d><b>t1</b></d><b>t2</b></a>", &mut tags).unwrap();
        (doc, tags)
    }

    #[test]
    fn parse_builds_tree() {
        let (doc, tags) = sample();
        let root_elem = doc.document_element().unwrap();
        assert_eq!(tags.name(doc.tag(root_elem).unwrap()), "a");
        assert_eq!(doc.children(root_elem).len(), 3);
    }

    #[test]
    fn string_value_concatenates() {
        let (doc, _) = sample();
        let a = doc.document_element().unwrap();
        assert_eq!(doc.string_value(a), "t1t2");
    }

    #[test]
    fn descendants_in_document_order() {
        let mut tags = TagInterner::new();
        let doc = Document::parse_str("<a><b><c/></b><d/></a>", &mut tags).unwrap();
        let a = doc.document_element().unwrap();
        let names: Vec<String> = doc
            .descendants(a)
            .iter()
            .map(|&n| tags.name(doc.tag(n).unwrap()).to_string())
            .collect();
        assert_eq!(names, vec!["b", "c", "d"]);
    }

    #[test]
    fn to_xml_roundtrips() {
        let input = "<a><c></c><d><b>t1</b></d><b>t2</b></a>";
        let mut tags = TagInterner::new();
        let doc = Document::parse_str(input, &mut tags).unwrap();
        assert_eq!(doc.to_xml(&tags), input);
    }

    /// Paper Fig. 3: document T with nodes n1..n5, projections
    /// Π_{n1,n4,n5}(T) and Π_{n1,n3,n4}(T).
    #[test]
    fn fig3_projection() {
        let mut tags = TagInterner::new();
        // T: n1:a has children n2:c, n3:d, n5:a ... per the figure, n4:b is
        // below n3:d, and n5:a is the last child of n1.
        let mut doc = Document::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let c = tags.intern("c");
        let d = tags.intern("d");
        let n1 = doc.add_child(Document::ROOT, NodeKind::Element(a));
        let _n2 = doc.add_child(n1, NodeKind::Element(c));
        let n3 = doc.add_child(n1, NodeKind::Element(d));
        let n4 = doc.add_child(n3, NodeKind::Element(b));
        let n5 = doc.add_child(n1, NodeKind::Element(a));

        // Π_{n1,n4,n5}: n4 promoted to child of n1.
        let keep: HashSet<NodeId> = [n1, n4, n5].into_iter().collect();
        let p1 = doc.project(&keep);
        assert_eq!(p1.to_xml(&tags), "<a><b></b><a></a></a>");

        // Π_{n1,n3,n4}: structure preserved below n3.
        let keep2: HashSet<NodeId> = [n1, n3, n4].into_iter().collect();
        let p2 = doc.project(&keep2);
        assert_eq!(p2.to_xml(&tags), "<a><d><b></b></d></a>");
    }

    #[test]
    fn projection_preserves_order() {
        let mut tags = TagInterner::new();
        let doc = Document::parse_str("<a><x>1</x><y>2</y><z>3</z></a>", &mut tags).unwrap();
        let a = doc.document_element().unwrap();
        let kids = doc.children(a).to_vec();
        let keep: HashSet<NodeId> = [a, kids[0], kids[2]].into_iter().collect();
        let p = doc.project(&keep);
        assert_eq!(p.to_xml(&tags), "<a><x></x><z></z></a>");
    }

    #[test]
    fn approx_bytes_nonzero() {
        let (doc, _) = sample();
        assert!(doc.approx_bytes() > 0);
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert!(doc.document_element().is_none());
    }
}
