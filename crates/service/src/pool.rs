//! A bounded pool of evaluator threads shared by many sessions.
//!
//! [`crate::StreamSession`] historically spawned one OS thread per
//! session — fine for batch jobs, fatal for a network front-end serving
//! thousands of concurrent streams. An [`EvaluatorPool`] caps evaluator
//! parallelism at a fixed thread count: sessions submit their evaluation
//! as a job; `N` long-lived workers pull jobs off a run-queue and run
//! them to completion. Sessions beyond the pool size queue (their `feed`
//! calls simply buffer input until a worker frees up), so the *thread
//! count stays fixed no matter how many sessions are open* — the
//! schema-based scheduling shape of Koch et al.'s event-processor work.
//!
//! A worker blocked on input (slow client) does occupy its thread — the
//! evaluator is a pull-based interpreter, not a resumable state machine —
//! so front-ends should size the pool for the number of *concurrently
//! evaluating* sessions they want and cancel stalled ones (gcx-net
//! enforces idle timeouts for exactly this reason).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    active: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signaled when a job arrives or shutdown is requested.
    work: Condvar,
    size: usize,
    /// Evaluator panics observed — either caught by a worker's
    /// `catch_unwind` or reported by a session via
    /// [`EvaluatorPool::note_panic`] (sessions catch around the engine
    /// run themselves so they can fail the session with a message).
    panics: AtomicU64,
}

/// A fixed-size evaluator thread pool. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct EvaluatorPool {
    inner: Arc<PoolInner>,
    /// Worker handles, joined by [`EvaluatorPool::shutdown`]. Shared so
    /// clones agree on who joins.
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl EvaluatorPool {
    /// Spawns `size` (≥ 1) worker threads immediately.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            size,
            panics: AtomicU64::new(0),
        });
        let handles = (0..size)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("gcx-eval-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn evaluator worker")
            })
            .collect();
        EvaluatorPool {
            inner,
            handles: Arc::new(Mutex::new(handles)),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Jobs waiting for a free worker.
    pub fn queued(&self) -> usize {
        self.inner.state.lock().expect("pool lock").queue.len()
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.inner.state.lock().expect("pool lock").active
    }

    /// Evaluator panics observed so far (see `PoolInner::panics`).
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }

    /// Records an evaluator panic that a session caught and converted
    /// into a session error itself (the worker's own `catch_unwind`
    /// never sees those).
    pub fn note_panic(&self) {
        self.inner.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Enqueues a job; some worker will run it. Jobs are never dropped —
    /// sessions rely on their evaluator running to observe cancellation
    /// and set `done`: queued jobs are drained even after `shutdown`
    /// begins, and a job submitted *after* the workers have gone runs on
    /// a fresh detached thread rather than sitting on a dead queue
    /// forever.
    pub fn submit(&self, job: Job) {
        let mut st = self.inner.state.lock().expect("pool lock");
        if st.shutdown {
            drop(st);
            std::thread::spawn(job);
            return;
        }
        st.queue.push_back(job);
        drop(st);
        self.inner.work.notify_one();
    }

    /// Drains the queue, stops the workers and joins them. Callers must
    /// cancel outstanding sessions first; a job blocked waiting for input
    /// that will never arrive would block the join.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut st = inner.state.lock().expect("pool lock");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.active += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work.wait(st).expect("pool lock poisoned");
            }
        };
        if let Some(d) = gcx_faults::delay("pool.delay") {
            std::thread::sleep(d);
        }
        // Panics are the session's problem (its DoneGuard reports them);
        // the worker itself must survive to serve the next job — but they
        // are counted, never silently swallowed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if result.is_err() {
            inner.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = inner.state.lock().expect("pool lock");
        st.active -= 1;
        drop(st);
        drop(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_with_bounded_threads() {
        let pool = EvaluatorPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let running = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = done.clone();
            let peak = peak.clone();
            let running = running.clone();
            pool.submit(Box::new(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                running.fetch_sub(1, Ordering::SeqCst);
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for _ in 0..1000 {
            if done.load(Ordering::SeqCst) == 16 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 16);
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool bounds parallelism");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = EvaluatorPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = done.clone();
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 8, "no job dropped");
    }

    #[test]
    fn submit_after_shutdown_still_runs_the_job() {
        let pool = EvaluatorPool::new(1);
        pool.shutdown();
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = done.clone();
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for _ in 0..1000 {
            if done.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1, "job must not be stranded");
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = EvaluatorPool::new(1);
        pool.submit(Box::new(|| panic!("boom")));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = done.clone();
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panics_are_counted() {
        let pool = EvaluatorPool::new(1);
        assert_eq!(pool.panics(), 0);
        pool.submit(Box::new(|| panic!("boom")));
        pool.submit(Box::new(|| {}));
        pool.shutdown();
        assert_eq!(pool.panics(), 1);
        pool.note_panic();
        assert_eq!(pool.panics(), 2);
    }
}
