//! The evaluator scheduler: a ready-queue of runnable session tasks
//! drained round-robin by a fixed set of worker threads.
//!
//! Historically this was a plain job pool — each session submitted one
//! blocking closure that parked a worker thread inside evaluation
//! whenever input ran dry or output backed up. A saturated pool then
//! meant *queued sessions never ran at all*. The engine's resumable
//! [`step`](gcx_core::GcxEngine::step) machine removes the need to park:
//! a session is now a [`PoolTask`] whose `run_slice` advances evaluation
//! by a bounded budget and reports what the scheduler should do next:
//!
//! - [`Slice::Again`] — more work is ready: the task goes to the *back*
//!   of the ready queue, so N runnable sessions share M workers
//!   round-robin (fairness: one streaming giant cannot starve a quick
//!   query).
//! - [`Slice::Park`] — blocked on input or output. The task leaves the
//!   scheduler entirely until [`TaskHandle::wake`] re-enqueues it (the
//!   session layer wakes on `feed`/`drain`/`close_input`/`cancel`).
//! - [`Slice::Done`] — finished (or failed); never scheduled again.
//!
//! Wake-ups and slice completions race; a small per-task atomic state
//! machine (idle → queued → running, with a "notified while running"
//! side state) guarantees a task is queued at most once, runs on at most
//! one worker, and never misses a wake-up that arrives mid-slice.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Log target for scheduler lifecycle events.
const LOG_TARGET: &str = "gcx_service::pool";

/// What a task's slice told the scheduler to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slice {
    /// Progress was made and more work is ready: re-enqueue (fairness).
    Again,
    /// Blocked until [`TaskHandle::wake`]; the reason is informational
    /// (dedicated drivers pick a condvar by it, `/stats` counts it).
    Park(ParkReason),
    /// The task is finished and must never be scheduled again.
    Done,
}

/// Why a task parked (see [`Slice::Park`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkReason {
    /// The input stream ran dry mid-evaluation.
    NeedInput,
    /// Undrained output crossed the session's high-water mark.
    OutputBackpressure,
}

/// A schedulable unit of resumable work. `run_slice` must be bounded —
/// it is called on a shared worker thread and anything unbounded
/// reintroduces the parked-worker starvation this scheduler exists to
/// remove. Panics in `run_slice` are caught, counted, and retire the
/// task (tasks wrapping sessions convert panics to session errors
/// themselves; the catch here is a backstop).
pub trait PoolTask: Send + Sync + 'static {
    /// Advances the task by one bounded slice.
    fn run_slice(&self) -> Slice;
}

/// Task lifecycle states (see the module docs).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
/// Running, and a wake-up arrived mid-slice: if the slice parks, the
/// task is immediately re-enqueued instead (the wake-up might carry the
/// input/drain the slice was about to miss).
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

struct Scheduled {
    task: Box<dyn PoolTask>,
    state: AtomicU8,
}

/// Handle for re-enqueueing a parked task; cloneable, held by the
/// session layer. Outlives the pool safely: wakes after shutdown run
/// the task inline on the waking thread (bounded slices make that
/// cheap) so a parked session still completes.
#[derive(Clone)]
pub struct TaskHandle {
    sched: Arc<Scheduled>,
    inner: Arc<PoolInner>,
}

impl TaskHandle {
    /// Re-enqueues the task if it is parked; marks a mid-slice
    /// notification if it is running; no-op if already queued or done.
    pub fn wake(&self) {
        loop {
            match self.sched.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .sched
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        EvaluatorPool::enqueue(&self.inner, self.sched.clone());
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .sched
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                QUEUED | NOTIFIED | DONE => return,
                _ => unreachable!("invalid task state"),
            }
        }
    }

    /// True once the task has retired (ran to completion or panicked).
    pub fn is_done(&self) -> bool {
        self.sched.state.load(Ordering::Acquire) == DONE
    }
}

struct SchedState {
    ready: VecDeque<Arc<Scheduled>>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<SchedState>,
    /// Signaled when a task is enqueued or shutdown begins.
    work: Condvar,
    size: usize,
    /// Tasks currently executing a slice on a worker.
    active: AtomicUsize,
    /// Evaluator panics observed (tasks that unwound out of a slice, or
    /// panics reported by the session layer via [`EvaluatorPool::note_panic`]).
    panics: AtomicU64,
    /// Slices executed (one engine `step` each, typically).
    steps: AtomicU64,
    /// Slices that ended in a voluntary yield ([`Slice::Again`]) — the
    /// fairness mechanism working.
    yields: AtomicU64,
}

/// The shared scheduler; `Clone` hands out another reference to the
/// same worker set and ready queue.
#[derive(Clone)]
pub struct EvaluatorPool {
    inner: Arc<PoolInner>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl EvaluatorPool {
    /// Spawns `size` (min 1) workers named `gcx-eval-{i}`.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(SchedState {
                ready: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            size,
            active: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            yields: AtomicU64::new(0),
        });
        let handles = (0..size)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("gcx-eval-{i}"))
                    .spawn(move || Self::worker_loop(&inner))
                    .expect("spawn evaluator worker")
            })
            .collect();
        EvaluatorPool {
            inner,
            handles: Arc::new(Mutex::new(handles)),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Tasks waiting in the ready queue right now.
    pub fn queued(&self) -> usize {
        self.lock_state().ready.len()
    }

    /// Tasks currently executing a slice.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Evaluator panics observed so far.
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }

    /// Scheduler slices executed so far (≈ engine `step` calls).
    pub fn steps(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Slices that ended in a voluntary yield (task re-enqueued).
    pub fn yields(&self) -> u64 {
        self.inner.yields.load(Ordering::Relaxed)
    }

    /// Records an evaluator panic the session layer caught itself.
    pub fn note_panic(&self) {
        self.inner.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a task and enqueues it for its first slice.
    pub fn spawn_task(&self, task: Box<dyn PoolTask>) -> TaskHandle {
        let sched = Arc::new(Scheduled {
            task,
            state: AtomicU8::new(QUEUED),
        });
        Self::enqueue(&self.inner, sched.clone());
        TaskHandle {
            sched,
            inner: self.inner.clone(),
        }
    }

    /// Pushes a QUEUED task onto the ready queue — or, after shutdown,
    /// runs it inline on the calling thread until it parks or finishes
    /// (slices are bounded, and a task enqueued after shutdown would
    /// otherwise never run: its session would hang in `finish`).
    fn enqueue(inner: &Arc<PoolInner>, sched: Arc<Scheduled>) {
        {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            if !st.shutdown {
                st.ready.push_back(sched);
                inner.work.notify_one();
                return;
            }
        }
        while Self::run_one(inner, &sched) {}
    }

    fn worker_loop(inner: &Arc<PoolInner>) {
        loop {
            let sched = {
                let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if let Some(s) = st.ready.pop_front() {
                        break s;
                    }
                    if st.shutdown {
                        // Queue fully drained: even tasks enqueued
                        // during shutdown got their slice.
                        return;
                    }
                    st = inner.work.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            };
            // Fault-injection point: delay task dispatch (chaos tests
            // shake out schedule-dependent assumptions).
            gcx_faults::delay("pool.delay");
            inner.active.fetch_add(1, Ordering::Relaxed);
            let requeue = Self::run_one(inner, &sched);
            inner.active.fetch_sub(1, Ordering::Relaxed);
            if requeue {
                let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
                st.ready.push_back(sched);
                inner.work.notify_one();
            }
        }
    }

    /// Runs one slice of `sched`, driving its state machine. Returns
    /// true when the task should be re-enqueued (yielded, or a wake-up
    /// arrived mid-slice).
    fn run_one(inner: &Arc<PoolInner>, sched: &Arc<Scheduled>) -> bool {
        sched.state.store(RUNNING, Ordering::Release);
        inner.steps.fetch_add(1, Ordering::Relaxed);
        let slice =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sched.task.run_slice()));
        match slice {
            Ok(Slice::Again) => {
                inner.yields.fetch_add(1, Ordering::Relaxed);
                sched.state.store(QUEUED, Ordering::Release);
                true
            }
            Ok(Slice::Park(_)) => {
                match sched.state.compare_exchange(
                    RUNNING,
                    IDLE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => false,
                    // A wake-up landed mid-slice; it may carry exactly
                    // the input/drain this slice blocked on — retry.
                    Err(_) => {
                        sched.state.store(QUEUED, Ordering::Release);
                        true
                    }
                }
            }
            Ok(Slice::Done) => {
                sched.state.store(DONE, Ordering::Release);
                false
            }
            Err(payload) => {
                // Backstop only: session tasks catch their own panics
                // and convert them to session errors.
                inner.panics.fetch_add(1, Ordering::Relaxed);
                sched.state.store(DONE, Ordering::Release);
                gcx_obs::log_error!(
                    LOG_TARGET,
                    "task panicked out of run_slice: {}",
                    crate::session::panic_message(payload.as_ref())
                );
                false
            }
        }
    }

    /// Stops accepting queue work, drains already-queued tasks (each
    /// gets its slices until it parks or finishes), and joins the
    /// workers. Parked tasks woken afterwards run inline on the waking
    /// thread. Idempotent; concurrent calls join whatever is left.
    pub fn shutdown(&self) {
        {
            let mut st = self.lock_state();
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        let mut handles = self.handles.lock().unwrap_or_else(|p| p.into_inner());
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    /// Runs `n` slices (yielding between them), then finishes.
    struct Counter {
        left: AtomicUsize,
        ran: Arc<AtomicUsize>,
    }

    impl PoolTask for Counter {
        fn run_slice(&self) -> Slice {
            self.ran.fetch_add(1, Ordering::SeqCst);
            if self.left.fetch_sub(1, Ordering::SeqCst) > 1 {
                Slice::Again
            } else {
                Slice::Done
            }
        }
    }

    fn counter(slices: usize, ran: &Arc<AtomicUsize>) -> Box<Counter> {
        Box::new(Counter {
            left: AtomicUsize::new(slices),
            ran: ran.clone(),
        })
    }

    fn wait_done(handle: &TaskHandle) {
        for _ in 0..2000 {
            if handle.is_done() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("task did not finish");
    }

    #[test]
    fn runs_all_tasks_with_bounded_threads() {
        let pool = EvaluatorPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16).map(|_| pool.spawn_task(counter(3, &ran))).collect();
        for h in &handles {
            wait_done(h);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 16 * 3);
        assert!(pool.steps() >= 16 * 3);
        assert!(pool.yields() >= 16 * 2, "each task yielded twice");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        let pool = EvaluatorPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8).map(|_| pool.spawn_task(counter(1, &ran))).collect();
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 8, "queued tasks still ran");
        assert!(handles.iter().all(TaskHandle::is_done));
    }

    #[test]
    fn spawn_after_shutdown_runs_inline() {
        let pool = EvaluatorPool::new(1);
        pool.shutdown();
        let ran = Arc::new(AtomicUsize::new(0));
        let handle = pool.spawn_task(counter(3, &ran));
        assert!(handle.is_done(), "ran inline to completion");
        assert_eq!(ran.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        struct Bomb;
        impl PoolTask for Bomb {
            fn run_slice(&self) -> Slice {
                panic!("boom");
            }
        }
        let pool = EvaluatorPool::new(1);
        let bomb = pool.spawn_task(Box::new(Bomb));
        wait_done(&bomb);
        assert_eq!(pool.panics(), 1);
        // The worker survived and keeps scheduling.
        let ran = Arc::new(AtomicUsize::new(0));
        let ok = pool.spawn_task(counter(1, &ran));
        wait_done(&ok);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn parked_task_waits_for_wake() {
        struct Gate {
            open: Arc<AtomicBool>,
            slices: Arc<AtomicUsize>,
        }
        impl PoolTask for Gate {
            fn run_slice(&self) -> Slice {
                self.slices.fetch_add(1, Ordering::SeqCst);
                if self.open.load(Ordering::SeqCst) {
                    Slice::Done
                } else {
                    Slice::Park(ParkReason::NeedInput)
                }
            }
        }
        let pool = EvaluatorPool::new(1);
        let open = Arc::new(AtomicBool::new(false));
        let slices = Arc::new(AtomicUsize::new(0));
        let handle = pool.spawn_task(Box::new(Gate {
            open: open.clone(),
            slices: slices.clone(),
        }));
        // First slice parks; without a wake no further slice runs.
        for _ in 0..200 {
            if slices.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(slices.load(Ordering::SeqCst), 1, "parked, not polled");
        // Spurious wake: runs one more slice, parks again.
        handle.wake();
        for _ in 0..200 {
            if slices.load(Ordering::SeqCst) == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(slices.load(Ordering::SeqCst), 2);
        // Real wake: finishes.
        open.store(true, Ordering::SeqCst);
        handle.wake();
        wait_done(&handle);
        assert_eq!(slices.load(Ordering::SeqCst), 3);
        pool.shutdown();
    }

    #[test]
    fn round_robin_interleaves_yielding_tasks() {
        // Two endless yielders on one worker: both must keep making
        // progress (round-robin), neither may monopolize the thread.
        struct Yielder {
            me: usize,
            log: Arc<Mutex<Vec<usize>>>,
        }
        impl PoolTask for Yielder {
            fn run_slice(&self) -> Slice {
                let mut log = self.log.lock().unwrap();
                if log.len() >= 20 {
                    return Slice::Done;
                }
                log.push(self.me);
                Slice::Again
            }
        }
        let pool = EvaluatorPool::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        let a = pool.spawn_task(Box::new(Yielder {
            me: 0,
            log: log.clone(),
        }));
        let b = pool.spawn_task(Box::new(Yielder {
            me: 1,
            log: log.clone(),
        }));
        wait_done(&a);
        wait_done(&b);
        let log = log.lock().unwrap();
        let zeros = log.iter().filter(|&&m| m == 0).count();
        let ones = log.len() - zeros;
        assert!(
            zeros >= 8 && ones >= 8,
            "both tasks progressed (round-robin): {zeros} vs {ones}"
        );
        // Strict alternation on a single worker.
        for w in log.windows(2) {
            assert_ne!(w[0], w[1], "fair interleave, got {log:?}");
        }
        pool.shutdown();
    }
}
