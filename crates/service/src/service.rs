//! Concurrent serving: a compiled-query cache in front of session
//! spawning.
//!
//! Compilation (parse → rewriting → signOff insertion → projection
//! derivation) is pure per query text, so a service handling repeated
//! queries amortizes it through an LRU cache keyed by *normalized* query
//! text. All cached queries are compiled against one master
//! [`TagInterner`]; interners only ever append, so a snapshot taken at
//! session-open time is a superset of every id any cached query refers
//! to — sessions then intern document-side tags into their private clone
//! without synchronization. One [`MemoryBudget`] is shared by every
//! session the service opens.

use crate::budget::MemoryBudget;
use crate::session::{SessionConfig, SessionOutcome, StreamSession};
use crate::ServiceError;
use gcx_core::EngineOptions;
use gcx_query::{compile, CompileOptions, CompiledQuery};
use gcx_xml::TagInterner;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of compiled queries kept in the cache.
    pub cache_capacity: usize,
    /// Compile options applied to every query.
    pub compile: CompileOptions,
    /// Global cap on service-owned bytes (queued input + undrained
    /// output) summed over all sessions; `None` = unlimited.
    pub memory_budget: Option<usize>,
    /// Per-session input-queue bound (backpressure threshold).
    pub input_queue_bytes: usize,
    /// Engine strategy for sessions, including the lexer options for
    /// session input streams (`engine.lexer`).
    pub engine: EngineOptions,
    /// Maximum sessions evaluated concurrently by [`QueryService::run_batch`].
    pub max_concurrency: usize,
    /// Dead-tag ratio (estimated tags stranded by evicted cache entries
    /// over the master interner's size) past which the master interner
    /// is rebuilt from the live cached queries. Long-lived servers with
    /// churning query sets otherwise leak the symbol table ("interners
    /// only ever append"). `1.0` (or above) disables rebuilds. Default
    /// 0.5.
    pub interner_rebuild_dead_ratio: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 64,
            compile: CompileOptions::default(),
            memory_budget: None,
            input_queue_bytes: 256 * 1024,
            engine: EngineOptions::default(),
            max_concurrency: 8,
            interner_rebuild_dead_ratio: 0.5,
        }
    }
}

/// Counters exposed by [`QueryService::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cache hits (compilation skipped).
    pub cache_hits: u64,
    /// Cache misses (query compiled).
    pub cache_misses: u64,
    /// Entries evicted to respect the capacity.
    pub cache_evictions: u64,
    /// Sessions opened over the service's lifetime.
    pub sessions_opened: u64,
    /// Times the master interner was rebuilt from the live cached
    /// queries to reclaim tags stranded by evicted entries.
    pub interner_rebuilds: u64,
    /// Bytes currently held against the memory budget (0 when unbudgeted).
    pub budget_used: usize,
}

struct CacheEntry {
    compiled: Arc<CompiledQuery>,
    last_used: u64,
    /// Tags this entry's compilation added to the master interner — the
    /// upper bound on what eviction strands (another live query may
    /// still reference some of them; the rebuild computes the truth).
    tags_added: usize,
}

struct Inner {
    /// Master interner: every cached query's tag ids live here.
    tags: TagInterner,
    /// Bumped on every epoch rebuild: compilations racing a rebuild must
    /// not adopt their (pre-rebuild) extended snapshot even when the
    /// lengths happen to match.
    epoch: u64,
    /// Lazily built immutable snapshot of `tags`, shared (`Arc`) by every
    /// session opened until the master grows again. Invalidated whenever
    /// `tags` mutates, so `open_session` is O(1) in the steady state
    /// (cache hits) instead of cloning the whole symbol table per
    /// session.
    tags_snapshot: Option<Arc<TagInterner>>,
    cache: HashMap<String, CacheEntry>,
    /// Normalized keys currently being compiled outside the lock;
    /// concurrent requests for the same key wait on `compile_done`
    /// instead of compiling redundantly.
    in_flight: HashSet<String>,
    /// Upper bound on master-interner tags stranded by evictions since
    /// the last rebuild (sum of evicted entries' `tags_added`).
    dead_tag_estimate: usize,
    /// Logical clock for LRU ordering.
    tick: u64,
}

/// A shared, thread-safe query-serving runtime. See module docs.
pub struct QueryService {
    inner: Mutex<Inner>,
    /// Signaled whenever an in-flight compilation finishes (either way).
    compile_done: Condvar,
    config: ServiceConfig,
    budget: Option<Arc<MemoryBudget>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    sessions: AtomicU64,
    rebuilds: AtomicU64,
}

impl QueryService {
    /// Creates a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        let budget = config
            .memory_budget
            .map(|limit| Arc::new(MemoryBudget::new(limit)));
        QueryService {
            inner: Mutex::new(Inner {
                tags: TagInterner::new(),
                epoch: 0,
                tags_snapshot: None,
                cache: HashMap::new(),
                in_flight: HashSet::new(),
                dead_tag_estimate: 0,
                tick: 0,
            }),
            compile_done: Condvar::new(),
            config,
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Creates a service with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// Returns the compiled form of `query`, compiling at most once per
    /// normalized query text (whitespace outside string literals is
    /// insignificant in XQ).
    ///
    /// Compilation runs *outside* the service mutex against a snapshot of
    /// the master interner, so a slow compile never stalls cache hits or
    /// session traffic. Concurrent requests for the same key wait for the
    /// winner instead of compiling redundantly; concurrent compiles of
    /// *different* queries proceed in parallel (the loser of an interner
    /// race recompiles under the lock — rare, and no worse than the old
    /// always-locked behaviour).
    pub fn get_or_compile(&self, query: &str) -> Result<Arc<CompiledQuery>, ServiceError> {
        self.get_or_compile_paired(query)
            .map(|(compiled, _)| compiled)
    }

    /// Installs (if needed) and returns the immutable snapshot of the
    /// master interner, under the caller's lock hold.
    fn snapshot_locked(inner: &mut Inner) -> Arc<TagInterner> {
        if inner.tags_snapshot.is_none() {
            inner.tags_snapshot = Some(Arc::new(inner.tags.clone()));
        }
        inner.tags_snapshot.clone().expect("just installed")
    }

    /// As [`get_or_compile`](Self::get_or_compile), additionally
    /// returning the master-interner snapshot fetched **under the same
    /// lock hold** that produced the compiled query. Sessions must pair
    /// the two from here: fetching the snapshot in a separate lock
    /// acquisition races an epoch rebuild, which would hand out a
    /// compiled query from the old id space with a snapshot from the
    /// new one — silently wrong matches.
    fn get_or_compile_paired(
        &self,
        query: &str,
    ) -> Result<(Arc<CompiledQuery>, Arc<TagInterner>), ServiceError> {
        let key = normalize_query(query);
        let mut inner = self.inner.lock().expect("service lock");
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.cache.get_mut(&key) {
                entry.last_used = tick;
                let compiled = entry.compiled.clone();
                let snapshot = Self::snapshot_locked(&mut inner);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((compiled, snapshot));
            }
            if !inner.in_flight.contains(&key) {
                break;
            }
            // Someone else is compiling this exact query: wait for the
            // result and re-check the cache (a failed compile leaves the
            // cache empty and this thread retries itself).
            inner = self
                .compile_done
                .wait(inner)
                .expect("service lock poisoned");
        }
        inner.in_flight.insert(key.clone());
        let mut snapshot = inner.tags.clone();
        let base_len = snapshot.len();
        let base_epoch = inner.epoch;
        drop(inner);

        // --- compile outside the lock ---
        let result = compile(query, &mut snapshot, self.config.compile);

        let mut inner = self.inner.lock().expect("service lock");
        inner.in_flight.remove(&key);
        self.compile_done.notify_all();
        let (compiled, tags_added) = match result {
            Err(e) => return Err(ServiceError::Compile(e)),
            Ok(compiled) => {
                if inner.tags.len() == base_len && inner.epoch == base_epoch {
                    // Nobody interned concurrently (and no epoch rebuild
                    // replaced the ids under us): adopt the extended
                    // snapshot — its ids are a strict superset of the
                    // master's.
                    if inner.tags.len() != snapshot.len() {
                        inner.tags_snapshot = None;
                    }
                    let added = snapshot.len() - base_len;
                    inner.tags = snapshot;
                    (Arc::new(compiled), added)
                } else {
                    // The master interner advanced while we compiled (a
                    // concurrent compile of a different query landed
                    // first, or a rebuild reassigned ids); the snapshot's
                    // new ids may clash. Recompile against the master
                    // under the lock for id consistency.
                    let before = inner.tags.len();
                    let recompiled = compile(query, &mut inner.tags, self.config.compile)
                        .map_err(ServiceError::Compile)?;
                    if inner.tags.len() != before {
                        inner.tags_snapshot = None;
                    }
                    (Arc::new(recompiled), inner.tags.len() - before)
                }
            }
        };
        inner.tick += 1;
        let tick = inner.tick;
        inner.cache.insert(
            key.clone(),
            CacheEntry {
                compiled: compiled.clone(),
                last_used: tick,
                tags_added,
            },
        );
        while inner.cache.len() > self.config.cache_capacity.max(1) {
            let victim = inner
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("nonempty cache");
            if let Some(evicted) = inner.cache.remove(&victim) {
                inner.dead_tag_estimate += evicted.tags_added;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.maybe_rebuild_interner(&mut inner);
        // A rebuild triggered by this very insertion replaced the cached
        // entry with a recompiled (new-id-space) version; return that
        // one so it pairs with the snapshot below.
        let compiled = inner
            .cache
            .get(&key)
            .map_or(compiled, |e| e.compiled.clone());
        let snapshot = Self::snapshot_locked(&mut inner);
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((compiled, snapshot))
    }

    /// Epoch-based master-interner reclamation: when the tags stranded by
    /// evicted cache entries (an upper-bound estimate) cross the
    /// configured ratio of the master's size, rebuild the master by
    /// recompiling every *live* cached query into a fresh interner.
    ///
    /// Runs under the service lock — a rebuild is `O(live queries)`
    /// compilations, rare by construction (it needs `ratio × master`
    /// evicted tags to arm again). Sessions already open keep their old
    /// `Arc` snapshot and compiled query (both reference the old id
    /// space consistently); new sessions see the rebuilt master via a
    /// fresh snapshot. In-flight compilations racing the rebuild detect
    /// the epoch bump and recompile against the new master.
    fn maybe_rebuild_interner(&self, inner: &mut Inner) {
        let ratio = self.config.interner_rebuild_dead_ratio;
        if ratio >= 1.0 || inner.dead_tag_estimate == 0 {
            return;
        }
        let master = inner.tags.len();
        if master == 0 || (inner.dead_tag_estimate as f64) < ratio * master as f64 {
            return;
        }
        let mut fresh = TagInterner::new();
        let mut rebuilt: Vec<(String, CacheEntry)> = Vec::with_capacity(inner.cache.len());
        for (key, entry) in &inner.cache {
            let before = fresh.len();
            // The normalized key is itself the (whitespace-collapsed)
            // query text; recompiling from it reproduces the entry.
            match compile(key, &mut fresh, self.config.compile) {
                Ok(compiled) => rebuilt.push((
                    key.clone(),
                    CacheEntry {
                        compiled: Arc::new(compiled),
                        last_used: entry.last_used,
                        tags_added: fresh.len() - before,
                    },
                )),
                Err(_) => {
                    // A query that compiled once must compile again; if
                    // not (pathological), keep the old master — leaking
                    // is safer than dropping a live entry.
                    return;
                }
            }
        }
        inner.tags = fresh;
        inner.cache = rebuilt.into_iter().collect();
        inner.tags_snapshot = None;
        inner.dead_tag_estimate = 0;
        inner.epoch += 1;
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// An immutable `Arc` snapshot of the master interner, rebuilt only
    /// when the master has grown since the last call. Sessions layer a
    /// cheap copy-on-write overlay on top ([`TagInterner::overlay`])
    /// instead of cloning the whole symbol table.
    pub fn tags_snapshot(&self) -> Arc<TagInterner> {
        let mut inner = self.inner.lock().expect("service lock");
        Self::snapshot_locked(&mut inner)
    }

    /// Opens a push-based session evaluating `query` (compiled or cached)
    /// over input the caller will feed incrementally.
    pub fn open_session(&self, query: &str) -> Result<StreamSession, ServiceError> {
        self.open_session_with(query, |_| {})
    }

    /// As [`open_session`](Self::open_session), letting the caller adjust
    /// the per-session configuration (live-stats mirror, evaluator pool,
    /// engine-buffer charging, …) before the session starts. The service
    /// fills in its own defaults first; `customize` sees the final
    /// [`SessionConfig`].
    pub fn open_session_with(
        &self,
        query: &str,
        customize: impl FnOnce(&mut SessionConfig),
    ) -> Result<StreamSession, ServiceError> {
        // Compiled query and interner snapshot must come from one lock
        // hold — an epoch rebuild between the two would mix id spaces.
        let (compiled, snapshot) = self.get_or_compile_paired(query)?;
        let tags = TagInterner::overlay(snapshot);
        self.sessions.fetch_add(1, Ordering::Relaxed);
        let mut config = SessionConfig {
            input_queue_bytes: self.config.input_queue_bytes,
            engine: self.config.engine,
            budget: self.budget.clone(),
            ..Default::default()
        };
        customize(&mut config);
        Ok(StreamSession::new(compiled, tags, config))
    }

    /// Number of tags in the master interner (diagnostics: sessions
    /// intern document-side tags into private overlays, so this must not
    /// grow with served documents — only with compiled queries).
    pub fn master_interner_len(&self) -> usize {
        self.inner.lock().expect("service lock").tags.len()
    }

    /// Evaluates many (query, document) jobs concurrently — at most
    /// `max_concurrency` sessions at a time — feeding each document in
    /// `chunk_size`-byte chunks. Results come back in job order; failures
    /// are isolated per job.
    ///
    /// Under a [`MemoryBudget`] the budget acts as *backpressure*, not a
    /// failure mode: `chunk_size` is clamped so one chunk always fits the
    /// whole budget, and a worker whose chunk is rejected drains its own
    /// output and retries until sibling sessions release bytes.
    pub fn run_batch(
        &self,
        jobs: &[BatchJob],
        chunk_size: usize,
    ) -> Vec<Result<SessionOutcome, ServiceError>> {
        let mut chunk_size = chunk_size.max(1);
        if let Some(b) = &self.budget {
            // Never ask for a reservation that could not fit even into an
            // idle budget; workers would fail instead of waiting.
            chunk_size = chunk_size.min(b.limit().max(1));
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<SessionOutcome, ServiceError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.config.max_concurrency.max(1).min(jobs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let result = self.run_one(job, chunk_size);
                    *results[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    fn run_one(&self, job: &BatchJob, chunk_size: usize) -> Result<SessionOutcome, ServiceError> {
        let mut session = self.open_session(&job.query)?;
        let mut output = Vec::new();
        for chunk in job.input.chunks(chunk_size) {
            output.extend_from_slice(&session.feed_blocking(chunk)?);
        }
        let mut outcome = session.finish()?;
        output.extend_from_slice(&outcome.output);
        outcome.output = output;
        Ok(outcome)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            cache_evictions: self.evictions.load(Ordering::Relaxed),
            sessions_opened: self.sessions.load(Ordering::Relaxed),
            interner_rebuilds: self.rebuilds.load(Ordering::Relaxed),
            budget_used: self.budget.as_ref().map_or(0, |b| b.used()),
        }
    }

    /// Number of compiled queries currently cached.
    pub fn cached_queries(&self) -> usize {
        self.inner.lock().expect("service lock").cache.len()
    }

    /// The shared memory budget, when one is configured.
    pub fn budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }
}

/// One unit of work for [`QueryService::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// XQ query text.
    pub query: String,
    /// Full input document bytes, fed to the session in chunks. Shared
    /// (`Arc`) so the same document can back many jobs without copies.
    pub input: Arc<[u8]>,
    /// Label carried through to reports (file name, client id, …).
    pub label: String,
}

/// Collapses insignificant whitespace so that reformatted copies of one
/// query share a cache entry. Whitespace inside string literals is
/// significant and preserved.
pub fn normalize_query(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    let mut in_string: Option<char> = None;
    let mut pending_space = false;
    for c in query.chars() {
        match in_string {
            Some(q) => {
                out.push(c);
                if c == q {
                    in_string = None;
                }
            }
            None => {
                if c == '"' || c == '\'' {
                    if pending_space && !out.is_empty() {
                        out.push(' ');
                    }
                    pending_space = false;
                    out.push(c);
                    in_string = Some(c);
                } else if c.is_whitespace() {
                    pending_space = true;
                } else {
                    if pending_space && !out.is_empty() {
                        out.push(' ');
                    }
                    pending_space = false;
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
    const DOC: &str = "<bib><book><title>A</title></book><book><title>B</title></book></bib>";
    const EXPECTED: &str = "<r><title>A</title><title>B</title></r>";

    #[test]
    fn normalization_collapses_outside_strings_only() {
        assert_eq!(
            normalize_query("  <r>{   for $x in /a\n  return $x }</r> "),
            "<r>{ for $x in /a return $x }</r>"
        );
        let with_lit = r#"<r>{ for $x in /a return if ($x/k = "a  b") then $x else () }</r>"#;
        assert!(normalize_query(with_lit).contains(r#""a  b""#));
        assert_ne!(
            normalize_query(r#"<r>{ if (/a/k = "x y") then <t/> else () }</r>"#),
            normalize_query(r#"<r>{ if (/a/k = "x  y") then <t/> else () }</r>"#),
        );
    }

    #[test]
    fn cache_hit_skips_recompilation() {
        let service = QueryService::with_defaults();
        service.get_or_compile(QUERY).unwrap();
        assert_eq!(service.stats().cache_misses, 1);
        assert_eq!(service.stats().cache_hits, 0);
        // Same query, different surface whitespace: hit.
        service
            .get_or_compile("<r>{ for $b in /bib/book\n   return $b/title }</r>")
            .unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 1, "no recompilation");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn eviction_respects_capacity() {
        let service = QueryService::new(ServiceConfig {
            cache_capacity: 2,
            ..Default::default()
        });
        let q = |tag: &str| format!("<r>{{ for $x in /{tag} return $x }}</r>");
        service.get_or_compile(&q("a")).unwrap();
        service.get_or_compile(&q("b")).unwrap();
        service.get_or_compile(&q("a")).unwrap(); // refresh a
        service.get_or_compile(&q("c")).unwrap(); // evicts b (LRU)
        assert_eq!(service.cached_queries(), 2);
        assert_eq!(service.stats().cache_evictions, 1);
        service.get_or_compile(&q("a")).unwrap();
        assert_eq!(service.stats().cache_misses, 3, "a still cached");
        service.get_or_compile(&q("b")).unwrap();
        assert_eq!(service.stats().cache_misses, 4, "b was evicted");
    }

    #[test]
    fn concurrent_sessions_share_one_cached_query() {
        let service = QueryService::with_defaults();
        let jobs: Vec<BatchJob> = (0..2)
            .map(|i| BatchJob {
                query: QUERY.to_string(),
                input: DOC.as_bytes().into(),
                label: format!("job{i}"),
            })
            .collect();
        let results = service.run_batch(&jobs, 7);
        for r in results {
            let outcome = r.unwrap();
            assert_eq!(String::from_utf8(outcome.output).unwrap(), EXPECTED);
        }
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.cache_hits >= 1, "second session hits the cache");
        assert_eq!(stats.sessions_opened, 2);
    }

    #[test]
    fn concurrent_compiles_of_same_query_are_deduped() {
        let service = Arc::new(QueryService::with_defaults());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let service = service.clone();
                scope.spawn(move || {
                    service.get_or_compile(QUERY).unwrap();
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 1, "one compile for eight requests");
        assert_eq!(stats.cache_hits, 7);
    }

    #[test]
    fn concurrent_compiles_of_distinct_queries_yield_consistent_ids() {
        // Different queries compiled in parallel must all end up with tag
        // ids consistent with the master interner — exercised end-to-end
        // by evaluating through sessions afterwards.
        let service = Arc::new(QueryService::with_defaults());
        let tags: Vec<&str> = vec!["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
        std::thread::scope(|scope| {
            for t in &tags {
                let service = service.clone();
                scope.spawn(move || {
                    let q = format!("<r>{{ for $x in /{t}/item return $x }}</r>");
                    service.get_or_compile(&q).unwrap();
                });
            }
        });
        for t in &tags {
            let q = format!("<r>{{ for $x in /{t}/item return $x }}</r>");
            let mut session = service.open_session(&q).unwrap();
            let doc = format!("<{t}><item>v</item></{t}>");
            let mut out = session.feed(doc.as_bytes()).unwrap();
            out.extend_from_slice(&session.finish().unwrap().output);
            assert_eq!(
                String::from_utf8(out).unwrap(),
                "<r><item>v</item></r>",
                "query over /{t} evaluates correctly"
            );
        }
    }

    #[test]
    fn sessions_share_interner_snapshot_without_polluting_master() {
        let service = QueryService::with_defaults();
        service.get_or_compile(QUERY).unwrap();
        let master_len = service.master_interner_len();
        let snap1 = service.tags_snapshot();
        // Document-side tags unknown to the query land in the session's
        // private overlay, never in the master.
        let mut session = service.open_session(QUERY).unwrap();
        let doc = "<bib><book><title>A</title><subtitle>s</subtitle>\
                   <publisher>p</publisher></book></bib>";
        let mut out = session.feed(doc.as_bytes()).unwrap();
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(String::from_utf8(out).unwrap(), "<r><title>A</title></r>");
        assert_eq!(
            service.master_interner_len(),
            master_len,
            "document tags must not leak into the master interner"
        );
        // The snapshot is reused, not rebuilt, while the master is stable.
        let snap2 = service.tags_snapshot();
        assert!(Arc::ptr_eq(&snap1, &snap2), "O(1) steady-state snapshot");
        // Compiling a new query grows the master and refreshes the
        // snapshot.
        service
            .get_or_compile("<r>{ for $z in /warehouse return $z }</r>")
            .unwrap();
        let snap3 = service.tags_snapshot();
        assert!(!Arc::ptr_eq(&snap2, &snap3), "snapshot refreshed on growth");
        assert!(snap3.get("warehouse").is_some());
    }

    #[test]
    fn interner_rebuild_reclaims_dead_tags_after_eviction_churn() {
        // A tiny cache churned with single-use queries over disjoint tag
        // vocabularies: without reclamation the master interner grows
        // with every query ever compiled; with epoch rebuilds it tracks
        // the *live* queries.
        let service = QueryService::new(ServiceConfig {
            cache_capacity: 2,
            ..Default::default()
        });
        let q = |tag: &str| format!("<r>{{ for $x in /{tag}/sub{tag} return $x }}</r>");
        let mut peak = 0usize;
        for i in 0..40 {
            service
                .get_or_compile(&q(&format!("uniquetag{i}")))
                .unwrap();
            peak = peak.max(service.master_interner_len());
        }
        let final_len = service.master_interner_len();
        assert!(
            service.stats().interner_rebuilds > 0,
            "eviction churn must trigger rebuilds"
        );
        assert!(
            final_len < peak,
            "master interner shrank after churn: peak {peak}, now {final_len}"
        );
        // The live set is 2 queries × (r + 2 tags each, r shared):
        // bounded by a small constant, not by the 40 queries compiled.
        assert!(
            final_len <= 3 * 2 + 1,
            "master tracks live queries only, got {final_len}"
        );
        // Cached queries still evaluate correctly after the rebuild
        // (their ids are consistent with the rebuilt master).
        let tag = "uniquetag39";
        let mut session = service.open_session(&q(tag)).unwrap();
        let doc = format!("<{tag}><sub{tag}>v</sub{tag}></{tag}>");
        let mut out = session.feed(doc.as_bytes()).unwrap();
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            format!("<r><sub{tag}>v</sub{tag}></r>")
        );
    }

    #[test]
    fn sessions_spanning_a_rebuild_keep_their_snapshot() {
        let service = QueryService::new(ServiceConfig {
            cache_capacity: 1,
            ..Default::default()
        });
        // Open a session, then churn the cache until a rebuild happens
        // while the session is still streaming.
        let mut session = service.open_session(QUERY).unwrap();
        let mut out = session.feed(b"<bib><book><title>A</title></book>").unwrap();
        let rebuilds_before = service.stats().interner_rebuilds;
        for i in 0..20 {
            let q = format!("<r>{{ for $x in /churn{i}/x{i} return $x }}</r>");
            service.get_or_compile(&q).unwrap();
        }
        assert!(
            service.stats().interner_rebuilds > rebuilds_before,
            "churn must have rebuilt the master mid-session"
        );
        out.extend_from_slice(
            &session
                .feed(b"<book><title>B</title></book></bib>")
                .unwrap(),
        );
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>",
            "old snapshot + old compiled query stay mutually consistent"
        );
    }

    #[test]
    fn sessions_opened_during_rebuild_churn_stay_consistent() {
        // Regression: open_session used to fetch the compiled query and
        // the interner snapshot under two separate lock acquisitions; a
        // rebuild in between paired old-id queries with new-id
        // snapshots. Hammer session opens against rebuild churn and
        // check every result.
        let service = Arc::new(QueryService::new(ServiceConfig {
            cache_capacity: 2,
            ..Default::default()
        }));
        let churner = {
            let service = service.clone();
            std::thread::spawn(move || {
                for i in 0..60 {
                    let q = format!("<r>{{ for $x in /churntag{i} return $x }}</r>");
                    service.get_or_compile(&q).unwrap();
                }
            })
        };
        for round in 0..60 {
            let tag = format!("stable{}", round % 3);
            let q = format!("<r>{{ for $x in /{tag}/item return $x }}</r>");
            let mut session = service.open_session(&q).unwrap();
            let doc = format!("<{tag}><item>v{round}</item><junk>j</junk></{tag}>");
            let mut out = session.feed(doc.as_bytes()).unwrap();
            out.extend_from_slice(&session.finish().unwrap().output);
            assert_eq!(
                String::from_utf8(out).unwrap(),
                format!("<r><item>v{round}</item></r>"),
                "round {round}: query ids and snapshot ids must agree"
            );
        }
        churner.join().unwrap();
        assert!(service.stats().interner_rebuilds > 0, "churn rebuilt");
    }

    #[test]
    fn rebuild_disabled_by_ratio_one() {
        let service = QueryService::new(ServiceConfig {
            cache_capacity: 1,
            interner_rebuild_dead_ratio: 1.0,
            ..Default::default()
        });
        for i in 0..10 {
            let q = format!("<r>{{ for $x in /keep{i} return $x }}</r>");
            service.get_or_compile(&q).unwrap();
        }
        assert_eq!(service.stats().interner_rebuilds, 0);
        assert!(
            service.master_interner_len() >= 10,
            "append-only behaviour preserved when disabled"
        );
    }

    #[test]
    fn compile_errors_surface_and_do_not_poison() {
        let service = QueryService::with_defaults();
        assert!(matches!(
            service.get_or_compile("<r>{ $undefined }</r>"),
            Err(ServiceError::Compile(_))
        ));
        // The service still works afterwards.
        let ok = service.get_or_compile(QUERY);
        assert!(ok.is_ok());
    }

    #[test]
    fn batch_isolates_failures() {
        let service = QueryService::with_defaults();
        let jobs = vec![
            BatchJob {
                query: QUERY.to_string(),
                input: DOC.as_bytes().into(),
                label: "good".into(),
            },
            BatchJob {
                query: QUERY.to_string(),
                input: b"<bib><book></bib>"[..].into(), // malformed
                label: "bad".into(),
            },
            BatchJob {
                query: QUERY.to_string(),
                input: DOC.as_bytes().into(),
                label: "also-good".into(),
            },
        ];
        let results = service.run_batch(&jobs, 5);
        assert_eq!(
            String::from_utf8(results[0].as_ref().unwrap().output.clone()).unwrap(),
            EXPECTED
        );
        assert!(results[1].is_err(), "malformed stream fails its own job");
        assert_eq!(
            String::from_utf8(results[2].as_ref().unwrap().output.clone()).unwrap(),
            EXPECTED
        );
    }

    #[test]
    fn tiny_budget_is_backpressure_not_failure() {
        // A budget far smaller than the combined inputs (and smaller than
        // the requested chunk size) must slow the batch down, not fail it.
        let service = QueryService::new(ServiceConfig {
            memory_budget: Some(48),
            max_concurrency: 8,
            ..Default::default()
        });
        let jobs: Vec<BatchJob> = (0..6)
            .map(|i| BatchJob {
                query: QUERY.to_string(),
                input: DOC.as_bytes().into(),
                label: format!("j{i}"),
            })
            .collect();
        for r in service.run_batch(&jobs, 64) {
            let outcome = r.expect("budget waits instead of failing");
            assert_eq!(String::from_utf8(outcome.output).unwrap(), EXPECTED);
        }
        assert_eq!(service.stats().budget_used, 0);
    }

    #[test]
    fn zero_budget_fails_fast_instead_of_hanging() {
        // A budget that can never admit a byte must error, not livelock.
        let service = QueryService::new(ServiceConfig {
            memory_budget: Some(0),
            ..Default::default()
        });
        let jobs = vec![BatchJob {
            query: QUERY.to_string(),
            input: DOC.as_bytes().into(),
            label: "doomed".into(),
        }];
        let results = service.run_batch(&jobs, 64);
        assert!(
            matches!(results[0], Err(ServiceError::BudgetExceeded { .. })),
            "got {:?}",
            results[0].as_ref().err().map(|e| e.to_string())
        );
    }

    #[test]
    fn budgeted_service_returns_all_bytes() {
        let service = QueryService::new(ServiceConfig {
            memory_budget: Some(1 << 20),
            ..Default::default()
        });
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| BatchJob {
                query: QUERY.to_string(),
                input: DOC.as_bytes().into(),
                label: format!("j{i}"),
            })
            .collect();
        for r in service.run_batch(&jobs, 3) {
            r.unwrap();
        }
        assert_eq!(service.stats().budget_used, 0, "budget fully reclaimed");
    }
}
