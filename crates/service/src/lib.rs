//! # gcx-service — push-based streaming sessions and concurrent serving
//!
//! The GCX engine (`gcx-core`) evaluates one query over one *pulled*
//! stream. This crate turns that into a serving runtime:
//!
//! * [`StreamSession`] — a **push** API (`feed(&[u8])` → incremental
//!   output bytes → `finish()` → [`SessionOutcome`] with per-session
//!   `BufferStats`). A dedicated evaluator thread pulls from a bounded
//!   chunk queue, so callers are never blocked on evaluation and the
//!   engine's buffer-minimization machinery runs unmodified.
//! * [`QueryService`] — an LRU **compiled-query cache** (keyed by
//!   normalized query text, sharing one master `TagInterner`) so repeated
//!   queries skip parse/rewriting/signOff/projection analysis, plus
//!   [`QueryService::run_batch`] for bounded-concurrency evaluation of
//!   many jobs.
//! * [`MemoryBudget`] — a global bound on service-owned bytes (queued
//!   input + undrained output) summed over all concurrent sessions.
//!
//! Errors are isolated per session: a malformed stream fails that
//! session's `feed`/`finish` and nothing else. See `README.md` for the
//! session state machine and memory-budget semantics.

pub mod budget;
pub mod metrics;
pub mod pool;
pub mod service;
pub mod session;

pub use budget::MemoryBudget;
pub use metrics::SessionMetrics;
pub use pool::EvaluatorPool;
pub use service::{normalize_query, BatchJob, QueryService, ServiceConfig, ServiceStats};
pub use session::{ProgressWaker, SessionConfig, SessionOutcome, StreamSession, TryFeed};

use gcx_query::CompileError;
use std::fmt;

/// Marker substring of the session error produced when a session's
/// undrained output exceeds its hard cap ([`SessionConfig::output_max_bytes`]).
/// Session errors travel as strings (they cross the evaluator thread via
/// `io::Error`), so drivers attribute cap failures by matching this.
pub const OUTPUT_CAP_ERROR: &str = "session output hard cap exceeded";

/// Everything the service layer can fail with.
#[derive(Debug)]
pub enum ServiceError {
    /// The query failed to compile.
    Compile(CompileError),
    /// The session's evaluator failed (malformed stream, engine error,
    /// or evaluator panic). Sticky: every later call returns it again.
    Session(String),
    /// Admitting the chunk would exceed the global memory budget. Output
    /// produced so far is handed back in `drained`; the caller may drain
    /// other sessions and retry.
    BudgetExceeded {
        /// Bytes the rejected chunk needed.
        requested: usize,
        /// Budget bytes in use at rejection time.
        used: usize,
        /// The configured limit.
        limit: usize,
        /// Output bytes drained from this session as a side effect.
        drained: Vec<u8>,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Compile(e) => write!(f, "compile error: {e}"),
            ServiceError::Session(msg) => write!(f, "session error: {msg}"),
            ServiceError::BudgetExceeded {
                requested,
                used,
                limit,
                ..
            } => write!(
                f,
                "memory budget exceeded: chunk of {requested}B does not fit ({used}B used of {limit}B)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Compile(e) => Some(e),
            _ => None,
        }
    }
}
