//! Push-based streaming sessions over the resumable GCX step machine.
//!
//! The engine ([`GcxEngine`]) evaluates in bounded **slices**
//! ([`GcxEngine::step`]): all suspension state lives in the engine
//! struct, so a session no longer needs a thread parked inside
//! evaluation. A [`StreamSession`] wraps one engine as a schedulable
//! task:
//!
//! ```text
//!   caller thread                         scheduler worker
//!   ─────────────                         ────────────────
//!   feed(chunk) ──► bounded chunk queue ──► ChunkReader::read (WouldBlock when dry)
//!        │ wake ──► ready queue          ──► GcxEngine::step(budget)
//!   feed/drain ◄── shared output buffer ◄── SessionWriter::write
//!   finish()   ──► close + wake + wait  ──► RunReport (BufferStats)
//! ```
//!
//! In pooled mode ([`SessionConfig::pool`]) the session is a
//! [`PoolTask`] on the shared [`EvaluatorPool`] scheduler: it runs one
//! bounded step per slice, re-enqueues itself while runnable (fairness),
//! and *parks* — leaves the scheduler entirely — when input runs dry
//! ([`StepOutcome::NeedInput`]) or undrained output crosses the
//! high-water mark ([`StepOutcome::OutputBackpressure`]). `feed`,
//! `drain`, `close_input` and `cancel` wake it back up. M workers thus
//! serve any number of open sessions, none of them ever blocked.
//!
//! Without a pool, a dedicated thread drives the same task, parking on
//! the session's condvars instead of the scheduler.
//!
//! The chunk queue applies backpressure (`feed` blocks once
//! `input_queue_bytes` are pending), and output bytes are handed back
//! incrementally — each `feed`/`drain` returns everything the engine
//! has emitted so far, which the engine produces as early as the stream
//! permits (the GCX property). Errors are isolated per session: a
//! malformed stream fails this session and surfaces on the next call,
//! nothing else.
//!
//! ## Session state machine
//!
//! `feed* → (drain | feed)* → finish` — or `cancel` at any point.
//! Dropping an unfinished session cancels it implicitly.

use crate::budget::MemoryBudget;
use crate::metrics::SessionMetrics;
use crate::pool::{EvaluatorPool, ParkReason, PoolTask, Slice, TaskHandle};
use crate::ServiceError;
use gcx_buffer::LiveBufferStats;
use gcx_core::{CancelFlag, EngineOptions, EngineStageMetrics, GcxEngine, RunReport, StepOutcome};
use gcx_obs::{log_error, log_info};
use gcx_query::CompiledQuery;
use gcx_xml::TagInterner;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Log target for session lifecycle events.
const LOG_TARGET: &str = "gcx_service::session";

/// Default engine step budget per scheduler slice (frame executions; see
/// [`SessionConfig::step_budget`]).
pub const DEFAULT_STEP_BUDGET: u32 = 4096;

/// Session tuning knobs.
#[derive(Clone)]
pub struct SessionConfig {
    /// Maximum bytes of fed-but-unconsumed input queued per session;
    /// `feed` blocks (backpressure) once the queue is full. A single
    /// chunk larger than the bound is admitted alone rather than
    /// deadlocking.
    pub input_queue_bytes: usize,
    /// Engine strategy (GC on by default), including the lexer options
    /// for the input stream (`engine.lexer`).
    pub engine: EngineOptions,
    /// Optional global budget shared with sibling sessions; `feed` fails
    /// with [`ServiceError::BudgetExceeded`] instead of queueing past it.
    pub budget: Option<Arc<MemoryBudget>>,
    /// Charge the engine buffer (nodes + text-arena payload) against
    /// `budget` as *hard* reservations: a document needing more buffer
    /// than the budget allows fails its own session with a clean error
    /// instead of growing without bound. Off by default — the I/O-queue
    /// budget semantics (backpressure, not failure) are unchanged.
    pub charge_engine_buffer: bool,
    /// Optional shared mirror of the session's live buffer footprint,
    /// published by the evaluator after every footprint change so
    /// observability planes (`/stats`) can sample it mid-stream.
    pub live_stats: Option<Arc<LiveBufferStats>>,
    /// Output-side high-water mark: once this many produced-but-undrained
    /// output bytes are pending, the engine's output gate closes and the
    /// session *parks* at the next step boundary until the caller drains
    /// — backpressure that suspends the engine at the consumer's pace
    /// instead of buffering its result. A slice already running can
    /// overshoot the mark by at most one step budget's worth of output.
    pub output_high_water: usize,
    /// Output-side hard cap: a push that would leave more than this many
    /// undrained bytes fails the session cleanly (error message contains
    /// [`crate::OUTPUT_CAP_ERROR`]). The gate parks at `output_high_water`
    /// *between* steps, so the cap is the in-slice overshoot backstop:
    /// set it below the high-water mark (or within one slice's output
    /// above it) to fail never-draining consumers instead of parking
    /// them. `usize::MAX` disables the cap.
    pub output_max_bytes: usize,
    /// Engine step budget (frame executions) per scheduler slice.
    /// Smaller slices tighten fairness and the output-overshoot bound;
    /// larger slices amortize scheduling overhead. Clamped to ≥ 1.
    pub step_budget: u32,
    /// Run the session on this shared scheduler instead of spawning a
    /// dedicated thread: the process thread count stays fixed no matter
    /// how many sessions are open, and parked sessions cost no thread at
    /// all. `None` keeps the one-thread-per-session behaviour.
    pub pool: Option<EvaluatorPool>,
    /// Called from the evaluator side whenever the session makes
    /// progress a parked caller could act on: input consumed (queue
    /// space freed), output produced, or the evaluator terminating.
    /// Drivers that park backpressured sessions (gcx-net's connection
    /// loop) hang their readiness wakeup here instead of sleep-polling.
    /// Must be cheap and must not call back into the session.
    pub progress_waker: Option<ProgressWaker>,
    /// Optional shared session lifecycle metrics (queue wait, run time,
    /// outcome counters); one instance is typically shared by every
    /// session a server opens. Recording is wait-free — a handful of
    /// relaxed atomic ops per session.
    pub metrics: Option<Arc<SessionMetrics>>,
    /// Optional shared per-stage engine timing, installed into the
    /// session's engine ([`gcx_core::GcxEngine::set_stage_metrics`]).
    /// Sampled every [`SessionConfig::stage_sample_every`] pump steps.
    pub stage_metrics: Option<Arc<EngineStageMetrics>>,
    /// Sampling interval for `stage_metrics` (clamped to ≥ 1); ignored
    /// when `stage_metrics` is `None`.
    pub stage_sample_every: u32,
    /// Human-readable session label (e.g. the query name) used in error
    /// logs — most importantly the evaluator-panic report.
    pub label: Option<String>,
    /// Optional request-scoped flight recorder, installed into the
    /// session's engine ([`gcx_core::GcxEngine::set_flight_recorder`])
    /// together with `trace_id`: stage spans, emit spans, yield spans
    /// and buffer events for this session are recorded under that trace
    /// ID.
    pub flight_recorder: Option<Arc<gcx_obs::FlightRecorder>>,
    /// Trace ID for `flight_recorder` (0 = no trace; spans are dropped).
    pub trace_id: u64,
}

/// Shared wakeup hook for session progress; see
/// [`SessionConfig::progress_waker`].
pub type ProgressWaker = Arc<dyn Fn() + Send + Sync>;

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            input_queue_bytes: 256 * 1024,
            engine: EngineOptions::default(),
            budget: None,
            charge_engine_buffer: false,
            live_stats: None,
            output_high_water: 4 * 1024 * 1024,
            output_max_bytes: usize::MAX,
            step_budget: DEFAULT_STEP_BUDGET,
            pool: None,
            progress_waker: None,
            metrics: None,
            stage_metrics: None,
            stage_sample_every: gcx_core::DEFAULT_STAGE_SAMPLE_EVERY,
            label: None,
            flight_recorder: None,
            trace_id: 0,
        }
    }
}

/// Result of a [`StreamSession::try_feed`] attempt. Both variants carry
/// every output byte the engine has produced so far (drained exactly
/// once).
#[derive(Debug)]
pub enum TryFeed {
    /// The chunk was admitted (or discarded because evaluation already
    /// completed — one-shot semantics, matching [`StreamSession::feed`]).
    Fed(Vec<u8>),
    /// The input queue or budget is full; the chunk was **not** admitted.
    /// Re-offer it after draining — parking the session meanwhile — or
    /// fall back to the blocking [`StreamSession::feed`].
    Busy(Vec<u8>),
}

impl TryFeed {
    /// The drained output, whichever variant.
    pub fn output(self) -> Vec<u8> {
        match self {
            TryFeed::Fed(out) | TryFeed::Busy(out) => out,
        }
    }

    /// True when the chunk was admitted (or the session had completed).
    pub fn accepted(&self) -> bool {
        matches!(self, TryFeed::Fed(_))
    }
}

/// Everything a finished session hands back.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Output bytes not yet drained by earlier `feed`/`drain` calls.
    pub output: Vec<u8>,
    /// The engine's run report: per-session [`gcx_buffer::BufferStats`],
    /// timing, token counts, role accounting.
    pub report: RunReport,
}

struct State {
    /// Fed chunks not yet consumed by the evaluator; the front chunk may
    /// be partially consumed (`head_offset` bytes already read).
    input: VecDeque<Vec<u8>>,
    head_offset: usize,
    /// Total unconsumed input bytes (budget-accounted).
    input_bytes: usize,
    /// No more input will arrive (`finish` called).
    closed: bool,
    /// Abort requested.
    cancelled: bool,
    /// The session's first slice has run (as opposed to still sitting in
    /// the scheduler's ready queue). Used for queue-wait metrics and to
    /// attribute cancellations of never-started sessions.
    started: bool,
    /// Engine output not yet handed to the caller (budget-accounted).
    output: Vec<u8>,
    /// Set exactly once when the evaluator ends.
    done: Option<Result<RunReport, String>>,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when input arrives or the session closes/cancels (a
    /// dedicated evaluator thread parked on need-input re-checks).
    data_available: Condvar,
    /// Signaled when the evaluator consumes input, produces output, or
    /// terminates — anything a caller blocked in `feed` can act on.
    space_available: Condvar,
    /// Signaled when the caller drains output (a dedicated evaluator
    /// thread parked on output backpressure re-checks the mark).
    output_drained: Condvar,
    /// See [`SessionConfig::output_high_water`].
    output_high_water: usize,
    /// See [`SessionConfig::output_max_bytes`].
    output_max_bytes: usize,
    /// External wakeup for parked drivers (see
    /// [`SessionConfig::progress_waker`]).
    progress_waker: Option<ProgressWaker>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned mutex means an evaluator slice panicked mid-update;
        // the session is already being failed, so keep serving the
        // caller rather than propagating the panic.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn set_done(&self, result: Result<RunReport, String>) {
        let mut st = self.lock();
        if st.done.is_none() {
            st.done = Some(result);
        }
        self.data_available.notify_all();
        self.space_available.notify_all();
        self.output_drained.notify_all();
        drop(st);
        self.wake_progress();
    }

    /// Takes the undrained output, returning its bytes to the budget and
    /// waking an evaluator parked on the output high-water mark.
    fn take_output(&self, st: &mut State, budget: &Option<Arc<MemoryBudget>>) -> Vec<u8> {
        let out = std::mem::take(&mut st.output);
        if let Some(b) = budget {
            b.release(out.len());
        }
        if !out.is_empty() {
            self.output_drained.notify_all();
        }
        out
    }

    /// Discards undrained output and queued input, returning their bytes
    /// to the budget (cancellation path; idempotent — both helpers zero
    /// the state they account for).
    fn reclaim(&self, st: &mut State, budget: &Option<Arc<MemoryBudget>>) {
        let _ = self.take_output(st, budget);
        StreamSession::release_input(st, budget);
    }

    /// Notifies an external parked driver, if one registered. Called
    /// outside the state lock (the waker may take its own locks).
    fn wake_progress(&self) {
        if let Some(w) = &self.progress_waker {
            w();
        }
    }
}

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The evaluator-side `Read`: pops fed chunks, **never blocking** — an
/// empty queue surfaces as `WouldBlock`, which the lexer's non-blocking
/// contract turns into [`StepOutcome::NeedInput`] (the session parks
/// until `feed`/`close_input` wakes it).
struct ChunkReader {
    shared: Arc<Shared>,
    budget: Option<Arc<MemoryBudget>>,
}

impl Read for ChunkReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.shared.lock();
        if st.cancelled {
            return Err(io::Error::other("session cancelled"));
        }
        if let Some(chunk) = st.input.front() {
            let chunk_len = chunk.len();
            let avail = &chunk[st.head_offset..];
            let n = avail.len().min(buf.len());
            buf[..n].copy_from_slice(&avail[..n]);
            st.head_offset += n;
            if st.head_offset == chunk_len {
                st.input.pop_front();
                st.head_offset = 0;
            }
            st.input_bytes -= n;
            if let Some(b) = &self.budget {
                b.release(n);
            }
            self.shared.space_available.notify_all();
            drop(st);
            // Queue space freed: a parked driver can re-offer its
            // pending chunk.
            self.shared.wake_progress();
            return Ok(n);
        }
        if st.closed {
            return Ok(0);
        }
        Err(io::ErrorKind::WouldBlock.into())
    }
}

/// The evaluator-side `Write`: appends to the shared output buffer so
/// callers see results incrementally.
///
/// `XmlWriter` emits several tiny writes per tag (`<`, name, `>`); taking
/// the session mutex for each would triple lock traffic for no benefit.
/// Writes are staged in a lock-free local micro-buffer and pushed to the
/// shared buffer on *tag boundaries* — whenever the staged bytes end with
/// `>`, which escaped character data never does — so the lock is taken
/// once per tag while incremental delivery (every complete tag is
/// immediately visible to `feed`/`drain`) is preserved.
///
/// The writer never parks: output backpressure is the engine's output
/// *gate* (checked between steps), not a blocking write. A push only
/// fails on cancellation or on the [`SessionConfig::output_max_bytes`]
/// hard cap.
struct SessionWriter {
    shared: Arc<Shared>,
    budget: Option<Arc<MemoryBudget>>,
    /// Locally staged bytes not yet pushed to the shared buffer.
    staged: Vec<u8>,
}

/// Safety valve: push even mid-tag once this much is staged (a single
/// enormous text node must not sit invisible in the micro-buffer).
const STAGE_FLUSH_BYTES: usize = 8 * 1024;

impl SessionWriter {
    /// Pushes staged bytes to the shared output buffer, enforcing the
    /// hard cap (the high-water mark is enforced by the engine's output
    /// gate between steps, never here).
    fn push_staged(&mut self) -> io::Result<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let mut st = self.shared.lock();
        if st.cancelled {
            return Err(io::Error::other("session cancelled"));
        }
        let backlog = st.output.len();
        if backlog.saturating_add(self.staged.len()) > self.shared.output_max_bytes {
            return Err(io::Error::other(format!(
                "{}: {} B undrained + {} B staged exceed the {} B cap \
                 (client not draining)",
                crate::OUTPUT_CAP_ERROR,
                backlog,
                self.staged.len(),
                self.shared.output_max_bytes,
            )));
        }
        st.output.extend_from_slice(&self.staged);
        if let Some(b) = &self.budget {
            // Soft accounting: an engine mid-emit cannot fail cleanly, so
            // output may transiently overshoot until the caller drains.
            b.force_reserve(self.staged.len());
        }
        self.staged.clear();
        // Fresh output can also unblock a caller waiting for queue space
        // in `feed`: it wakes, drains, the gate reopens, the evaluator
        // consumes input (the amplifying-query case: gate closed while
        // the input queue is full).
        self.shared.space_available.notify_all();
        drop(st);
        // Fresh output: a parked driver can drain it.
        self.shared.wake_progress();
        Ok(())
    }
}

impl Write for SessionWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.staged.extend_from_slice(buf);
        if self.staged.last() == Some(&b'>') || self.staged.len() >= STAGE_FLUSH_BYTES {
            self.push_staged()?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.push_staged()
    }
}

impl Drop for SessionWriter {
    fn drop(&mut self) {
        // An engine that errors out mid-emit never flushes; hand over
        // whatever was staged so diagnostics see the partial output. A
        // cap/cancel error here is already being reported elsewhere.
        let _ = self.push_staged();
    }
}

/// Owns a [`GcxEngine`] together with the tag interner and compiled
/// query it borrows, making the bundle movable across scheduler worker
/// threads.
///
/// The engine's lifetimes (`&'q CompiledQuery`, `&'t mut TagInterner`)
/// normally pin it to a stack frame; a scheduler needs the suspended
/// engine to live in a heap task instead. Both borrows point into
/// heap allocations owned by this same struct — stable addresses for
/// as long as the struct lives — so erasing them to `'static` is sound
/// under this struct's invariants:
///
/// - `_compiled` keeps the `CompiledQuery` allocation alive (and
///   `Arc` contents never move);
/// - `tags` is a `Box` leaked to a raw pointer (never moved, freed only
///   in `Drop` *after* the engine is gone);
/// - the engine is dropped first (explicitly, in `Drop`), so neither
///   borrow ever dangles;
/// - the engine holds the *only* reference to the interner, so the
///   `&mut` stays exclusive.
struct EngineTask {
    /// `Some` until dropped; `Option` only so `Drop` can order the
    /// engine's death before freeing `tags`.
    engine: Option<GcxEngine<'static, 'static, ChunkReader, SessionWriter>>,
    tags: *mut TagInterner,
    _compiled: Arc<CompiledQuery>,
}

// SAFETY: the raw `tags` pointer suppresses auto-Send, but it is just
// an owned `Box` in disguise (exclusively reachable through the engine,
// freed once in `Drop`); every other field is `Send`. The engine itself
// (reader, writer, gate, tracer hooks) is `Send` by bound.
unsafe impl Send for EngineTask {}

impl EngineTask {
    fn new(
        compiled: Arc<CompiledQuery>,
        tags: TagInterner,
        reader: ChunkReader,
        writer: SessionWriter,
        options: EngineOptions,
    ) -> Self {
        let tags = Box::into_raw(Box::new(tags));
        // SAFETY: see the struct docs — both targets are heap-stable and
        // outlive the engine because this struct drops the engine first.
        let compiled_ref: &'static CompiledQuery = unsafe { &*Arc::as_ptr(&compiled) };
        let tags_ref: &'static mut TagInterner = unsafe { &mut *tags };
        let engine = GcxEngine::new(compiled_ref, tags_ref, reader, writer, options);
        EngineTask {
            engine: Some(engine),
            tags,
            _compiled: compiled,
        }
    }

    fn engine_mut(&mut self) -> &mut GcxEngine<'static, 'static, ChunkReader, SessionWriter> {
        self.engine.as_mut().expect("engine present until drop")
    }

    fn step(&mut self, budget: u32) -> StepOutcome {
        self.engine_mut().step(budget)
    }
}

impl Drop for EngineTask {
    fn drop(&mut self) {
        // Order matters: the engine borrows `tags`, so it dies first.
        self.engine = None;
        // SAFETY: created by `Box::into_raw` in `new`, freed exactly
        // once, and nothing references the interner anymore.
        unsafe { drop(Box::from_raw(self.tags)) };
    }
}

/// The schedulable session task: one engine step per slice, shared by
/// pooled mode (as a [`PoolTask`]) and dedicated-thread mode (driven by
/// [`dedicated_loop`]).
struct EvalTask {
    shared: Arc<Shared>,
    budget: Option<Arc<MemoryBudget>>,
    /// `Some` while the engine is alive; consumed on completion, error,
    /// panic or cancellation (dropping the engine flushes its writer).
    /// The scheduler guarantees at most one slice runs at a time, so
    /// this mutex is uncontended — it exists to make the task `Sync`.
    engine: Mutex<Option<EngineTask>>,
    step_budget: u32,
    metrics: Option<Arc<SessionMetrics>>,
    /// For panic accounting ([`EvaluatorPool::note_panic`]) only.
    pool: Option<EvaluatorPool>,
    label: Option<String>,
    flight: Option<Arc<gcx_obs::FlightRecorder>>,
    trace_id: u64,
    created: Instant,
    run_started: Mutex<Option<Instant>>,
}

impl EvalTask {
    /// Records final metrics, logs, publishes the result and (if the
    /// session was cancelled meanwhile) reclaims its accounting. The
    /// engine must already be dropped — its writer's final flush has to
    /// land in `output` before `done` is set.
    fn finish_with(&self, result: Result<RunReport, String>) {
        if let Some(m) = &self.metrics {
            if let Some(start) = *self.run_started.lock().unwrap_or_else(|p| p.into_inner()) {
                m.run.record(start.elapsed());
            }
            m.total.record(self.created.elapsed());
            match &result {
                Ok(_) => m.completed.inc(),
                Err(_) => m.failed.inc(),
            }
        }
        if let Err(msg) = &result {
            // Per-client failures (malformed streams, budget/cap trips)
            // are expected under hostile input: info, not warn, so a
            // default-level server stays quiet.
            log_info!(LOG_TARGET, "session failed: {msg}");
        }
        self.shared.set_done(result);
        let mut st = self.shared.lock();
        if st.cancelled {
            // The caller cancelled without waiting (or raced us): the
            // reclamation duty is ours. Idempotent otherwise.
            self.shared.reclaim(&mut st, &self.budget);
        }
    }
}

impl PoolTask for EvalTask {
    fn run_slice(&self) -> Slice {
        let mut slot = self.engine.lock().unwrap_or_else(|p| p.into_inner());
        let Some(engine) = slot.as_mut() else {
            return Slice::Done; // already retired
        };
        let mut first = false;
        {
            let mut st = self.shared.lock();
            if st.cancelled {
                if !st.started {
                    if let Some(m) = &self.metrics {
                        m.cancelled_queued.inc();
                    }
                }
                self.shared.reclaim(&mut st, &self.budget);
                drop(st);
                // Dropping the engine flushes its writer, which fails on
                // the cancelled flag — nothing re-charges the budget.
                *slot = None;
                self.shared.set_done(Err("session cancelled".to_string()));
                return Slice::Done;
            }
            if !st.started {
                st.started = true;
                first = true;
            }
        }
        if first {
            if let Some(m) = &self.metrics {
                m.queue_wait.record(self.created.elapsed());
                m.started.inc();
            }
            if let Some(rec) = &self.flight {
                // Queue-wait span: session creation → first slice.
                let dur_ns = self.created.elapsed().as_nanos() as u64;
                let start = rec.now_ns().saturating_sub(dur_ns);
                rec.record_span(
                    self.trace_id,
                    gcx_obs::SpanKind::QueueWait,
                    start,
                    dur_ns,
                    0,
                );
            }
            *self.run_started.lock().unwrap_or_else(|p| p.into_inner()) = Some(Instant::now());
        }
        // A panicking engine must fail *this session*, not the scheduler
        // worker carrying it: catch the unwind and convert it into a
        // normal session error (the pool's own catch is only a backstop).
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if first && gcx_faults::fire("eval.panic") {
                panic!("injected evaluator panic (gcx-faults)");
            }
            engine.step(self.step_budget)
        }));
        match outcome {
            Ok(StepOutcome::Yielded) => Slice::Again,
            Ok(StepOutcome::NeedInput) => Slice::Park(ParkReason::NeedInput),
            Ok(StepOutcome::OutputBackpressure) => Slice::Park(ParkReason::OutputBackpressure),
            Ok(StepOutcome::Finished(report)) => {
                *slot = None; // final writer flush lands before `done`
                self.finish_with(Ok(report));
                Slice::Done
            }
            Ok(StepOutcome::Err(e)) => {
                let msg = e.to_string();
                *slot = None;
                self.finish_with(Err(msg));
                Slice::Done
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref()).to_string();
                *slot = None;
                if let Some(p) = &self.pool {
                    p.note_panic();
                }
                log_error!(
                    LOG_TARGET,
                    "evaluator panicked (session {}): {msg}",
                    self.label.as_deref().unwrap_or("unlabeled")
                );
                self.finish_with(Err(format!("evaluator panicked: {msg}")));
                Slice::Done
            }
        }
    }
}

/// Dedicated-thread driver: the same slice loop the scheduler runs, with
/// the session's condvars standing in for park/wake.
fn dedicated_loop(task: EvalTask, shared: Arc<Shared>) {
    loop {
        match task.run_slice() {
            Slice::Again => continue,
            Slice::Done => return,
            Slice::Park(ParkReason::NeedInput) => {
                let mut st = shared.lock();
                while st.input.is_empty() && !st.closed && !st.cancelled {
                    st = shared
                        .data_available
                        .wait(st)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
            Slice::Park(ParkReason::OutputBackpressure) => {
                let mut st = shared.lock();
                while st.output.len() >= shared.output_high_water && !st.cancelled {
                    st = shared
                        .output_drained
                        .wait(st)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }
}

/// How the session's task is driven.
enum Evaluator {
    /// One thread per session, parked on the session condvars.
    Dedicated(Option<JoinHandle<()>>),
    /// A task on the shared [`EvaluatorPool`] scheduler; the handle
    /// re-enqueues it after a park.
    Pooled(TaskHandle),
}

/// A push-driven evaluation of one compiled query over one input stream.
/// See the module docs for the control-flow picture.
pub struct StreamSession {
    shared: Arc<Shared>,
    cancel: CancelFlag,
    evaluator: Evaluator,
    input_queue_bytes: usize,
    budget: Option<Arc<MemoryBudget>>,
    /// The session has been finished/cancelled and its resources
    /// reclaimed; `Drop` has nothing left to do.
    terminated: bool,
}

impl StreamSession {
    /// Builds the session task for `compiled` over a fresh chunk queue
    /// and hands it to the shared [`EvaluatorPool`] scheduler when
    /// `config.pool` is set (fixed process thread count; a parked
    /// session costs no thread), or to a dedicated thread otherwise.
    /// `tags` must be (a snapshot/overlay of) the interner the query was
    /// compiled against — [`crate::QueryService`] hands out matching
    /// overlays; tags the document adds on top stay session-local.
    pub fn new(compiled: Arc<CompiledQuery>, tags: TagInterner, config: SessionConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                input: VecDeque::new(),
                head_offset: 0,
                input_bytes: 0,
                closed: false,
                cancelled: false,
                started: false,
                output: Vec::new(),
                done: None,
            }),
            data_available: Condvar::new(),
            space_available: Condvar::new(),
            output_drained: Condvar::new(),
            output_high_water: config.output_high_water.max(STAGE_FLUSH_BYTES),
            output_max_bytes: config.output_max_bytes.max(STAGE_FLUSH_BYTES),
            progress_waker: config.progress_waker.clone(),
        });
        let cancel = CancelFlag::new();
        let budget = config.budget.clone();
        let reader = ChunkReader {
            shared: shared.clone(),
            budget: budget.clone(),
        };
        let writer = SessionWriter {
            shared: shared.clone(),
            budget: budget.clone(),
            staged: Vec::new(),
        };
        let mut engine = EngineTask::new(compiled, tags, reader, writer, config.engine);
        {
            let e = engine.engine_mut();
            e.set_cancel_flag(cancel.clone());
            if let Some(live) = config.live_stats.clone() {
                e.set_live_stats(live);
            }
            if let Some(sm) = config.stage_metrics.clone() {
                e.set_stage_metrics(sm, config.stage_sample_every);
            }
            if let Some(rec) = config.flight_recorder.clone() {
                e.set_flight_recorder(rec, config.trace_id);
            }
            if config.charge_engine_buffer {
                if let Some(b) = &budget {
                    e.set_buffer_accounting(b.clone());
                }
            }
            // The output gate implements the high-water backpressure:
            // checked between steps, it parks the session instead of
            // blocking a write. Cancellation opens the gate so the next
            // slice runs straight into the reader/writer cancel error
            // and terminates promptly.
            let gate_shared = shared.clone();
            e.set_output_gate(Box::new(move || {
                let st = gate_shared.lock();
                st.cancelled || st.output.len() < gate_shared.output_high_water
            }));
        }
        let task = EvalTask {
            shared: shared.clone(),
            budget: budget.clone(),
            engine: Mutex::new(Some(engine)),
            step_budget: config.step_budget.max(1),
            metrics: config.metrics.clone(),
            pool: config.pool.clone(),
            label: config.label.clone(),
            flight: config.flight_recorder.clone(),
            trace_id: config.trace_id,
            created: Instant::now(),
            run_started: Mutex::new(None),
        };
        let evaluator = match &config.pool {
            Some(pool) => Evaluator::Pooled(pool.spawn_task(Box::new(task))),
            None => {
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("gcx-session".to_string())
                    .spawn(move || {
                        let shared2 = shared;
                        dedicated_loop(task, shared2)
                    })
                    .expect("spawn session evaluator thread");
                Evaluator::Dedicated(Some(handle))
            }
        };
        StreamSession {
            shared,
            cancel,
            evaluator,
            input_queue_bytes: config.input_queue_bytes,
            budget,
            terminated: false,
        }
    }

    /// Re-schedules a parked pooled task. Dedicated threads wake through
    /// the session condvars, notified at every mutation site. Must be
    /// called **outside** the state lock: after pool shutdown a wake
    /// runs the task inline, and the task takes that lock.
    fn wake_evaluator(&self) {
        if let Evaluator::Pooled(handle) = &self.evaluator {
            handle.wake();
        }
    }

    /// Pushes one input chunk and returns every output byte produced so
    /// far. Blocks while the input queue is full (backpressure) —
    /// draining output meanwhile, since an amplifying query may be
    /// parked on *output* backpressure while the input queue is full.
    /// Chunks fed after the evaluator already completed are discarded,
    /// matching one-shot semantics (the pull engine never reads past the
    /// data it needs). Returns the session's error if evaluation has
    /// failed.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<u8>, ServiceError> {
        let mut collected = Vec::new();
        let mut st = self.shared.lock();
        loop {
            if let Some(done) = &st.done {
                if let Err(msg) = done {
                    return Err(ServiceError::Session(msg.clone()));
                }
                break; // completed: drop the chunk, hand back output
            }
            if chunk.is_empty() {
                break;
            }
            // Admit when there is room — or the queue is empty (a single
            // oversized chunk must not deadlock).
            if st.input_bytes == 0 || st.input_bytes + chunk.len() <= self.input_queue_bytes {
                if let Some(b) = &self.budget {
                    if !b.try_reserve(chunk.len()) {
                        collected
                            .extend_from_slice(&self.shared.take_output(&mut st, &self.budget));
                        drop(st);
                        self.wake_evaluator();
                        return Err(ServiceError::BudgetExceeded {
                            requested: chunk.len(),
                            used: b.used(),
                            limit: b.limit(),
                            drained: collected,
                        });
                    }
                }
                st.input_bytes += chunk.len();
                st.input.push_back(chunk.to_vec());
                self.shared.data_available.notify_all();
                break;
            }
            // Queue full: drain whatever output is pending (reopening
            // the gate if the engine parked on it), wake the evaluator,
            // and wait for space. The predicate is re-checked under the
            // re-acquired lock, so a consume/push/done between the wake
            // and the wait cannot be lost (all three notify
            // `space_available`).
            collected.extend_from_slice(&self.shared.take_output(&mut st, &self.budget));
            drop(st);
            self.wake_evaluator();
            st = self.shared.lock();
            if st.done.is_some()
                || st.input_bytes == 0
                || st.input_bytes + chunk.len() <= self.input_queue_bytes
                || !st.output.is_empty()
            {
                continue;
            }
            st = self
                .shared
                .space_available
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        collected.extend_from_slice(&self.shared.take_output(&mut st, &self.budget));
        drop(st);
        self.wake_evaluator();
        Ok(collected)
    }

    /// As [`feed`](Self::feed), but treats a budget rejection as
    /// *backpressure*: the budget drains as sibling evaluators consume
    /// queued input and callers drain output, so this waits and retries
    /// until the chunk fits. A chunk that can **never** fit (larger than
    /// the entire budget) fails immediately instead of livelocking;
    /// callers who want bounded waits should size their chunks at or
    /// below the budget limit.
    pub fn feed_blocking(&mut self, chunk: &[u8]) -> Result<Vec<u8>, ServiceError> {
        let mut output = Vec::new();
        loop {
            match self.feed(chunk) {
                Ok(out) => {
                    output.extend_from_slice(&out);
                    return Ok(output);
                }
                Err(ServiceError::BudgetExceeded {
                    requested,
                    used,
                    limit,
                    drained,
                }) => {
                    output.extend_from_slice(&drained);
                    if requested > limit {
                        return Err(ServiceError::BudgetExceeded {
                            requested,
                            used,
                            limit,
                            drained: output,
                        });
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Non-blocking [`feed`](Self::feed): never waits for queue space or
    /// the budget. The session's output produced so far is always handed
    /// back; [`TryFeed::Busy`] means the chunk was **not** admitted and
    /// should be re-offered once siblings drain — the connection-loop
    /// shape of gcx-net, where a worker parks a backpressured session
    /// and serves other connections instead of blocking a thread on it.
    pub fn try_feed(&mut self, chunk: &[u8]) -> Result<TryFeed, ServiceError> {
        self.try_feed_inner(chunk, true)
    }

    /// As [`try_feed`](Self::try_feed), but **leaves produced output in
    /// the session**: `true` means the chunk was admitted, `false` means
    /// the queue/budget is full. For drivers whose own downstream is
    /// backed up (a client that stopped reading): feeding must continue
    /// so the evaluator keeps running, but draining would just move the
    /// unread response into the driver's buffers — undrained, the
    /// session's output high-water/hard-cap machinery applies instead.
    pub fn try_feed_undrained(&mut self, chunk: &[u8]) -> Result<bool, ServiceError> {
        Ok(self.try_feed_inner(chunk, false)?.accepted())
    }

    fn try_feed_inner(&mut self, chunk: &[u8], drain: bool) -> Result<TryFeed, ServiceError> {
        let result = {
            let mut st = self.shared.lock();
            let take = |st: &mut State| {
                if drain {
                    self.shared.take_output(st, &self.budget)
                } else {
                    Vec::new()
                }
            };
            if let Some(done) = &st.done {
                if let Err(msg) = done {
                    return Err(ServiceError::Session(msg.clone()));
                }
                // Completed: drop the chunk (one-shot semantics), hand
                // back whatever output is left.
                let out = take(&mut st);
                TryFeed::Fed(out)
            } else if chunk.is_empty() {
                let out = take(&mut st);
                TryFeed::Fed(out)
            } else if st.input_bytes != 0 && st.input_bytes + chunk.len() > self.input_queue_bytes {
                let out = take(&mut st);
                TryFeed::Busy(out)
            } else {
                let admit = match &self.budget {
                    Some(b) if !b.try_reserve(chunk.len()) => {
                        let out = take(&mut st);
                        if chunk.len() > b.limit() {
                            // Can never fit: retrying would livelock.
                            return Err(ServiceError::BudgetExceeded {
                                requested: chunk.len(),
                                used: b.used(),
                                limit: b.limit(),
                                drained: out,
                            });
                        }
                        Some(TryFeed::Busy(out))
                    }
                    _ => None,
                };
                match admit {
                    Some(busy) => busy,
                    None => {
                        st.input_bytes += chunk.len();
                        st.input.push_back(chunk.to_vec());
                        self.shared.data_available.notify_all();
                        let out = take(&mut st);
                        TryFeed::Fed(out)
                    }
                }
            }
        };
        // Admitted input and drained output both make a parked session
        // runnable again.
        self.wake_evaluator();
        Ok(result)
    }

    /// Takes the output produced so far without feeding anything.
    pub fn drain(&mut self) -> Vec<u8> {
        let out = {
            let mut st = self.shared.lock();
            self.shared.take_output(&mut st, &self.budget)
        };
        if !out.is_empty() {
            // The gate may have reopened.
            self.wake_evaluator();
        }
        out
    }

    /// True once the evaluator has terminated (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.shared.lock().done.is_some()
    }

    /// Signals end of input without waiting for the evaluator (the
    /// non-blocking half of [`finish`](Self::finish)); poll
    /// [`is_finished`](Self::is_finished) / [`take_outcome`](Self::take_outcome)
    /// afterwards. Idempotent.
    pub fn close_input(&mut self) {
        {
            let mut st = self.shared.lock();
            st.closed = true;
            self.shared.data_available.notify_all();
        }
        self.wake_evaluator();
    }

    /// Non-blocking completion poll: `None` while the evaluator is still
    /// running; once it has terminated, reclaims the session's queued
    /// bytes and returns the outcome exactly once. After `Some`, the
    /// session is spent — drop it.
    pub fn take_outcome(&mut self) -> Option<Result<SessionOutcome, ServiceError>> {
        let mut st = self.shared.lock();
        st.done.as_ref()?;
        let output = self.shared.take_output(&mut st, &self.budget);
        Self::release_input(&mut st, &self.budget);
        let done = st.done.take().expect("checked above");
        drop(st);
        self.reap_evaluator();
        self.terminated = true;
        Some(match done {
            Ok(report) => Ok(SessionOutcome { output, report }),
            Err(msg) => Err(ServiceError::Session(msg)),
        })
    }

    /// Signals end of input, waits for the evaluator to complete, and
    /// returns the remaining output together with the run report (which
    /// carries this session's `BufferStats`).
    pub fn finish(mut self) -> Result<SessionOutcome, ServiceError> {
        self.close_input();
        self.wait_done();
        self.take_outcome().unwrap_or_else(|| {
            Err(ServiceError::Session(
                "evaluator terminated without a result (bug)".to_string(),
            ))
        })
    }

    /// Aborts the session: cancels the engine cooperatively, wakes the
    /// task, and reclaims all budgeted bytes.
    pub fn cancel(mut self) {
        self.cancel_inner();
    }

    fn cancel_inner(&mut self) {
        self.cancel.cancel();
        {
            let mut st = self.shared.lock();
            st.cancelled = true;
            st.closed = true;
            self.shared.data_available.notify_all();
            self.shared.space_available.notify_all();
            self.shared.output_drained.notify_all();
        }
        // Waiting for `done` is bounded in every mode now that slices
        // are bounded: a parked or queued task's next slice observes
        // `cancelled` and retires immediately; after pool shutdown the
        // wake below runs that slice inline on this thread.
        self.wake_evaluator();
        self.wait_done();
        // The engine (and its writer) are gone — nothing can charge the
        // budget anymore. Reclaim whatever the task's own cancelled-path
        // reclaim did not cover (idempotent).
        {
            let mut st = self.shared.lock();
            self.shared.reclaim(&mut st, &self.budget);
        }
        self.reap_evaluator();
        self.terminated = true;
    }

    /// Blocks until the evaluator has set `done`.
    fn wait_done(&self) {
        let mut st = self.shared.lock();
        while st.done.is_none() {
            st = self
                .shared
                .space_available
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Joins the dedicated evaluator thread, if any (pool workers are
    /// never joined here — they outlive sessions by design).
    fn reap_evaluator(&mut self) {
        if let Evaluator::Dedicated(handle) = &mut self.evaluator {
            if let Some(handle) = handle.take() {
                // The loop exits once the task retires (`done` is set).
                let _ = handle.join();
            }
        }
    }

    fn release_input(st: &mut State, budget: &Option<Arc<MemoryBudget>>) {
        if let Some(b) = budget {
            b.release(st.input_bytes);
        }
        st.input.clear();
        st.head_offset = 0;
        st.input_bytes = 0;
    }
}

impl Drop for StreamSession {
    fn drop(&mut self) {
        if !self.terminated {
            self.cancel_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile_default;

    fn compile(query: &str) -> (Arc<CompiledQuery>, TagInterner) {
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).expect("compile");
        (Arc::new(compiled), tags)
    }

    const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
    const DOC: &str = "<bib><book><title>A</title></book><book><title>B</title></book></bib>";

    #[test]
    fn one_chunk_session_matches_one_shot() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let mut out = session.feed(DOC.as_bytes()).unwrap();
        let outcome = session.finish().unwrap();
        out.extend_from_slice(&outcome.output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
        assert_eq!(outcome.report.safety, Some(true));
        assert!(outcome.report.stats.peak_nodes > 0);
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let mut out = Vec::new();
        for b in DOC.as_bytes() {
            out.extend_from_slice(&session.feed(std::slice::from_ref(b)).unwrap());
        }
        let outcome = session.finish().unwrap();
        out.extend_from_slice(&outcome.output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }

    #[test]
    fn output_arrives_incrementally() {
        // After the first book's subtree closes, its title is safely
        // emittable; the session must not sit on it until finish().
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let early = "<bib><book><title>A</title></book>";
        let mut got = session.feed(early.as_bytes()).unwrap();
        // The evaluator runs asynchronously; poll briefly for the bytes.
        for _ in 0..200 {
            if String::from_utf8_lossy(&got).contains("<title>A</title>") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            got.extend_from_slice(&session.drain());
        }
        assert!(
            String::from_utf8_lossy(&got).contains("<title>A</title>"),
            "first result should be emitted before end of input, got {:?}",
            String::from_utf8_lossy(&got)
        );
        let rest = "<book><title>B</title></book></bib>";
        let mut out = got;
        out.extend_from_slice(&session.feed(rest.as_bytes()).unwrap());
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }

    #[test]
    fn malformed_stream_errors_cleanly() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let _ = session.feed(b"<bib><book></bib>").unwrap();
        let err = session.finish().unwrap_err();
        assert!(matches!(err, ServiceError::Session(_)), "got {err}");
    }

    #[test]
    fn error_is_sticky_on_feed() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let _ = session.feed(b"</nope>").unwrap();
        // Wait for the evaluator to hit the error.
        for _ in 0..200 {
            if session.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(session.feed(b"<more/>").is_err());
    }

    #[test]
    fn cancel_unblocks_and_reclaims_budget() {
        let budget = Arc::new(MemoryBudget::new(1 << 20));
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            budget: Some(budget.clone()),
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let _ = session.feed(b"<bib><book>").unwrap();
        session.cancel();
        assert_eq!(budget.used(), 0, "all bytes returned to the budget");
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let _ = session.feed(b"<bib>").unwrap();
        drop(session); // must retire the task, not leak it parked
    }

    #[test]
    fn budget_exceeded_surfaces() {
        let budget = Arc::new(MemoryBudget::new(4));
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            budget: Some(budget.clone()),
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let err = session.feed(b"<bib><book><title>A</title>").unwrap_err();
        assert!(matches!(err, ServiceError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn pooled_sessions_complete_on_a_single_shared_thread() {
        let pool = EvaluatorPool::new(1);
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            pool: Some(pool.clone()),
            ..Default::default()
        };
        // More sessions than pool threads: all must complete correctly,
        // multiplexed over one worker, with no per-session thread.
        let mut sessions: Vec<StreamSession> = (0..3)
            .map(|_| StreamSession::new(compiled.clone(), tags.clone(), config.clone()))
            .collect();
        let mut outputs: Vec<Vec<u8>> = Vec::new();
        for s in &mut sessions {
            outputs.push(s.feed(DOC.as_bytes()).unwrap());
        }
        for (s, mut out) in sessions.into_iter().zip(outputs) {
            out.extend_from_slice(&s.finish().unwrap().output);
            assert_eq!(
                String::from_utf8(out).unwrap(),
                "<r><title>A</title><title>B</title></r>"
            );
        }
        pool.shutdown();
    }

    #[test]
    fn parked_session_does_not_hold_a_worker() {
        // Under the old blocking pool this deadlocked: session A's job
        // occupied the only worker (parked inside evaluation waiting for
        // input) and B's job never ran. With the step scheduler, A
        // *parks* — leaves the worker — and B completes immediately.
        let pool = EvaluatorPool::new(1);
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            pool: Some(pool.clone()),
            ..Default::default()
        };
        let mut a = StreamSession::new(compiled.clone(), tags.clone(), config.clone());
        let _ = a.feed(b"<bib><book>").unwrap();
        let mut b = StreamSession::new(compiled, tags, config);
        let mut out_b = b.feed(DOC.as_bytes()).unwrap();
        out_b.extend_from_slice(&b.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out_b).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
        // A is still healthy and completes too.
        let mut out_a = a.feed(b"<title>A</title></book></bib>").unwrap();
        out_a.extend_from_slice(&a.finish().unwrap().output);
        assert_eq!(String::from_utf8(out_a).unwrap(), "<r><title>A</title></r>");
        pool.shutdown();
    }

    #[test]
    fn try_feed_reports_busy_when_backpressured_and_recovers() {
        // Identity-ish query: output ≈ input, so an undrained consumer
        // closes the output gate quickly; the engine parks, the tiny
        // input queue fills, and try_feed reports Busy without blocking.
        let (compiled, tags) = compile("<r>{ for $b in /bib/book return $b }</r>");
        let config = SessionConfig {
            input_queue_bytes: 64,
            output_high_water: 8 * 1024, // clamped to STAGE_FLUSH_BYTES
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut doc = String::from("<bib>");
        let mut body = String::new();
        for i in 0..1000 {
            let book = format!("<book><title>Padding title {i}</title></book>");
            body.push_str(&book);
            doc.push_str(&book);
        }
        doc.push_str("</bib>");
        let expected = format!("<r>{body}</r>");
        let mut chunks = doc.as_bytes().chunks(32);
        let mut saw_busy = false;
        let mut pending: Option<&[u8]> = None;
        // Phase 1: feed without draining until the session pushes back.
        for chunk in chunks.by_ref() {
            if !session.try_feed_undrained(chunk).unwrap() {
                saw_busy = true;
                pending = Some(chunk);
                break;
            }
        }
        assert!(saw_busy, "gate closed + full queue must report Busy");
        // Phase 2: drain-and-re-offer until everything is through.
        let mut out = Vec::new();
        let offer = |session: &mut StreamSession, chunk: &[u8], out: &mut Vec<u8>| loop {
            match session.try_feed(chunk).unwrap() {
                TryFeed::Fed(o) => {
                    out.extend_from_slice(&o);
                    break;
                }
                TryFeed::Busy(o) => {
                    out.extend_from_slice(&o);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        };
        if let Some(chunk) = pending {
            offer(&mut session, chunk, &mut out);
        }
        for chunk in chunks {
            offer(&mut session, chunk, &mut out);
        }
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    #[test]
    fn dropping_parked_pooled_session_does_not_block() {
        let budget = Arc::new(MemoryBudget::new(1 << 20));
        let pool = EvaluatorPool::new(1);
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            pool: Some(pool.clone()),
            budget: Some(budget.clone()),
            ..Default::default()
        };
        // Two mid-stream sessions share the single worker; both are
        // parked on need-input. Dropping B must cancel it promptly (its
        // next slice observes the flag) — never wait on A.
        let mut a = StreamSession::new(compiled.clone(), tags.clone(), config.clone());
        let _ = a.feed(b"<bib><book>").unwrap();
        let mut b = StreamSession::new(compiled, tags, config);
        let _ = b.feed(b"<bib><book><title>x</title>").unwrap();
        let start = std::time::Instant::now();
        drop(b);
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "dropping a parked session must be prompt"
        );
        // A is unaffected (it still holds budgeted bytes of its own, so
        // the balance check comes after it finishes).
        let _ = a.feed(b"<title>A</title></book></bib>").unwrap();
        a.finish().unwrap();
        pool.shutdown();
        assert_eq!(budget.used(), 0, "all sessions' bytes reclaimed");
    }

    #[test]
    fn live_stats_visible_mid_stream() {
        let live = Arc::new(LiveBufferStats::default());
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            live_stats: Some(live.clone()),
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        // Feed an unfinished document: the session is still running, yet
        // the live mirror must already show buffered nodes.
        let _ = session.feed(b"<bib><book><title>A</title>").unwrap();
        let mut created = 0;
        for _ in 0..500 {
            created = live
                .nodes_created
                .load(std::sync::atomic::Ordering::Relaxed);
            if created > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(created > 0, "mid-stream sampling sees buffered nodes");
        assert!(!session.is_finished(), "stream is still open");
        let _ = session.feed(b"</book></bib>").unwrap();
        let outcome = session.finish().unwrap();
        let (_, peak_nodes, ..) = live.snapshot();
        assert_eq!(
            peak_nodes, outcome.report.stats.peak_nodes,
            "final mirror agrees with the run report"
        );
    }

    #[test]
    fn engine_buffer_budget_fails_session_cleanly() {
        // A no-GC engine buffers every projected node; with the engine
        // buffer charged against a small budget the document must fail
        // its own session with a clean budget error — not grow unbounded.
        let budget = Arc::new(MemoryBudget::new(4 * 1024));
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            budget: Some(budget.clone()),
            charge_engine_buffer: true,
            engine: gcx_core::EngineOptions {
                gc: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut doc = String::from("<bib>");
        for i in 0..500 {
            doc.push_str(&format!("<book><title>Title number {i}</title></book>"));
        }
        doc.push_str("</bib>");
        let mut failed = None;
        for chunk in doc.as_bytes().chunks(256) {
            match session.feed_blocking(chunk) {
                Ok(_) => {}
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let err = match failed {
            Some(e) => {
                // Queued input stays charged until the session is torn
                // down; reclaim before checking the budget balance.
                drop(session);
                e
            }
            None => session.finish().expect_err("budget must trip"),
        };
        assert!(
            err.to_string().contains("memory budget exceeded"),
            "clean per-session budget error, got: {err}"
        );
        assert_eq!(budget.used(), 0, "I/O reservations reclaimed");
        assert_eq!(budget.engine_used(), 0, "engine reservations reclaimed");
    }

    #[test]
    fn output_cap_fails_never_draining_session() {
        // A consumer that never drains must not grow the session's
        // output without bound. With the hard cap *below* the high-water
        // mark, the gate never parks the engine first: the writer's push
        // trips the cap and fails the session with a clean, attributable
        // error.
        let (compiled, tags) = compile("<r>{ for $b in /bib/book return $b }</r>");
        let config = SessionConfig {
            output_high_water: 64 * 1024,
            output_max_bytes: 32 * 1024,
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut doc = String::from("<bib>");
        for i in 0..4000 {
            doc.push_str(&format!("<book><title>Padding title {i}</title></book>"));
        }
        doc.push_str("</bib>");
        // One oversized feed (admitted alone, drains nothing of note),
        // then never drain again: every `feed`/`drain` call empties the
        // output buffer, so the never-draining consumer is modeled by
        // simply not calling them while the evaluator produces ~170 KB
        // against a 32 KB cap.
        let _ = session.feed(doc.as_bytes()).expect("admitted alone");
        session.close_input();
        // Stop draining entirely; the evaluator must fail the session.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let outcome = loop {
            if let Some(r) = session.take_outcome() {
                break r;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "session did not hit the output cap in time"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let err = outcome.expect_err("never-draining session must fail");
        assert!(
            err.to_string().contains(crate::OUTPUT_CAP_ERROR),
            "got: {err}"
        );
    }

    #[test]
    fn output_gate_parks_never_draining_session_bounded() {
        // With the cap disabled, a never-draining consumer must *park*
        // the session at the high-water mark — bounded backlog, no
        // creeping growth (the old timed-park writer grew ~8 KB per
        // 20 ms park slice; the gate holds the line exactly).
        let budget = Arc::new(MemoryBudget::new(1 << 30));
        let (compiled, tags) = compile("<r>{ for $b in /bib/book return $b }</r>");
        let config = SessionConfig {
            budget: Some(budget.clone()),
            output_high_water: 16 * 1024,
            output_max_bytes: usize::MAX,
            step_budget: 64, // small slices: tight overshoot bound
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut doc = String::from("<bib>");
        for i in 0..2000 {
            doc.push_str(&format!("<book><title>Padding title {i}</title></book>"));
        }
        doc.push_str("</bib>");
        let _ = session.feed(doc.as_bytes()).expect("admitted alone");
        session.close_input();
        // Let the engine run into the gate and park.
        std::thread::sleep(std::time::Duration::from_millis(300));
        assert!(!session.is_finished(), "parked, not finished");
        let used_then = budget.used();
        assert!(used_then > 0, "undrained output is accounted");
        std::thread::sleep(std::time::Duration::from_millis(300));
        assert_eq!(
            budget.used(),
            used_then,
            "parked session must not keep producing (no timed creep)"
        );
        assert!(!session.is_finished());
        session.cancel();
        assert_eq!(budget.used(), 0, "cancel reclaims the backlog");
    }

    #[test]
    fn output_high_water_backpressures_but_draining_consumer_completes() {
        // A consumer that drains (slower than the engine) sees correct,
        // complete output — the high-water mark only paces the engine.
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            output_high_water: 64, // absurdly small: park constantly
            output_max_bytes: usize::MAX,
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut out = Vec::new();
        for chunk in DOC.as_bytes().chunks(16) {
            out.extend_from_slice(&session.feed(chunk).unwrap());
        }
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }

    #[test]
    fn session_metrics_record_lifecycle_and_stages() {
        let metrics = Arc::new(SessionMetrics::new());
        let stage_metrics = Arc::new(EngineStageMetrics::new());
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            metrics: Some(metrics.clone()),
            stage_metrics: Some(stage_metrics.clone()),
            stage_sample_every: 1, // time every pump step: deterministic
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let _ = session.feed(DOC.as_bytes()).unwrap();
        session.finish().unwrap();
        assert_eq!(metrics.started.get(), 1);
        assert_eq!(metrics.completed.get(), 1);
        assert_eq!(metrics.failed.get(), 0);
        assert_eq!(metrics.queue_wait.count(), 1);
        assert_eq!(metrics.run.count(), 1);
        assert_eq!(metrics.total.count(), 1);
        // total covers queue wait + run.
        let total = metrics.total.snapshot();
        let run = metrics.run.snapshot();
        assert!(total.sum_nanos >= run.sum_nanos);
        // The engine timed its stages through the same config.
        assert!(stage_metrics.lex.count() > 0, "lex sampled");
        assert!(stage_metrics.matching.count() > 0, "match sampled");
    }

    #[test]
    fn failed_session_counts_as_failed() {
        let metrics = Arc::new(SessionMetrics::new());
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            metrics: Some(metrics.clone()),
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let _ = session.feed(b"</nope>").unwrap();
        session.finish().unwrap_err();
        assert_eq!(metrics.failed.get(), 1);
        assert_eq!(metrics.completed.get(), 0);
        assert_eq!(metrics.run.count(), 1, "failed runs still measured");
    }

    #[test]
    fn oversized_single_chunk_admitted_alone() {
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            input_queue_bytes: 4, // far smaller than the document
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut out = session.feed(DOC.as_bytes()).unwrap();
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }
}
