//! Push-based streaming sessions over the pull-based GCX engine.
//!
//! The engine ([`GcxEngine`]) is a *pull* evaluator: it blocks on a
//! [`std::io::Read`] whenever query evaluation needs more input. A
//! network service sees the opposite shape — bytes arrive in arbitrary
//! chunks, and callers cannot be blocked while the evaluator thinks. A
//! [`StreamSession`] inverts the control flow:
//!
//! ```text
//!   caller thread                        evaluator thread
//!   ─────────────                        ────────────────
//!   feed(chunk) ──► bounded chunk queue ──► ChunkReader::read
//!                                            │ (GcxEngine pulls)
//!   feed/drain ◄── shared output buffer ◄── SessionWriter::write
//!   finish()   ──► close + join         ──► RunReport (BufferStats)
//! ```
//!
//! The evaluator runs on a dedicated thread; the chunk queue applies
//! backpressure (`feed` blocks once `input_queue_bytes` are pending), and
//! output bytes are handed back incrementally — each `feed`/`drain`
//! returns everything the engine has emitted so far, which the engine
//! produces as early as the stream permits (the GCX property). Errors are
//! isolated per session: a malformed stream kills this session's
//! evaluator and surfaces on the next call, nothing else.
//!
//! ## Session state machine
//!
//! `feed* → (drain | feed)* → finish` — or `cancel` at any point.
//! Dropping an unfinished session cancels it implicitly.

use crate::budget::MemoryBudget;
use crate::ServiceError;
use gcx_core::{CancelFlag, EngineOptions, GcxEngine, RunReport};
use gcx_query::CompiledQuery;
use gcx_xml::TagInterner;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Session tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Maximum bytes of fed-but-unconsumed input queued per session;
    /// `feed` blocks (backpressure) once the queue is full. A single
    /// chunk larger than the bound is admitted alone rather than
    /// deadlocking.
    pub input_queue_bytes: usize,
    /// Engine strategy (GC on by default), including the lexer options
    /// for the input stream (`engine.lexer`).
    pub engine: EngineOptions,
    /// Optional global budget shared with sibling sessions; `feed` fails
    /// with [`ServiceError::BudgetExceeded`] instead of queueing past it.
    pub budget: Option<Arc<MemoryBudget>>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            input_queue_bytes: 256 * 1024,
            engine: EngineOptions::default(),
            budget: None,
        }
    }
}

/// Everything a finished session hands back.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Output bytes not yet drained by earlier `feed`/`drain` calls.
    pub output: Vec<u8>,
    /// The engine's run report: per-session [`gcx_buffer::BufferStats`],
    /// timing, token counts, role accounting.
    pub report: RunReport,
}

struct State {
    /// Fed chunks not yet consumed by the evaluator; the front chunk may
    /// be partially consumed (`head_offset` bytes already read).
    input: VecDeque<Vec<u8>>,
    head_offset: usize,
    /// Total unconsumed input bytes (budget-accounted).
    input_bytes: usize,
    /// No more input will arrive (`finish` called).
    closed: bool,
    /// Abort requested.
    cancelled: bool,
    /// Engine output not yet handed to the caller (budget-accounted).
    output: Vec<u8>,
    /// Set exactly once when the evaluator ends.
    done: Option<Result<RunReport, String>>,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when input arrives or the session closes/cancels.
    data_available: Condvar,
    /// Signaled when the evaluator consumes input or terminates.
    space_available: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned mutex means the evaluator panicked mid-update; the
        // session is already being torn down (DoneGuard), so keep serving
        // the caller rather than propagating the panic.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn set_done(&self, result: Result<RunReport, String>) {
        let mut st = self.lock();
        if st.done.is_none() {
            st.done = Some(result);
        }
        self.data_available.notify_all();
        self.space_available.notify_all();
    }
}

/// Marks the session done even if the evaluator thread panics.
struct DoneGuard(Arc<Shared>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.0
            .set_done(Err("evaluator thread panicked".to_string()));
    }
}

/// The evaluator-side `Read`: pops fed chunks, blocking until data,
/// close, or cancellation.
struct ChunkReader {
    shared: Arc<Shared>,
    budget: Option<Arc<MemoryBudget>>,
}

impl Read for ChunkReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.shared.lock();
        loop {
            if st.cancelled {
                return Err(io::Error::other("session cancelled"));
            }
            if let Some(chunk) = st.input.front() {
                let chunk_len = chunk.len();
                let avail = &chunk[st.head_offset..];
                let n = avail.len().min(buf.len());
                buf[..n].copy_from_slice(&avail[..n]);
                st.head_offset += n;
                if st.head_offset == chunk_len {
                    st.input.pop_front();
                    st.head_offset = 0;
                }
                st.input_bytes -= n;
                if let Some(b) = &self.budget {
                    b.release(n);
                }
                self.shared.space_available.notify_all();
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = self
                .shared
                .data_available
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// The evaluator-side `Write`: appends to the shared output buffer so
/// callers see results incrementally.
///
/// `XmlWriter` emits several tiny writes per tag (`<`, name, `>`); taking
/// the session mutex for each would triple lock traffic for no benefit.
/// Writes are staged in a lock-free local micro-buffer and pushed to the
/// shared buffer on *tag boundaries* — whenever the staged bytes end with
/// `>`, which escaped character data never does — so the lock is taken
/// once per tag while incremental delivery (every complete tag is
/// immediately visible to `feed`/`drain`) is preserved.
struct SessionWriter {
    shared: Arc<Shared>,
    budget: Option<Arc<MemoryBudget>>,
    /// Locally staged bytes not yet pushed to the shared buffer.
    staged: Vec<u8>,
}

/// Safety valve: push even mid-tag once this much is staged (a single
/// enormous text node must not sit invisible in the micro-buffer).
const STAGE_FLUSH_BYTES: usize = 8 * 1024;

impl SessionWriter {
    fn push_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let mut st = self.shared.lock();
        st.output.extend_from_slice(&self.staged);
        if let Some(b) = &self.budget {
            // Soft accounting: an engine mid-emit cannot fail cleanly, so
            // output may transiently overshoot until the caller drains.
            b.force_reserve(self.staged.len());
        }
        self.staged.clear();
    }
}

impl Write for SessionWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.staged.extend_from_slice(buf);
        if self.staged.last() == Some(&b'>') || self.staged.len() >= STAGE_FLUSH_BYTES {
            self.push_staged();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.push_staged();
        Ok(())
    }
}

impl Drop for SessionWriter {
    fn drop(&mut self) {
        // An engine that errors out mid-emit never flushes; hand over
        // whatever was staged so diagnostics see the partial output.
        self.push_staged();
    }
}

/// A push-driven evaluation of one compiled query over one input stream.
/// See the module docs for the control-flow picture.
pub struct StreamSession {
    shared: Arc<Shared>,
    cancel: CancelFlag,
    handle: Option<JoinHandle<()>>,
    input_queue_bytes: usize,
    budget: Option<Arc<MemoryBudget>>,
}

impl StreamSession {
    /// Spawns the evaluator thread for `compiled` over a fresh chunk
    /// queue. `tags` must be (a clone of) the interner the query was
    /// compiled against — [`crate::QueryService`] hands out matching
    /// snapshots; tags the document adds on top stay session-local.
    pub fn new(compiled: Arc<CompiledQuery>, tags: TagInterner, config: SessionConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                input: VecDeque::new(),
                head_offset: 0,
                input_bytes: 0,
                closed: false,
                cancelled: false,
                output: Vec::new(),
                done: None,
            }),
            data_available: Condvar::new(),
            space_available: Condvar::new(),
        });
        let cancel = CancelFlag::new();
        let budget = config.budget.clone();
        let handle = {
            let shared = shared.clone();
            let budget = budget.clone();
            let cancel = cancel.clone();
            let engine_opts = config.engine;
            std::thread::spawn(move || {
                let guard = DoneGuard(shared.clone());
                let mut tags = tags;
                let reader = ChunkReader {
                    shared: shared.clone(),
                    budget: budget.clone(),
                };
                let writer = SessionWriter {
                    shared: shared.clone(),
                    budget,
                    staged: Vec::new(),
                };
                let mut engine = GcxEngine::new(&compiled, &mut tags, reader, writer, engine_opts);
                engine.set_cancel_flag(cancel);
                let result = engine.run().map_err(|e| e.to_string());
                shared.set_done(result);
                drop(guard);
            })
        };
        StreamSession {
            shared,
            cancel,
            handle: Some(handle),
            input_queue_bytes: config.input_queue_bytes,
            budget,
        }
    }

    /// Pushes one input chunk and returns every output byte produced so
    /// far. Blocks while the input queue is full (backpressure). Chunks
    /// fed after the evaluator already completed are discarded, matching
    /// one-shot semantics (the pull engine never reads past the data it
    /// needs). Returns the session's error if evaluation has failed.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<u8>, ServiceError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(done) = &st.done {
                if let Err(msg) = done {
                    return Err(ServiceError::Session(msg.clone()));
                }
                break; // completed: drop the chunk, hand back output
            }
            if chunk.is_empty() {
                break;
            }
            // Admit when there is room — or the queue is empty (a single
            // oversized chunk must not deadlock).
            if st.input_bytes == 0 || st.input_bytes + chunk.len() <= self.input_queue_bytes {
                if let Some(b) = &self.budget {
                    if !b.try_reserve(chunk.len()) {
                        let out = Self::take_output(&mut st, &self.budget);
                        drop(st);
                        return Err(ServiceError::BudgetExceeded {
                            requested: chunk.len(),
                            used: b.used(),
                            limit: b.limit(),
                            drained: out,
                        });
                    }
                }
                st.input_bytes += chunk.len();
                st.input.push_back(chunk.to_vec());
                self.shared.data_available.notify_all();
                break;
            }
            st = self
                .shared
                .space_available
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        Ok(Self::take_output(&mut st, &self.budget))
    }

    /// As [`feed`](Self::feed), but treats a budget rejection as
    /// *backpressure*: the budget drains as sibling evaluators consume
    /// queued input and callers drain output, so this waits and retries
    /// until the chunk fits. A chunk that can **never** fit (larger than
    /// the entire budget) fails immediately instead of livelocking;
    /// callers who want bounded waits should size their chunks at or
    /// below the budget limit.
    pub fn feed_blocking(&mut self, chunk: &[u8]) -> Result<Vec<u8>, ServiceError> {
        let mut output = Vec::new();
        loop {
            match self.feed(chunk) {
                Ok(out) => {
                    output.extend_from_slice(&out);
                    return Ok(output);
                }
                Err(ServiceError::BudgetExceeded {
                    requested,
                    used,
                    limit,
                    drained,
                }) => {
                    output.extend_from_slice(&drained);
                    if requested > limit {
                        return Err(ServiceError::BudgetExceeded {
                            requested,
                            used,
                            limit,
                            drained: output,
                        });
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Takes the output produced so far without feeding anything.
    pub fn drain(&mut self) -> Vec<u8> {
        let mut st = self.shared.lock();
        Self::take_output(&mut st, &self.budget)
    }

    /// True once the evaluator has terminated (successfully or not).
    pub fn is_finished(&self) -> bool {
        self.shared.lock().done.is_some()
    }

    /// Signals end of input, waits for the evaluator to complete, and
    /// returns the remaining output together with the run report (which
    /// carries this session's `BufferStats`).
    pub fn finish(mut self) -> Result<SessionOutcome, ServiceError> {
        {
            let mut st = self.shared.lock();
            st.closed = true;
            self.shared.data_available.notify_all();
        }
        self.join_evaluator();
        let mut st = self.shared.lock();
        let output = Self::take_output(&mut st, &self.budget);
        Self::release_input(&mut st, &self.budget);
        let done = st
            .done
            .take()
            .unwrap_or_else(|| Err("evaluator terminated without a result (bug)".to_string()));
        drop(st);
        match done {
            Ok(report) => Ok(SessionOutcome { output, report }),
            Err(msg) => Err(ServiceError::Session(msg)),
        }
    }

    /// Aborts the session: cancels the engine cooperatively, unblocks the
    /// evaluator, and reclaims all budgeted bytes.
    pub fn cancel(mut self) {
        self.cancel_inner();
    }

    fn cancel_inner(&mut self) {
        self.cancel.cancel();
        {
            let mut st = self.shared.lock();
            st.cancelled = true;
            st.closed = true;
            self.shared.data_available.notify_all();
            self.shared.space_available.notify_all();
        }
        self.join_evaluator();
        let mut st = self.shared.lock();
        let _ = Self::take_output(&mut st, &self.budget);
        Self::release_input(&mut st, &self.budget);
    }

    fn join_evaluator(&mut self) {
        if let Some(handle) = self.handle.take() {
            // A panicking evaluator already set `done` via DoneGuard.
            let _ = handle.join();
        }
    }

    fn take_output(st: &mut State, budget: &Option<Arc<MemoryBudget>>) -> Vec<u8> {
        let out = std::mem::take(&mut st.output);
        if let Some(b) = budget {
            b.release(out.len());
        }
        out
    }

    fn release_input(st: &mut State, budget: &Option<Arc<MemoryBudget>>) {
        if let Some(b) = budget {
            b.release(st.input_bytes);
        }
        st.input.clear();
        st.head_offset = 0;
        st.input_bytes = 0;
    }
}

impl Drop for StreamSession {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.cancel_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_query::compile_default;

    fn compile(query: &str) -> (Arc<CompiledQuery>, TagInterner) {
        let mut tags = TagInterner::new();
        let compiled = compile_default(query, &mut tags).expect("compile");
        (Arc::new(compiled), tags)
    }

    const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
    const DOC: &str = "<bib><book><title>A</title></book><book><title>B</title></book></bib>";

    #[test]
    fn one_chunk_session_matches_one_shot() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let mut out = session.feed(DOC.as_bytes()).unwrap();
        let outcome = session.finish().unwrap();
        out.extend_from_slice(&outcome.output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
        assert_eq!(outcome.report.safety, Some(true));
        assert!(outcome.report.stats.peak_nodes > 0);
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let mut out = Vec::new();
        for b in DOC.as_bytes() {
            out.extend_from_slice(&session.feed(std::slice::from_ref(b)).unwrap());
        }
        let outcome = session.finish().unwrap();
        out.extend_from_slice(&outcome.output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }

    #[test]
    fn output_arrives_incrementally() {
        // After the first book's subtree closes, its title is safely
        // emittable; the session must not sit on it until finish().
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let early = "<bib><book><title>A</title></book>";
        let mut got = session.feed(early.as_bytes()).unwrap();
        // The evaluator runs asynchronously; poll briefly for the bytes.
        for _ in 0..200 {
            if String::from_utf8_lossy(&got).contains("<title>A</title>") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            got.extend_from_slice(&session.drain());
        }
        assert!(
            String::from_utf8_lossy(&got).contains("<title>A</title>"),
            "first result should be emitted before end of input, got {:?}",
            String::from_utf8_lossy(&got)
        );
        let rest = "<book><title>B</title></book></bib>";
        let mut out = got;
        out.extend_from_slice(&session.feed(rest.as_bytes()).unwrap());
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }

    #[test]
    fn malformed_stream_errors_cleanly() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let _ = session.feed(b"<bib><book></bib>").unwrap();
        let err = session.finish().unwrap_err();
        assert!(matches!(err, ServiceError::Session(_)), "got {err}");
    }

    #[test]
    fn error_is_sticky_on_feed() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let _ = session.feed(b"</nope>").unwrap();
        // Wait for the evaluator to hit the error.
        for _ in 0..200 {
            if session.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(session.feed(b"<more/>").is_err());
    }

    #[test]
    fn cancel_unblocks_and_reclaims_budget() {
        let budget = Arc::new(MemoryBudget::new(1 << 20));
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            budget: Some(budget.clone()),
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let _ = session.feed(b"<bib><book>").unwrap();
        session.cancel();
        assert_eq!(budget.used(), 0, "all bytes returned to the budget");
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let (compiled, tags) = compile(QUERY);
        let mut session = StreamSession::new(compiled, tags, SessionConfig::default());
        let _ = session.feed(b"<bib>").unwrap();
        drop(session); // must join the evaluator, not leak it blocked
    }

    #[test]
    fn budget_exceeded_surfaces() {
        let budget = Arc::new(MemoryBudget::new(4));
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            budget: Some(budget.clone()),
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let err = session.feed(b"<bib><book><title>A</title>").unwrap_err();
        assert!(matches!(err, ServiceError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn oversized_single_chunk_admitted_alone() {
        let (compiled, tags) = compile(QUERY);
        let config = SessionConfig {
            input_queue_bytes: 4, // far smaller than the document
            ..Default::default()
        };
        let mut session = StreamSession::new(compiled, tags, config);
        let mut out = session.feed(DOC.as_bytes()).unwrap();
        out.extend_from_slice(&session.finish().unwrap().output);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<r><title>A</title><title>B</title></r>"
        );
    }
}
