//! Session lifecycle metrics: queue wait, run time, outcome counters.
//!
//! One shared [`SessionMetrics`] is installed into every session a
//! server opens (via [`crate::SessionConfig::metrics`]); recording is
//! wait-free and allocation-free, so the evaluator's hot path pays a
//! handful of relaxed atomic ops per *session*, not per event.
//!
//! The three phases of a session's life:
//!
//! ```text
//!   StreamSession::new ──► pool queue ──► evaluator job runs ──► done
//!   └──────── queue_wait ────────────┘└───────── run ─────────┘
//!   └──────────────────────── total ──────────────────────────┘
//! ```
//!
//! `queue_wait` is where pool saturation shows up: with a dedicated
//! thread per session it is spawn latency (microseconds); with a
//! saturated [`crate::EvaluatorPool`] it is how long sessions sit queued
//! behind running evaluators. Pool *occupancy* itself is observable
//! directly via [`crate::EvaluatorPool::queued`] / `active` — gauges,
//! not histograms, so they live with the pool rather than here.

use gcx_obs::{Counter, LatencyHistogram};

/// Wait-free session lifecycle metrics; see module docs.
#[derive(Debug, Default)]
pub struct SessionMetrics {
    /// Session creation → evaluator job start (pool queue time).
    pub queue_wait: LatencyHistogram,
    /// Evaluator job start → evaluator done (engine wall time).
    pub run: LatencyHistogram,
    /// Session creation → evaluator done.
    pub total: LatencyHistogram,
    /// Evaluator jobs that began executing.
    pub started: Counter,
    /// Sessions whose evaluation completed successfully.
    pub completed: Counter,
    /// Sessions whose evaluation failed (malformed stream, budget, cap).
    pub failed: Counter,
    /// Sessions cancelled before their evaluator ever ran.
    pub cancelled_queued: Counter,
}

impl SessionMetrics {
    /// Zeroed metrics (const, usable in statics).
    pub const fn new() -> Self {
        SessionMetrics {
            queue_wait: LatencyHistogram::new(),
            run: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            started: Counter::new(),
            completed: Counter::new(),
            failed: Counter::new(),
            cancelled_queued: Counter::new(),
        }
    }

    /// `(phase name, histogram)` pairs for renderers.
    pub fn phases(&self) -> [(&'static str, &LatencyHistogram); 3] {
        [
            ("queue_wait", &self.queue_wait),
            ("run", &self.run),
            ("total", &self.total),
        ]
    }
}
