//! Global memory budgeting for concurrent sessions.
//!
//! A [`MemoryBudget`] bounds the *service-owned* bytes across all
//! sessions: queued input chunks plus produced-but-undrained output. The
//! GCX buffer tree itself is already minimized by the engine (that is the
//! point of the paper); the budget guards the part the service adds on
//! top. Input reservations are **hard** — [`MemoryBudget::try_reserve`]
//! fails and `feed` surfaces [`crate::ServiceError::BudgetExceeded`] —
//! while output accounting is **soft** ([`MemoryBudget::force_reserve`]):
//! an evaluator thread mid-write cannot fail cleanly, so output may
//! transiently overshoot the limit until the caller drains it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Byte budget shared by every session of one service.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    used: AtomicUsize,
    /// Engine-buffer bytes charged through the `BufferAccounting` hook —
    /// an **independent** account with its own `≤ limit` bound. Kept
    /// apart from `used` so queued I/O and undrained output only ever
    /// *backpressure* sessions while engine buffering alone decides the
    /// hard per-session failure (see the trait impl below for why
    /// coupling them livelocks).
    engine_used: AtomicUsize,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryBudget {
            limit,
            used: AtomicUsize::new(0),
            engine_used: AtomicUsize::new(0),
        }
    }

    /// Engine-buffer bytes currently charged (independent of
    /// [`MemoryBudget::used`], which covers queued I/O and undrained
    /// output).
    pub fn engine_used(&self) -> usize {
        self.engine_used.load(Ordering::Relaxed)
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently accounted for.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `n` bytes; `false` when that would exceed the
    /// limit (nothing is reserved in that case).
    pub fn try_reserve(&self, n: usize) -> bool {
        if gcx_faults::fire("budget.reject") {
            return false;
        }
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(n) else {
                return false;
            };
            if next > self.limit {
                return false;
            }
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Reserves `n` bytes unconditionally (output accounting; may push
    /// usage past the limit until the caller drains).
    pub fn force_reserve(&self, n: usize) {
        self.used.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns `n` bytes to the budget.
    pub fn release(&self, n: usize) {
        let prev = self.used.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "budget release underflow: {prev} - {n}");
    }
}

/// Lets the engine buffer itself charge against the same global budget
/// that bounds queued I/O: with [`crate::SessionConfig::charge_engine_buffer`]
/// enabled, buffered nodes and text-arena bytes are **hard** reservations —
/// documents whose aggregate buffering genuinely needs more than the
/// budget fail their sessions cleanly instead of growing without bound.
///
/// Engine reservations are judged against a dedicated sub-counter
/// (`engine_used ≤ limit`) that is **independent of the main counter**.
/// Charging the main counter too would couple the two the wrong way
/// round: a session whose engine legitimately buffers near the limit
/// would starve its own *input admission* (input can only drain the
/// engine by being admitted, the engine can only release budget by
/// consuming input — a livelock). The service therefore holds at most
/// `limit` bytes of queued I/O **plus** `limit` bytes of engine buffer;
/// both bounds are hard, and `/stats` reports the two counters
/// side by side.
impl gcx_buffer::BufferAccounting for MemoryBudget {
    fn reserve(&self, bytes: usize) -> bool {
        let mut current = self.engine_used.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(bytes) else {
                return false;
            };
            if next > self.limit {
                return false;
            }
            match self.engine_used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        true
    }

    fn release(&self, bytes: usize) {
        let prev = self.engine_used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "engine release underflow: {prev} - {bytes}");
    }

    fn used(&self) -> usize {
        self.engine_used()
    }

    fn limit(&self) -> usize {
        MemoryBudget::limit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let b = MemoryBudget::new(100);
        assert!(b.try_reserve(60));
        assert!(b.try_reserve(40));
        assert!(!b.try_reserve(1), "limit reached");
        b.release(50);
        assert!(b.try_reserve(50));
        assert_eq!(b.used(), 100);
        b.release(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn force_reserve_overshoots() {
        let b = MemoryBudget::new(10);
        b.force_reserve(25);
        assert_eq!(b.used(), 25);
        assert!(!b.try_reserve(1));
        b.release(25);
        assert!(b.try_reserve(10));
    }

    #[test]
    fn engine_account_is_independent_of_main_counter() {
        use gcx_buffer::BufferAccounting;
        let b = MemoryBudget::new(100);
        // I/O filling the whole budget must not block engine reservations.
        assert!(b.try_reserve(100));
        assert!(
            BufferAccounting::reserve(&b, 60),
            "engine judged on its own"
        );
        assert_eq!(b.engine_used(), 60);
        assert_eq!(b.used(), 100, "main counter untouched by engine charges");
        // The engine alone is capped at the limit.
        assert!(!BufferAccounting::reserve(&b, 41));
        assert!(BufferAccounting::reserve(&b, 40));
        // And engine buffering must never starve I/O admission: once the
        // I/O side drains, new input fits regardless of engine usage.
        b.release(50);
        assert!(b.try_reserve(50), "engine at limit, I/O still admits");
        BufferAccounting::release(&b, 100);
        b.release(100);
        assert_eq!(b.engine_used(), 0);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_limit() {
        use std::sync::Arc;
        let b = Arc::new(MemoryBudget::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut held = 0usize;
                for _ in 0..1000 {
                    if b.try_reserve(7) {
                        held += 7;
                        assert!(b.used() <= 1000);
                    }
                    if held >= 70 {
                        b.release(held);
                        held = 0;
                    }
                }
                b.release(held);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.used(), 0);
    }
}
