//! Global memory budgeting for concurrent sessions.
//!
//! A [`MemoryBudget`] bounds the *service-owned* bytes across all
//! sessions: queued input chunks plus produced-but-undrained output. The
//! GCX buffer tree itself is already minimized by the engine (that is the
//! point of the paper); the budget guards the part the service adds on
//! top. Input reservations are **hard** — [`MemoryBudget::try_reserve`]
//! fails and `feed` surfaces [`crate::ServiceError::BudgetExceeded`] —
//! while output accounting is **soft** ([`MemoryBudget::force_reserve`]):
//! an evaluator thread mid-write cannot fail cleanly, so output may
//! transiently overshoot the limit until the caller drains it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Byte budget shared by every session of one service.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    used: AtomicUsize,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryBudget {
            limit,
            used: AtomicUsize::new(0),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently accounted for.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `n` bytes; `false` when that would exceed the
    /// limit (nothing is reserved in that case).
    pub fn try_reserve(&self, n: usize) -> bool {
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(n) else {
                return false;
            };
            if next > self.limit {
                return false;
            }
            match self.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Reserves `n` bytes unconditionally (output accounting; may push
    /// usage past the limit until the caller drains).
    pub fn force_reserve(&self, n: usize) {
        self.used.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns `n` bytes to the budget.
    pub fn release(&self, n: usize) {
        let prev = self.used.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "budget release underflow: {prev} - {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let b = MemoryBudget::new(100);
        assert!(b.try_reserve(60));
        assert!(b.try_reserve(40));
        assert!(!b.try_reserve(1), "limit reached");
        b.release(50);
        assert!(b.try_reserve(50));
        assert_eq!(b.used(), 100);
        b.release(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn force_reserve_overshoots() {
        let b = MemoryBudget::new(10);
        b.force_reserve(25);
        assert_eq!(b.used(), 25);
        assert!(!b.try_reserve(1));
        b.release(25);
        assert!(b.try_reserve(10));
    }

    #[test]
    fn concurrent_reservations_never_exceed_limit() {
        use std::sync::Arc;
        let b = Arc::new(MemoryBudget::new(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                let mut held = 0usize;
                for _ in 0..1000 {
                    if b.try_reserve(7) {
                        held += 7;
                        assert!(b.used() <= 1000);
                    }
                    if held >= 70 {
                        b.release(held);
                        held = 0;
                    }
                }
                b.release(held);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.used(), 0);
    }
}
