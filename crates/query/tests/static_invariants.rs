//! Static (compile-time) invariants over a corpus of realistic queries,
//! including all five benchmark queries: the rewriting must reference
//! every allocated role in exactly one signOff statement, never under an
//! if, and the projection tree must carry exactly the non-eliminated
//! roles.

use gcx_query::signoff::{no_signoff_under_if, signoff_roles};
use gcx_query::{compile, CompileOptions, Expr};
use gcx_xml::TagInterner;

const XMARK_QUERIES: &[&str] = &[
    // Q1
    r#"<q1>{ for $p in /site/people/person return
        if ($p/id = "person0") then $p/name/text() else () }</q1>"#,
    // Q6
    r#"<q6>{ for $b in /site/regions return for $i in $b//item return $i/name }</q6>"#,
    // Q8
    r#"<q8>{ for $p in /site/people/person return
        <item>{ ($p/name,
          for $t in /site/closed_auctions/closed_auction return
            for $b in $t/buyer return
              if ($b/person = $p/id) then $t/price else ()) }</item> }</q8>"#,
    // Q13
    r#"<q13>{ for $i in /site/regions/australia/item return
        <item2>{ ($i/name, $i/description) }</item2> }</q13>"#,
    // Q20
    r#"<q20>{ for $p in /site/people/person return
        ((for $f in $p/profile return
           (if ($f/income >= 100000) then <preferred>{ $f/income }</preferred> else (),
            if ($f/income < 100000 and $f/income >= 30000) then <standard>{ $f/income }</standard> else (),
            if ($f/income < 30000) then <challenge>{ $f/income }</challenge> else ())),
         if (not(exists($p/profile))) then <na>{ $p/name }</na> else ()) }</q20>"#,
    // The paper's running examples.
    r#"<r>{ for $bib in /bib return
        ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
         for $b in $bib/book return $b/title) }</r>"#,
    "<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>",
    "<q>{ for $a in //a return <a>{ for $b in $a//b return <b/> }</a> }</q>",
];

fn check(query: &str, opts: CompileOptions) {
    let mut tags = TagInterner::new();
    let c = compile(query, &mut tags, opts).unwrap_or_else(|e| panic!("{query}: {e}"));
    // 1. Every allocated role is signed off exactly once (statically).
    let mut in_signoffs = signoff_roles(&c.rewritten.body);
    in_signoffs.sort();
    in_signoffs.dedup();
    let mut allocated: Vec<_> = c.roles.roles().collect();
    // Eliminated variable roles are allocated but cleared; they must not
    // appear in signOffs nor in the projection tree.
    let live: Vec<_> = c
        .projection
        .tree
        .ids()
        .filter_map(|i| c.projection.tree.role(i))
        .collect();
    for r in &in_signoffs {
        assert!(live.contains(r), "signOff for a role not in the tree");
    }
    allocated.retain(|r| live.contains(r));
    allocated.sort();
    assert_eq!(
        in_signoffs, allocated,
        "signOff coverage mismatch for {query}"
    );
    // 2. No signOff under an if.
    assert!(no_signoff_under_if(&c.rewritten.body), "{query}");
    // 3. Projection-tree roles are unique.
    let mut uniq = live.clone();
    uniq.sort();
    uniq.dedup();
    assert_eq!(uniq.len(), live.len(), "duplicate rπ in {query}");
    // 4. Aggregates are a subset of tree roles.
    for a in &c.projection.aggregates {
        assert!(live.contains(a));
    }
}

#[test]
fn corpus_default_options() {
    for q in XMARK_QUERIES {
        check(q, CompileOptions::default());
    }
}

#[test]
fn corpus_plain_options() {
    for q in XMARK_QUERIES {
        check(q, CompileOptions::plain());
    }
}

#[test]
fn corpus_single_toggles() {
    for q in XMARK_QUERIES {
        for opts in [
            CompileOptions {
                early_updates: false,
                ..CompileOptions::default()
            },
            CompileOptions {
                redundant_role_elimination: false,
                ..CompileOptions::default()
            },
            CompileOptions {
                aggregate_roles: false,
                ..CompileOptions::default()
            },
            CompileOptions {
                practical_ifpush: false,
                ..CompileOptions::default()
            },
        ] {
            check(q, opts);
        }
    }
}

/// The rewritten benchmark queries contain no for-loop under an if
/// (if-pushdown postcondition) even in full (non-practical) mode.
#[test]
fn ifpush_postcondition_on_corpus() {
    for q in XMARK_QUERIES {
        let mut tags = TagInterner::new();
        let c = compile(
            q,
            &mut tags,
            CompileOptions {
                practical_ifpush: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        fn no_for_under_if(e: &Expr, under: bool) -> bool {
            match e {
                Expr::For { body, .. } => !under && no_for_under_if(body, false),
                Expr::If {
                    then_branch,
                    else_branch,
                    ..
                } => no_for_under_if(then_branch, true) && no_for_under_if(else_branch, true),
                Expr::Element { content, .. } => no_for_under_if(content, under),
                Expr::Sequence(items) => items.iter().all(|i| no_for_under_if(i, under)),
                _ => true,
            }
        }
        assert!(no_for_under_if(&c.rewritten.body, false), "{q}");
    }
}
