//! End-to-end query compilation: parse → early updates → analysis →
//! redundant-role elimination → if-pushdown → signOff insertion →
//! projection-tree derivation.
//!
//! The output bundles everything the engines need: the normalized query
//! for oracle evaluation, the rewritten query for GCX, the projection
//! tree, and the role catalog.

use crate::ast::Query;
use crate::deps::{collect_deps, DepTable};
use crate::ifpush::{no_for_under_if, push_ifs};
use crate::optimize::{early_updates, eliminate_redundant_roles};
use crate::parser::{parse, ParseError};
use crate::projection::{build_projection, Projection};
use crate::signoff::{insert_signoffs, no_signoff_under_if};
use crate::vartree::{analyze, AnalysisError, VarAnalysis};
use gcx_projection::{Role, RoleCatalog};
use gcx_xml::TagInterner;
use std::fmt;

/// Compilation options (the §6 optimizations and the practical if-pushdown
/// mode). Defaults match the paper's prototype: "implemented exactly as
/// described in this paper", i.e. all optimizations of §6 enabled.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// §6 "Early Updates".
    pub early_updates: bool,
    /// §6 "Elimination of Redundant Roles".
    pub redundant_role_elimination: bool,
    /// §6 "Aggregate Roles".
    pub aggregate_roles: bool,
    /// §3 "In practice, we might decide to process only those
    /// if-expressions with a for-loop as a subexpression."
    pub practical_ifpush: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            early_updates: true,
            redundant_role_elimination: true,
            aggregate_roles: true,
            practical_ifpush: true,
        }
    }
}

impl CompileOptions {
    /// Everything off — the unoptimized §4/§5 pipeline.
    pub fn plain() -> Self {
        CompileOptions {
            early_updates: false,
            redundant_role_elimination: false,
            aggregate_roles: false,
            practical_ifpush: true,
        }
    }
}

/// Compilation errors.
#[derive(Debug)]
pub enum CompileError {
    Parse(ParseError),
    Analysis(AnalysisError),
    /// An internal rewriting postcondition failed (bug).
    Internal(&'static str),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Analysis(e) => write!(f, "{e}"),
            CompileError::Internal(s) => write!(f, "internal compiler error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<AnalysisError> for CompileError {
    fn from(e: AnalysisError) -> Self {
        CompileError::Analysis(e)
    }
}

/// A fully compiled query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The normalized query as parsed (oracle semantics; no signOffs).
    pub original: Query,
    /// The rewritten query: if-pushed, with signOff statements.
    pub rewritten: Query,
    /// The projection artifacts (tree, per-variable nodes, aggregates).
    pub projection: Projection,
    /// Role catalog (origins for tracing).
    pub roles: RoleCatalog,
    /// Variable analysis (tree, straightness, fsa).
    pub analysis: VarAnalysis,
    /// Dependency table (with post-elimination var roles).
    pub deps: DepTable,
    /// The options used.
    pub options: CompileOptions,
}

impl CompiledQuery {
    /// Convenience: is `role` aggregate?
    pub fn is_aggregate(&self, role: Role) -> bool {
        self.projection.aggregates.contains(&role)
    }
}

/// Compiles a query with the given options.
pub fn compile(
    source: &str,
    tags: &mut TagInterner,
    options: CompileOptions,
) -> Result<CompiledQuery, CompileError> {
    let original = parse(source, tags)?;
    let mut work = original.clone();
    if options.early_updates {
        early_updates(&mut work);
    }
    let analysis = analyze(&work)?;
    let mut roles = RoleCatalog::new();
    let mut deps = collect_deps(&work, tags, &mut roles);
    if options.redundant_role_elimination {
        eliminate_redundant_roles(&work, &analysis, &mut deps);
    }
    work.body = push_ifs(work.body, options.practical_ifpush);
    if !no_for_under_if(&work.body) {
        return Err(CompileError::Internal("if-pushdown left a for under an if"));
    }
    let rewritten = insert_signoffs(&work, &analysis, &deps);
    if !no_signoff_under_if(&rewritten.body) {
        return Err(CompileError::Internal("a signOff ended up under an if"));
    }
    let projection = build_projection(&analysis, &deps, options.aggregate_roles);
    Ok(CompiledQuery {
        original,
        rewritten,
        projection,
        roles,
        analysis,
        deps,
        options,
    })
}

/// Compiles with default options.
pub fn compile_default(
    source: &str,
    tags: &mut TagInterner,
) -> Result<CompiledQuery, CompileError> {
    compile(source, tags, CompileOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::pretty_query;

    const INTRO: &str = r#"<r>{ for $bib in /bib return
      ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
       for $b in $bib/book return $b/title) }</r>"#;

    #[test]
    fn compile_intro_default() {
        let mut tags = TagInterner::new();
        let c = compile_default(INTRO, &mut tags).expect("compiles");
        // Early updates add one variable ($out) for $b/title.
        assert!(c.rewritten.vars.len() > c.original.vars.len());
        // Projection tree exists and has roles.
        assert!(c.projection.tree.len() > 4);
        // With redundant-role elimination, $x and $b lose their roles.
        let s = pretty_query(&c.rewritten, &tags);
        assert!(!s.contains("signOff($x, "), "r3-style update gone: {s}");
        assert!(s.contains("signOff($bib, "), "$bib keeps its update: {s}");
    }

    /// Fig. 12: with redundant roles eliminated, strictly fewer roles are
    /// assigned than in the plain pipeline.
    #[test]
    fn fig12_fewer_roles_with_elimination() {
        let mut tags = TagInterner::new();
        let plain = compile(INTRO, &mut tags, CompileOptions::plain()).unwrap();
        let mut tags2 = TagInterner::new();
        let opt = compile(INTRO, &mut tags2, CompileOptions::default()).unwrap();
        let count_roles = |c: &CompiledQuery| {
            c.projection
                .tree
                .ids()
                .filter(|&i| c.projection.tree.role(i).is_some())
                .count()
        };
        assert!(count_roles(&opt) < count_roles(&plain));
    }

    #[test]
    fn plain_options_disable_everything() {
        let mut tags = TagInterner::new();
        let c = compile(INTRO, &mut tags, CompileOptions::plain()).unwrap();
        assert!(c.projection.aggregates.is_empty());
        let s = pretty_query(&c.rewritten, &tags);
        assert!(s.contains("signOff($x, "), "own-role update present: {s}");
        assert!(!s.contains("$out"), "no early-update variables: {s}");
    }

    #[test]
    fn parse_errors_surface() {
        let mut tags = TagInterner::new();
        assert!(matches!(
            compile_default("<r>{ $oops }</r>", &mut tags),
            Err(CompileError::Parse(_))
        ));
    }

    #[test]
    fn aggregates_listed() {
        let mut tags = TagInterner::new();
        let c = compile_default("<r>{ for $x in /a return $x }</r>", &mut tags).unwrap();
        assert_eq!(c.projection.aggregates.len(), 1);
        assert!(c.is_aggregate(c.projection.aggregates[0]));
    }

    #[test]
    fn join_query_compiles() {
        let mut tags = TagInterner::new();
        let c = compile_default(
            r#"<r>{ for $p in /site/person return
                for $t in /site/sale return
                if ($t/buyer = $p/id) then <hit>{ $p/name }</hit> else () }</r>"#,
            &mut tags,
        )
        .expect("join compiles");
        // $t is not straight: enclosed by $p's loop chain but sourced at a
        // tmp under root… actually both source chains go through tmps; the
        // key assertion is that compilation succeeds and signOffs exist.
        let s = pretty_query(&c.rewritten, &tags);
        assert!(s.contains("signOff("));
    }
}
