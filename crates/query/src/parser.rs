//! Recursive-descent parser for the XQ surface syntax.
//!
//! The parser folds the paper's normalization steps in (§3, "many
//! syntactically richer fragments … can be rewritten into our fragment"):
//!
//! * absolute paths `/a`, `//a` become steps from `$root`;
//! * multi-step paths in `for` sources and output positions are rewritten
//!   to nested single-step for-loops (the adaptation the paper applied to
//!   the XMark queries);
//! * `where` clauses become `if`-then-else;
//! * condition paths must already be single-step (exactly Fig. 6) — a
//!   clear error explains the manual rewrite otherwise.

use crate::ast::{Axis, Cond, Expr, NodeTest, Query, RelOp, Step, VarId, VarTable};
use crate::lexer::{lex, Spanned, Tok};
use gcx_xml::TagInterner;
use std::fmt;

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            pos: e.pos,
            detail: e.detail,
        }
    }
}

/// Parses a complete XQ query.
pub fn parse(input: &str, tags: &mut TagInterner) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        i: 0,
        tags,
        vars: VarTable::new(),
        scope: Vec::new(),
    };
    p.parse_query()
}

/// What a surface name resolves to: a for-bound variable, or a path
/// alias introduced by a (removed) let-expression.
#[derive(Clone)]
enum Binding {
    Var(VarId),
    /// `let $x := $src/steps…` — inlined at every use (the paper: "in
    /// many practical queries, let-expressions can be removed \[10\]").
    Alias(VarId, Vec<Step>),
}

struct Parser<'t> {
    toks: Vec<Spanned>,
    i: usize,
    tags: &'t mut TagInterner,
    vars: VarTable,
    scope: Vec<(String, Binding)>,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> usize {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, detail: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.pos(),
            detail: detail.into(),
        })
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found '{}'", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Name(n) if n == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected '{kw}', found '{other}'")),
        }
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.clone())
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let tag = match self.bump() {
            Tok::TagOpen(name) => self.tags.intern(&name),
            other => {
                return self.err(format!(
                    "a query must start with an element constructor, found '{other}'"
                ))
            }
        };
        let body = match self.peek() {
            Tok::SelfClose => {
                self.bump();
                Expr::Empty
            }
            Tok::RAngle => {
                self.bump();
                self.parse_constructor_content(tag)?
            }
            other => return self.err(format!("expected '>' or '/>', found '{other}'")),
        };
        if self.peek() != &Tok::Eof {
            return self.err("trailing input after the query");
        }
        Ok(Query {
            root_tag: tag,
            body,
            vars: std::mem::take(&mut self.vars),
        })
    }

    /// Content of `<tag> … </tag>`: nested constructors and `{ expr }`
    /// blocks, joined as a sequence.
    fn parse_constructor_content(&mut self, tag: gcx_xml::TagId) -> Result<Expr, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::TagOpen(_) => items.push(self.parse_constructor()?),
                Tok::LBrace => {
                    self.bump();
                    if self.peek() == &Tok::RBrace {
                        self.bump();
                        continue;
                    }
                    items.push(self.parse_expr()?);
                    self.expect(&Tok::RBrace, "'}'")?;
                }
                Tok::TagClose(name) => {
                    let id = self.tags.intern(&name);
                    if id != tag {
                        return self.err(format!(
                            "mismatched constructor: expected </{}>, found </{}>",
                            self.tags.name(tag),
                            name
                        ));
                    }
                    self.bump();
                    self.expect(&Tok::RAngle, "'>'")?;
                    return Ok(Expr::seq(items));
                }
                other => {
                    return self.err(format!(
                        "expected nested constructor, '{{' or closing tag, found '{other}'"
                    ))
                }
            }
        }
    }

    fn parse_constructor(&mut self) -> Result<Expr, ParseError> {
        let tag = match self.bump() {
            Tok::TagOpen(name) => self.tags.intern(&name),
            other => return self.err(format!("expected constructor, found '{other}'")),
        };
        match self.peek() {
            Tok::SelfClose => {
                self.bump();
                Ok(Expr::Element {
                    tag,
                    content: Box::new(Expr::Empty),
                })
            }
            Tok::RAngle => {
                self.bump();
                let content = self.parse_constructor_content(tag)?;
                Ok(Expr::Element {
                    tag,
                    content: Box::new(content),
                })
            }
            other => self.err(format!("expected '>' or '/>', found '{other}'")),
        }
    }

    /// `expr := single (',' single)*`
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut items = vec![self.parse_single()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            items.push(self.parse_single()?);
        }
        Ok(Expr::seq(items))
    }

    fn parse_single(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                if self.peek() == &Tok::RParen {
                    self.bump();
                    return Ok(Expr::Empty);
                }
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::TagOpen(_) => self.parse_constructor(),
            Tok::Name(kw) if kw == "for" => self.parse_for(),
            Tok::Name(kw) if kw == "if" => self.parse_if(),
            Tok::Name(kw) if kw == "let" => self.parse_let(),
            Tok::Var(_) | Tok::Slash | Tok::DSlash => {
                let (source, steps) = self.parse_path()?;
                Ok(self.path_to_output(source, steps))
            }
            other => self.err(format!("expected an expression, found '{other}'")),
        }
    }

    fn parse_for(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("for")?;
        let var_name = match self.bump() {
            Tok::Var(n) => n,
            other => return self.err(format!("expected a variable after 'for', found '{other}'")),
        };
        self.expect_kw("in")?;
        let (source, steps) = self.parse_path()?;
        if steps.is_empty() {
            return self.err("a for-loop source must contain at least one step");
        }
        // Optional where clause, then return.
        let cond = match self.peek() {
            Tok::Name(n) if n == "where" => {
                // `where` may reference the loop variable: bind it first.
                // We must know the VarId before parsing the condition, so
                // allocate the whole chain now.
                None::<Cond> // placeholder — handled below
            }
            _ => None,
        };
        let _ = cond;
        // Build the nested chain: intermediates for steps[..k-1], the user
        // variable for the last step.
        let mut chain: Vec<(VarId, VarId, Step)> = Vec::new(); // (var, source, step)
        let mut src = source;
        for (idx, st) in steps.iter().enumerate() {
            let v = if idx + 1 == steps.len() {
                self.vars.fresh(&var_name)
            } else {
                self.vars.fresh("tmp")
            };
            chain.push((v, src, *st));
            src = v;
        }
        let user_var = chain.last().expect("nonempty").0;
        self.scope.push((var_name.clone(), Binding::Var(user_var)));
        let where_cond = match self.peek() {
            Tok::Name(n) if n == "where" => {
                self.bump();
                Some(self.parse_cond()?)
            }
            _ => None,
        };
        self.expect_kw("return")?;
        let body = self.parse_single()?;
        self.scope.pop();
        let mut acc = match where_cond {
            Some(c) => Expr::If {
                cond: c,
                then_branch: Box::new(body),
                else_branch: Box::new(Expr::Empty),
            },
            None => body,
        };
        for (v, s, st) in chain.into_iter().rev() {
            acc = Expr::For {
                var: v,
                source: s,
                step: st,
                body: Box::new(acc),
            };
        }
        Ok(acc)
    }

    /// `let $x := <path> return e` — removed by inlining the path at
    /// every use of `$x`, the normalization the paper cites from \[10\].
    /// Only path-valued lets are expressible in the fragment; anything
    /// else gets a targeted error.
    fn parse_let(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("let")?;
        let name = match self.bump() {
            Tok::Var(n) => n,
            other => return self.err(format!("expected a variable after 'let', found '{other}'")),
        };
        self.expect(&Tok::Assign, "':=' in let")?;
        match self.peek() {
            Tok::Var(_) | Tok::Slash | Tok::DSlash => {}
            other => {
                return self.err(format!(
                    "only path-valued let-expressions can be inlined into the XQ \
                     fragment (found '{other}'); rewrite the query without let"
                ))
            }
        }
        let (source, steps) = self.parse_path()?;
        self.expect_kw("return")?;
        self.scope.push((name, Binding::Alias(source, steps)));
        let body = self.parse_single()?;
        self.scope.pop();
        Ok(body)
    }

    fn parse_if(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("if")?;
        let cond = self.parse_cond()?;
        self.expect_kw("then")?;
        let then_branch = self.parse_single()?;
        self.expect_kw("else")?;
        let else_branch = self.parse_single()?;
        Ok(Expr::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    /// Turns a parsed output path into AST: zero steps → `$x`, one step →
    /// `$x/step`, more → nested for-loops over the prefix.
    fn path_to_output(&mut self, source: VarId, steps: Vec<Step>) -> Expr {
        match steps.len() {
            0 => Expr::VarRef(source),
            1 => Expr::PathOutput {
                var: source,
                step: steps[0],
            },
            _ => {
                let mut src = source;
                let mut loops: Vec<(VarId, VarId, Step)> = Vec::new();
                for st in &steps[..steps.len() - 1] {
                    let v = self.vars.fresh("tmp");
                    loops.push((v, src, *st));
                    src = v;
                }
                let mut acc = Expr::PathOutput {
                    var: src,
                    step: *steps.last().expect("nonempty"),
                };
                for (v, s, st) in loops.into_iter().rev() {
                    acc = Expr::For {
                        var: v,
                        source: s,
                        step: st,
                        body: Box::new(acc),
                    };
                }
                acc
            }
        }
    }

    /// `path := $var steps | /steps | //steps` — returns source and steps.
    fn parse_path(&mut self) -> Result<(VarId, Vec<Step>), ParseError> {
        let (source, mut steps) = match self.peek().clone() {
            Tok::Var(name) => {
                self.bump();
                if name == "root" {
                    (VarId::ROOT, Vec::new())
                } else {
                    match self.lookup(&name) {
                        Some(Binding::Var(v)) => (v, Vec::new()),
                        Some(Binding::Alias(src, prefix)) => (src, prefix),
                        None => return self.err(format!("unbound variable ${name}")),
                    }
                }
            }
            Tok::Slash | Tok::DSlash => (VarId::ROOT, Vec::new()),
            other => return self.err(format!("expected a path, found '{other}'")),
        };
        loop {
            let axis_from_slash = match self.peek() {
                Tok::Slash => Some(Axis::Child),
                Tok::DSlash => Some(Axis::Descendant),
                _ => None,
            };
            let Some(mut axis) = axis_from_slash else {
                break;
            };
            self.bump();
            // Optional explicit axis: child:: / descendant::.
            if let Tok::Name(n) = self.peek().clone() {
                if (n == "child" || n == "descendant")
                    && self.toks.get(self.i + 1).map(|s| &s.tok) == Some(&Tok::ColonColon)
                {
                    if axis == Axis::Descendant {
                        return self.err("'//' cannot be combined with an explicit axis");
                    }
                    axis = if n == "child" {
                        Axis::Child
                    } else {
                        Axis::Descendant
                    };
                    self.bump();
                    self.bump();
                }
            }
            let test = match self.bump() {
                Tok::Star => NodeTest::Star,
                Tok::Name(n) if n == "text" && self.peek() == &Tok::LParen => {
                    self.bump();
                    self.expect(&Tok::RParen, "')'")?;
                    NodeTest::Text
                }
                Tok::Name(n) if n == "node" && self.peek() == &Tok::LParen => {
                    return self.err(
                        "node() is not part of the XQ output grammar (it only appears in \
                         projection paths)",
                    )
                }
                Tok::Name(n) => NodeTest::Tag(self.tags.intern(&n)),
                other => return self.err(format!("expected a node test, found '{other}'")),
            };
            steps.push(Step { axis, test });
        }
        Ok((source, steps))
    }

    // ------------------------------------------------------------------
    // Conditions
    // ------------------------------------------------------------------

    fn parse_cond(&mut self) -> Result<Cond, ParseError> {
        let mut left = self.parse_cond_and()?;
        while matches!(self.peek(), Tok::Name(n) if n == "or") {
            self.bump();
            let right = self.parse_cond_and()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cond_and(&mut self) -> Result<Cond, ParseError> {
        let mut left = self.parse_cond_unary()?;
        while matches!(self.peek(), Tok::Name(n) if n == "and") {
            self.bump();
            let right = self.parse_cond_unary()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cond_unary(&mut self) -> Result<Cond, ParseError> {
        match self.peek().clone() {
            Tok::Name(n) if n == "not" => {
                self.bump();
                self.expect(&Tok::LParen, "'(' after not")?;
                let c = self.parse_cond()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Cond::Not(Box::new(c)))
            }
            Tok::Name(n) if n == "true" => {
                self.bump();
                self.expect(&Tok::LParen, "'(' after true")?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Cond::True)
            }
            Tok::Name(n) if n == "exists" => {
                self.bump();
                self.expect(&Tok::LParen, "'(' after exists")?;
                let (var, steps) = self.parse_path()?;
                self.expect(&Tok::RParen, "')'")?;
                let step = self.single_step(steps, "exists")?;
                Ok(Cond::Exists { var, step })
            }
            Tok::LParen => {
                self.bump();
                let c = self.parse_cond()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(c)
            }
            _ => self.parse_comparison(),
        }
    }

    fn single_step(&self, steps: Vec<Step>, ctx: &str) -> Result<Step, ParseError> {
        match steps.len() {
            1 => Ok(steps[0]),
            0 => Err(ParseError {
                pos: self.pos(),
                detail: format!(
                    "{ctx} requires a path with exactly one step (got a bare variable)"
                ),
            }),
            _ => Err(ParseError {
                pos: self.pos(),
                detail: format!(
                    "{ctx} requires a single-step path (Fig. 6 of the paper); rewrite \
                     the query with a nested for-loop over the path prefix"
                ),
            }),
        }
    }

    fn parse_comparison(&mut self) -> Result<Cond, ParseError> {
        enum Operand {
            Path(VarId, Step),
            Lit(String),
        }
        let operand = |p: &mut Self| -> Result<Operand, ParseError> {
            match p.peek().clone() {
                Tok::Str(s) => {
                    p.bump();
                    Ok(Operand::Lit(s))
                }
                Tok::Number(s) => {
                    p.bump();
                    Ok(Operand::Lit(s))
                }
                Tok::Var(_) | Tok::Slash | Tok::DSlash => {
                    let (v, steps) = p.parse_path()?;
                    let step = p.single_step(steps, "a comparison operand")?;
                    Ok(Operand::Path(v, step))
                }
                other => Err(ParseError {
                    pos: p.pos(),
                    detail: format!("expected a comparison operand, found '{other}'"),
                }),
            }
        };
        let left = operand(self)?;
        let op = match self.bump() {
            Tok::Eq => RelOp::Eq,
            Tok::Ne => RelOp::Ne,
            Tok::Le => RelOp::Le,
            Tok::Lt => RelOp::Lt,
            Tok::Ge => RelOp::Ge,
            Tok::RAngle => RelOp::Gt,
            other => return self.err(format!("expected a comparison operator, found '{other}'")),
        };
        let right = operand(self)?;
        match (left, right) {
            (Operand::Path(v, s), Operand::Lit(val)) => Ok(Cond::CmpStr {
                var: v,
                step: s,
                op,
                value: val,
            }),
            (Operand::Lit(val), Operand::Path(v, s)) => Ok(Cond::CmpStr {
                var: v,
                step: s,
                op: op.flip(),
                value: val,
            }),
            (Operand::Path(lv, ls), Operand::Path(rv, rs)) => Ok(Cond::CmpVar {
                left_var: lv,
                left_step: ls,
                op,
                right_var: rv,
                right_step: rs,
            }),
            (Operand::Lit(_), Operand::Lit(_)) => {
                self.err("comparing two literals is not part of the XQ fragment")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(input: &str) -> Query {
        let mut tags = TagInterner::new();
        parse(input, &mut tags).expect("parse ok")
    }

    fn perr(input: &str) -> ParseError {
        let mut tags = TagInterner::new();
        parse(input, &mut tags).expect_err("expected parse error")
    }

    #[test]
    fn intro_query_parses() {
        let q = p(r#"<r> {
            for $bib in /bib return
            ((for $x in $bib/* return
               if (not(exists($x/price))) then $x else ()),
             for $b in $bib/book return $b/title)
        } </r>"#);
        // Structure: For($bib) { Sequence [ For($x){If..}, For($b){PathOutput} ] }
        let Expr::For {
            var, source, body, ..
        } = &q.body
        else {
            panic!("expected for, got {:?}", q.body);
        };
        assert_eq!(*source, VarId::ROOT);
        assert_eq!(q.vars.name(*var), "bib");
        let Expr::Sequence(items) = body.as_ref() else {
            panic!("expected sequence");
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(&items[0], Expr::For { .. }));
    }

    #[test]
    fn empty_query() {
        let q = p("<r/>");
        assert_eq!(q.body, Expr::Empty);
        let q2 = p("<r>{ }</r>");
        assert_eq!(q2.body, Expr::Empty);
    }

    #[test]
    fn nested_constructors() {
        let q = p("<a><b/><c>{ () }</c></a>");
        let Expr::Sequence(items) = &q.body else {
            panic!("expected sequence");
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], Expr::Element { .. }));
    }

    #[test]
    fn multistep_for_source_nests() {
        let q = p("<r>{ for $p in /site/people/person return $p }</r>");
        // for tmp in /site return for tmp_2 in tmp/people return for p ...
        let Expr::For { step, body, .. } = &q.body else {
            panic!()
        };
        assert_eq!(step.axis, Axis::Child);
        let Expr::For { body: b2, .. } = body.as_ref() else {
            panic!()
        };
        let Expr::For { var, body: b3, .. } = b2.as_ref() else {
            panic!()
        };
        assert_eq!(q.vars.name(*var), "p");
        assert_eq!(**b3, Expr::VarRef(*var));
    }

    #[test]
    fn multistep_output_nests() {
        let q = p("<r>{ for $b in /bib return $b/book/title }</r>");
        let Expr::For { body, .. } = &q.body else {
            panic!()
        };
        let Expr::For {
            step, body: inner, ..
        } = body.as_ref()
        else {
            panic!("expected inner for, got {body:?}")
        };
        assert!(matches!(step.test, NodeTest::Tag(_)));
        assert!(matches!(inner.as_ref(), Expr::PathOutput { .. }));
    }

    #[test]
    fn where_becomes_if() {
        let q = p(r#"<r>{ for $x in /a where $x/b = "1" return $x }</r>"#);
        let Expr::For { body, .. } = &q.body else {
            panic!()
        };
        let Expr::If {
            cond, else_branch, ..
        } = body.as_ref()
        else {
            panic!("expected if, got {body:?}")
        };
        assert!(matches!(cond, Cond::CmpStr { .. }));
        assert_eq!(**else_branch, Expr::Empty);
    }

    #[test]
    fn descendant_axis_forms() {
        let q = p("<r>{ for $x in //item return $x/descendant::name }</r>");
        let Expr::For { step, body, .. } = &q.body else {
            panic!()
        };
        assert_eq!(step.axis, Axis::Descendant);
        let Expr::PathOutput { step: s2, .. } = body.as_ref() else {
            panic!()
        };
        assert_eq!(s2.axis, Axis::Descendant);
    }

    #[test]
    fn text_test() {
        let q = p("<r>{ for $x in /a return $x/text() }</r>");
        let Expr::For { body, .. } = &q.body else {
            panic!()
        };
        let Expr::PathOutput { step, .. } = body.as_ref() else {
            panic!()
        };
        assert_eq!(step.test, NodeTest::Text);
    }

    #[test]
    fn comparison_flip() {
        let q = p(r#"<r>{ for $x in /a return if ("5" = $x/b) then $x else () }</r>"#);
        let Expr::For { body, .. } = &q.body else {
            panic!()
        };
        let Expr::If { cond, .. } = body.as_ref() else {
            panic!()
        };
        let Cond::CmpStr { op, value, .. } = cond else {
            panic!("expected CmpStr, got {cond:?}")
        };
        assert_eq!(*op, RelOp::Eq);
        assert_eq!(value, "5");
    }

    #[test]
    fn join_condition() {
        let q = p(r#"<r>{ for $p in /a return
            for $t in /b return
            if ($t/ref = $p/id) then $t else () }</r>"#);
        let mut found = false;
        q.body.visit(&mut |e| {
            if let Expr::If { cond, .. } = e {
                if matches!(cond, Cond::CmpVar { .. }) {
                    found = true;
                }
            }
        });
        assert!(found);
    }

    #[test]
    fn boolean_connectives() {
        let q = p(r#"<r>{ for $x in /a return
            if ($x/b = "1" and not($x/c = "2") or true()) then $x else () }</r>"#);
        let mut ands = 0;
        let mut ors = 0;
        let mut nots = 0;
        q.body.visit(&mut |e| {
            if let Expr::If { cond, .. } = e {
                cond.visit(&mut |c| match c {
                    Cond::And(..) => ands += 1,
                    Cond::Or(..) => ors += 1,
                    Cond::Not(..) => nots += 1,
                    _ => {}
                });
            }
        });
        assert_eq!((ands, ors, nots), (1, 1, 1));
    }

    #[test]
    fn unbound_variable_rejected() {
        let e = perr("<r>{ $nope }</r>");
        assert!(e.detail.contains("unbound"));
    }

    #[test]
    fn path_let_is_inlined() {
        let q = p("<r>{ let $x := /a/b return for $y in $x/c return $y }</r>");
        // Equivalent to: for tmp in /a return for tmp2 in tmp/b
        //                  return for y in tmp2/c …
        let mut fors = 0;
        q.body.visit(&mut |e| {
            if matches!(e, Expr::For { .. }) {
                fors += 1;
            }
        });
        assert_eq!(fors, 3, "alias steps splice into the use site");
    }

    #[test]
    fn bare_let_alias_outputs_path() {
        let q = p("<r>{ let $x := /a/b return $x }</r>");
        // `$x` as output becomes the path /a/b: a for over /a with a
        // PathOutput of b.
        let mut saw_output = false;
        q.body.visit(&mut |e| {
            if matches!(e, Expr::PathOutput { .. }) {
                saw_output = true;
            }
        });
        assert!(saw_output);
    }

    #[test]
    fn let_shadowing_and_scoping() {
        let e = perr("<r>{ (let $x := /a return $x, $x) }</r>");
        assert!(e.detail.contains("unbound"), "alias scope is lexical: {e}");
    }

    #[test]
    fn non_path_let_rejected_with_hint() {
        let e = perr("<r>{ let $x := <a/> return $x }</r>");
        assert!(e.detail.contains("let"), "got {e}");
    }

    #[test]
    fn multistep_condition_rejected() {
        let e = perr("<r>{ for $x in /a return if (exists($x/b/c)) then $x else () }</r>");
        assert!(e.detail.contains("single-step"));
    }

    #[test]
    fn variable_scoping_is_lexical() {
        let e = perr("<r>{ (for $x in /a return $x, $x) }</r>");
        assert!(e.detail.contains("unbound"));
    }

    #[test]
    fn shadowing_freshens() {
        let q = p("<r>{ for $x in /a return for $x in $x/b return $x }</r>");
        let Expr::For {
            var: outer, body, ..
        } = &q.body
        else {
            panic!()
        };
        let Expr::For {
            var: inner,
            source,
            body: b2,
            ..
        } = body.as_ref()
        else {
            panic!()
        };
        assert_eq!(source, outer, "inner source is the outer $x");
        assert_ne!(outer, inner);
        assert_eq!(**b2, Expr::VarRef(*inner), "body references the inner $x");
    }

    #[test]
    fn root_variable_is_predefined() {
        let q = p("<r>{ for $x in $root/a return $x }</r>");
        let Expr::For { source, .. } = &q.body else {
            panic!()
        };
        assert_eq!(*source, VarId::ROOT);
    }

    #[test]
    fn mismatched_constructor_rejected() {
        let e = perr("<a>{ () }</b>");
        assert!(e.detail.contains("mismatched"));
    }
}
