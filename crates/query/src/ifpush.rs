//! If-pushdown rewriting (paper §3, Fig. 7).
//!
//! SignOff statements are always inserted at the ends of for-loop bodies
//! (Fig. 8). If a for-loop sat inside an if-branch, its signOffs would only
//! execute when the condition holds — breaking the invariant that every
//! assigned role instance is eventually removed. Pushing if-expressions
//! down into for-loops guarantees no signOff ends up guarded:
//!
//! ```text
//! DECOMP: if X then α else β
//!           ⇒ (if X then α else (), if not X then β else ())
//! SEQ:    if X then (α1,…,αn) else ()   ⇒ (if X then αi else ())i
//! NC:     if X then <a>α</a> else ()
//!           ⇒ (if X then <a> else (), if X then α else (), if X then </a> else ())
//! FOR:    if X then (for $x in $y/s return α) else ()
//!           ⇒ for $x in $y/s return (if X then α else ())
//! ```
//!
//! In *practical mode* (the paper: "we might decide to process only those
//! if-expressions with a for-loop as a subexpression") if-expressions whose
//! branches contain no for-loop are left untouched.

use crate::ast::{Cond, Expr};

/// Applies the Fig. 7 rules to a whole expression tree.
pub fn push_ifs(e: Expr, practical: bool) -> Expr {
    match e {
        Expr::Element { tag, content } => Expr::Element {
            tag,
            content: Box::new(push_ifs(*content, practical)),
        },
        Expr::Sequence(items) => {
            Expr::seq(items.into_iter().map(|i| push_ifs(i, practical)).collect())
        }
        Expr::For {
            var,
            source,
            step,
            body,
        } => Expr::For {
            var,
            source,
            step,
            body: Box::new(push_ifs(*body, practical)),
        },
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let then_branch = push_ifs(*then_branch, practical);
            let else_branch = push_ifs(*else_branch, practical);
            if practical && !then_branch.contains_for() && !else_branch.contains_for() {
                return Expr::If {
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                };
            }
            // DECOMP, then push both halves.
            let mut parts = Vec::new();
            if !matches!(then_branch, Expr::Empty) {
                parts.push(push_guarded(cond.clone(), then_branch, practical));
            }
            if !matches!(else_branch, Expr::Empty) {
                parts.push(push_guarded(
                    Cond::Not(Box::new(cond)),
                    else_branch,
                    practical,
                ));
            }
            Expr::seq(parts)
        }
        leaf => leaf,
    }
}

/// Pushes the guard `cond` into `e` (which is already if-pushed) using
/// SEQ / NC / FOR until the guard sits directly above leaves.
fn push_guarded(cond: Cond, e: Expr, practical: bool) -> Expr {
    if practical && !e.contains_for() {
        return guard(cond, e);
    }
    match e {
        Expr::Empty => Expr::Empty,
        // SEQ
        Expr::Sequence(items) => Expr::seq(
            items
                .into_iter()
                .map(|i| push_guarded(cond.clone(), i, practical))
                .collect(),
        ),
        // NC
        Expr::Element { tag, content } => Expr::seq(vec![
            guard(cond.clone(), Expr::OpenTag(tag)),
            push_guarded(cond.clone(), *content, practical),
            guard(cond, Expr::CloseTag(tag)),
        ]),
        // FOR
        Expr::For {
            var,
            source,
            step,
            body,
        } => Expr::For {
            var,
            source,
            step,
            body: Box::new(push_guarded(cond, *body, practical)),
        },
        // Nested if: conjoin the guards.
        Expr::If {
            cond: inner,
            then_branch,
            else_branch,
        } => {
            debug_assert!(matches!(*else_branch, Expr::Empty), "DECOMP ran first");
            push_guarded(
                Cond::And(Box::new(cond), Box::new(inner)),
                *then_branch,
                practical,
            )
        }
        // Leaves: $x, $x/step, <a>, </a>.
        leaf => guard(cond, leaf),
    }
}

fn guard(cond: Cond, e: Expr) -> Expr {
    Expr::If {
        cond,
        then_branch: Box::new(e),
        else_branch: Box::new(Expr::Empty),
    }
}

/// Verifies the postcondition the signOff insertion relies on: no for-loop
/// is nested inside an if-branch.
pub fn no_for_under_if(e: &Expr) -> bool {
    fn check(e: &Expr, under_if: bool) -> bool {
        match e {
            Expr::For { body, .. } => !under_if && check(body, false),
            Expr::If {
                then_branch,
                else_branch,
                ..
            } => check(then_branch, true) && check(else_branch, true),
            Expr::Element { content, .. } => check(content, under_if),
            Expr::Sequence(items) => items.iter().all(|i| check(i, under_if)),
            _ => true,
        }
    }
    check(e, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{NodeTest, Query, Step, VarId};
    use crate::parser::parse;
    use crate::pretty::pretty_query;
    use gcx_xml::TagInterner;

    fn pushed(input: &str, practical: bool) -> (Query, TagInterner) {
        let mut tags = TagInterner::new();
        let mut q = parse(input, &mut tags).expect("parse");
        q.body = push_ifs(q.body, practical);
        (q, tags)
    }

    #[test]
    fn decomp_splits_else() {
        let (q, tags) = pushed(
            r#"<r>{ for $x in /a return
                if (exists($x/p)) then (for $y in $x/b return $y) else $x }</r>"#,
            true,
        );
        let s = pretty_query(&q, &tags);
        assert!(s.contains("if (exists($x/p)) then"));
        assert!(s.contains("if (not(exists($x/p))) then $x else ()"));
        assert!(no_for_under_if(&q.body));
    }

    #[test]
    fn for_rule_moves_if_inside() {
        let (q, tags) = pushed(
            r#"<r>{ for $x in /a return
                if (exists($x/p)) then (for $y in $x/b return $y) else () }</r>"#,
            false,
        );
        let s = pretty_query(&q, &tags);
        // The for must now be outermost with the if inside.
        assert!(
            s.contains("for $y in $x/b return (if (exists($x/p)) then $y else ())"),
            "got: {s}"
        );
        assert!(no_for_under_if(&q.body));
    }

    #[test]
    fn nc_splits_constructors() {
        let (q, _tags) = pushed(
            r#"<r>{ for $x in /a return
                if (exists($x/p)) then <hit>{ for $y in $x/b return $y }</hit> else () }</r>"#,
            true,
        );
        let mut opens = 0;
        let mut closes = 0;
        q.body.visit(&mut |e| match e {
            Expr::OpenTag(_) => opens += 1,
            Expr::CloseTag(_) => closes += 1,
            _ => {}
        });
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
        assert!(no_for_under_if(&q.body));
    }

    #[test]
    fn practical_mode_leaves_forless_ifs() {
        let (q, _) = pushed(
            r#"<r>{ for $x in /a return if (exists($x/p)) then $x else $x/q }</r>"#,
            true,
        );
        // The if contains no for — untouched, still has a real else branch.
        let mut intact = false;
        q.body.visit(&mut |e| {
            if let Expr::If { else_branch, .. } = e {
                if !matches!(else_branch.as_ref(), Expr::Empty) {
                    intact = true;
                }
            }
        });
        assert!(intact);
    }

    #[test]
    fn full_mode_splits_everything() {
        let (q, _) = pushed(
            r#"<r>{ for $x in /a return if (exists($x/p)) then $x else $x/q }</r>"#,
            false,
        );
        q.body.visit(&mut |e| {
            if let Expr::If { else_branch, .. } = e {
                assert!(matches!(else_branch.as_ref(), Expr::Empty));
            }
        });
    }

    #[test]
    fn nested_ifs_conjoin() {
        let (q, tags) = pushed(
            r#"<r>{ for $x in /a return
                if (exists($x/p)) then
                  (if (exists($x/q)) then (for $y in $x/b return $y) else ())
                else () }</r>"#,
            false,
        );
        let s = pretty_query(&q, &tags);
        assert!(
            s.contains("exists($x/p) and exists($x/q)"),
            "conjoined guard, got: {s}"
        );
        assert!(no_for_under_if(&q.body));
    }

    #[test]
    fn seq_distributes() {
        let (q, _) = pushed(
            r#"<r>{ for $x in /a return
                if (exists($x/p)) then ($x, for $y in $x/b return $y, $x/c) else () }</r>"#,
            false,
        );
        assert!(no_for_under_if(&q.body));
        // Three guarded pieces.
        let mut ifs = 0;
        q.body.visit(&mut |e| {
            if matches!(e, Expr::If { .. }) {
                ifs += 1;
            }
        });
        assert_eq!(ifs, 3);
    }

    #[test]
    fn untouched_query_unchanged() {
        let input = "<r>{ for $x in /a return $x }</r>";
        let (q, tags) = pushed(input, true);
        let mut tags2 = TagInterner::new();
        let orig = parse(input, &mut tags2).unwrap();
        assert_eq!(pretty_query(&q, &tags), pretty_query(&orig, &tags2));
    }

    #[test]
    fn postcondition_checker() {
        let bad = Expr::If {
            cond: Cond::True,
            then_branch: Box::new(Expr::For {
                var: VarId(1),
                source: VarId::ROOT,
                step: Step::child(NodeTest::Star),
                body: Box::new(Expr::Empty),
            }),
            else_branch: Box::new(Expr::Empty),
        };
        assert!(!no_for_under_if(&bad));
    }
}
