//! Pretty-printing of XQ queries in the paper's notation.
//!
//! Surface queries round-trip: `parse(pretty(q))` equals `q` structurally.
//! Rewritten queries additionally render `signOff($x/π, r)` statements and
//! the split tags produced by the NC rule; those forms are print-only.

use crate::ast::{Axis, Cond, Expr, NodeTest, Query, Step, VarTable};
use gcx_xml::TagInterner;
use std::fmt::Write as _;

/// Renders a complete query on one line.
pub fn pretty_query(q: &Query, tags: &TagInterner) -> String {
    let mut s = String::new();
    let _ = write!(s, "<{}> {{ ", tags.name(q.root_tag));
    pretty_expr(&q.body, &q.vars, tags, &mut s);
    let _ = write!(s, " }} </{}>", tags.name(q.root_tag));
    s
}

/// Renders an expression.
pub fn pretty_expr(e: &Expr, vars: &VarTable, tags: &TagInterner, out: &mut String) {
    match e {
        Expr::Empty => out.push_str("()"),
        Expr::Element { tag, content } => {
            if matches!(content.as_ref(), Expr::Empty) {
                let _ = write!(out, "<{}/>", tags.name(*tag));
            } else {
                let _ = write!(out, "<{}> {{ ", tags.name(*tag));
                pretty_expr(content, vars, tags, out);
                let _ = write!(out, " }} </{}>", tags.name(*tag));
            }
        }
        Expr::VarRef(v) => {
            let _ = write!(out, "${}", vars.name(*v));
        }
        Expr::PathOutput { var, step } => {
            let _ = write!(out, "${}", vars.name(*var));
            push_step(*step, tags, out);
        }
        Expr::Sequence(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                pretty_expr(item, vars, tags, out);
            }
            out.push(')');
        }
        Expr::For {
            var,
            source,
            step,
            body,
        } => {
            let _ = write!(out, "for ${} in ${}", vars.name(*var), vars.name(*source));
            push_step(*step, tags, out);
            out.push_str(" return ");
            pretty_wrapped(body, vars, tags, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("if (");
            pretty_cond(cond, vars, tags, out);
            out.push_str(") then ");
            pretty_wrapped(then_branch, vars, tags, out);
            out.push_str(" else ");
            pretty_wrapped(else_branch, vars, tags, out);
        }
        Expr::OpenTag(t) => {
            let _ = write!(out, "<{}>", tags.name(*t));
        }
        Expr::CloseTag(t) => {
            let _ = write!(out, "</{}>", tags.name(*t));
        }
        Expr::SignOff { var, path, role } => {
            let _ = write!(out, "signOff(${}", vars.name(*var));
            for s in &path.steps {
                match s.axis {
                    gcx_projection::PAxis::Child => {
                        let _ = write!(out, "/{}", s.display_test(tags));
                    }
                    gcx_projection::PAxis::Descendant => {
                        let _ = write!(out, "//{}", s.display_test(tags));
                    }
                    gcx_projection::PAxis::DescendantOrSelf => {
                        let _ = write!(out, "/{}", s.display(tags));
                    }
                }
            }
            let _ = write!(out, ", {role})");
        }
    }
}

/// Sub-expressions of for/if get parentheses when they are sequences, so
/// the output re-parses unambiguously.
fn pretty_wrapped(e: &Expr, vars: &VarTable, tags: &TagInterner, out: &mut String) {
    match e {
        Expr::Sequence(_) => pretty_expr(e, vars, tags, out),
        Expr::For { .. } | Expr::If { .. } => {
            out.push('(');
            pretty_expr(e, vars, tags, out);
            out.push(')');
        }
        _ => pretty_expr(e, vars, tags, out),
    }
}

fn push_step(step: Step, tags: &TagInterner, out: &mut String) {
    match step.axis {
        Axis::Child => out.push('/'),
        Axis::Descendant => out.push_str("//"),
    }
    match step.test {
        NodeTest::Tag(t) => out.push_str(tags.name(t)),
        NodeTest::Star => out.push('*'),
        NodeTest::Text => out.push_str("text()"),
    }
}

/// Renders a condition.
pub fn pretty_cond(c: &Cond, vars: &VarTable, tags: &TagInterner, out: &mut String) {
    match c {
        Cond::True => out.push_str("true()"),
        Cond::Exists { var, step } => {
            let _ = write!(out, "exists(${}", vars.name(*var));
            push_step(*step, tags, out);
            out.push(')');
        }
        Cond::CmpStr {
            var,
            step,
            op,
            value,
        } => {
            let _ = write!(out, "${}", vars.name(*var));
            push_step(*step, tags, out);
            let _ = write!(out, " {} \"{}\"", op.symbol(), value);
        }
        Cond::CmpVar {
            left_var,
            left_step,
            op,
            right_var,
            right_step,
        } => {
            let _ = write!(out, "${}", vars.name(*left_var));
            push_step(*left_step, tags, out);
            let _ = write!(out, " {} ", op.symbol());
            let _ = write!(out, "${}", vars.name(*right_var));
            push_step(*right_step, tags, out);
        }
        Cond::And(a, b) => {
            pretty_cond_nested(a, vars, tags, out);
            out.push_str(" and ");
            pretty_cond_nested(b, vars, tags, out);
        }
        Cond::Or(a, b) => {
            pretty_cond_nested(a, vars, tags, out);
            out.push_str(" or ");
            pretty_cond_nested(b, vars, tags, out);
        }
        Cond::Not(inner) => {
            out.push_str("not(");
            pretty_cond(inner, vars, tags, out);
            out.push(')');
        }
    }
}

fn pretty_cond_nested(c: &Cond, vars: &VarTable, tags: &TagInterner, out: &mut String) {
    match c {
        Cond::And(..) | Cond::Or(..) => {
            out.push('(');
            pretty_cond(c, vars, tags, out);
            out.push(')');
        }
        _ => pretty_cond(c, vars, tags, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gcx_xml::TagInterner;

    fn roundtrip(input: &str) {
        let mut tags = TagInterner::new();
        let q1 = parse(input, &mut tags).expect("first parse");
        let printed = pretty_query(&q1, &tags);
        let mut tags2 = TagInterner::new();
        let q2 = parse(&printed, &mut tags2).unwrap_or_else(|e| {
            panic!("reparse of {printed:?} failed: {e}");
        });
        let printed2 = pretty_query(&q2, &tags2);
        assert_eq!(printed, printed2, "pretty output is a fixpoint");
    }

    #[test]
    fn roundtrips() {
        roundtrip("<r/>");
        roundtrip("<r>{ for $x in /a return $x }</r>");
        roundtrip(
            r#"<r> {
            for $bib in /bib return
            ((for $x in $bib/* return
               if (not(exists($x/price))) then $x else ()),
             for $b in $bib/book return $b/title)
        } </r>"#,
        );
        roundtrip(r#"<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>"#);
        roundtrip(
            r#"<r>{ for $x in /a return
            if ($x/b = "1" and (not($x/c = "2") or true())) then $x else () }</r>"#,
        );
        roundtrip("<r>{ for $x in //item return ($x/name, $x/text()) }</r>");
    }

    #[test]
    fn prints_intro_style() {
        let mut tags = TagInterner::new();
        let q = parse(
            "<r>{ for $bib in /bib return for $b in $bib/book return $b/title }</r>",
            &mut tags,
        )
        .unwrap();
        let s = pretty_query(&q, &tags);
        assert_eq!(
            s,
            "<r> { for $bib in $root/bib return (for $b in $bib/book return $b/title) } </r>"
        );
    }

    #[test]
    fn signoff_rendering() {
        use gcx_projection::{PStep, PTest, Pred, RelPath, Role};
        let mut tags = TagInterner::new();
        let price = tags.intern("price");
        let mut vars = VarTable::new();
        let x = vars.fresh("x");
        let mut out = String::new();
        pretty_expr(
            &Expr::SignOff {
                var: x,
                path: RelPath::empty(),
                role: Role(3),
            },
            &vars,
            &tags,
            &mut out,
        );
        assert_eq!(out, "signOff($x, r3)");
        out.clear();
        pretty_expr(
            &Expr::SignOff {
                var: x,
                path: RelPath::single(PStep::with_pred(
                    gcx_projection::PAxis::Child,
                    PTest::Tag(price),
                    Pred::First,
                )),
                role: Role(4),
            },
            &vars,
            &tags,
            &mut out,
        );
        assert_eq!(out, "signOff($x/price[1], r4)");
    }
}
