//! Dependencies and role allocation (paper Definition 2).
//!
//! For every use of a variable the paper derives a *dependency*
//! `⟨$x/π, r⟩` describing which input nodes must be buffered on behalf of
//! that use, with a fresh role `r` (the injective `rQ`):
//!
//! * `exists($x/axis::ν)` → `⟨axis::ν\[1\], r⟩` — only the first witness;
//! * output `$x/axis::ν` or a comparison operand → `⟨axis::ν/dos::node(), r⟩`
//!   — the nodes with their whole subtrees;
//! * output `$x` → `⟨dos::node(), r⟩` — the binding's whole subtree.
//!
//! For-loops themselves also consume a role (assigned to the nodes the
//! variable binds to); those are allocated here too.

use crate::ast::{Cond, Expr, Query, Step, VarId};
use crate::vartree::step_to_pstep;
use gcx_projection::{PStep, Pred, RelPath, Role, RoleCatalog};
use gcx_xml::TagInterner;

/// Why a dependency exists (drives projection-tree predicates and the
/// aggregate-role optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// From `exists($x/step)` — `[position()=1]`, no descendants.
    Exists,
    /// From an output expression `$x/step` — step plus `dos::node()`.
    Output,
    /// From a comparison operand `$x/step` — step plus `dos::node()`.
    Compare,
    /// From an output `$x` — `dos::node()` on the binding itself.
    SelfOutput,
}

/// One dependency `⟨π, r⟩` of a variable.
#[derive(Debug, Clone)]
pub struct DepEntry {
    pub path: RelPath,
    pub role: Role,
    pub kind: DepKind,
}

/// Dependency table: `per_var[v]` lists `dep($v)` in syntactic order.
#[derive(Debug, Clone, Default)]
pub struct DepTable {
    pub per_var: Vec<Vec<DepEntry>>,
    /// `rQ(β)` for each for-loop β, indexed by the bound variable.
    /// `None` for `$root` and for roles eliminated as redundant (§6).
    pub var_role: Vec<Option<Role>>,
}

impl DepTable {
    pub fn deps(&self, v: VarId) -> &[DepEntry] {
        &self.per_var[v.index()]
    }

    /// True when `dep($v)` contains a self-output (dos on the binding).
    pub fn has_self_output(&self, v: VarId) -> bool {
        self.per_var[v.index()]
            .iter()
            .any(|d| d.kind == DepKind::SelfOutput)
    }
}

/// Collects dependencies and allocates all roles.
///
/// Must run on the normalized query *before* signOff insertion. Roles are
/// allocated in a deterministic order: for-loop roles and dependency roles
/// interleaved in syntactic (depth-first) order, which matches the paper's
/// numbering in the running example (r2 = for $bib, r3 = for $x,
/// r4 = price\[1\], r5 = dos for $x, r6 = for $b, r7 = title/dos).
pub fn collect_deps(q: &Query, tags: &TagInterner, catalog: &mut RoleCatalog) -> DepTable {
    let mut t = DepTable {
        per_var: vec![Vec::new(); q.vars.len()],
        var_role: vec![None; q.vars.len()],
    };
    walk(&q.body, q, tags, catalog, &mut t);
    t
}

fn dep_step(step: Step, first: bool) -> PStep {
    let mut p = step_to_pstep(step);
    if first {
        p.pred = Pred::First;
    }
    p
}

fn walk(e: &Expr, q: &Query, tags: &TagInterner, catalog: &mut RoleCatalog, t: &mut DepTable) {
    match e {
        Expr::Empty | Expr::OpenTag(_) | Expr::CloseTag(_) => {}
        Expr::SignOff { .. } => {
            unreachable!("dependencies are collected before signOff insertion")
        }
        Expr::Element { content, .. } => walk(content, q, tags, catalog, t),
        Expr::Sequence(items) => {
            for i in items {
                walk(i, q, tags, catalog, t);
            }
        }
        Expr::VarRef(v) => {
            let role = catalog.fresh(format!("output ${}", q.vars.name(*v)));
            t.per_var[v.index()].push(DepEntry {
                path: RelPath::single(PStep::dos_node()),
                role,
                kind: DepKind::SelfOutput,
            });
        }
        Expr::PathOutput { var, step } => {
            let role = catalog.fresh(format!("output ${}/…", q.vars.name(*var)));
            t.per_var[var.index()].push(DepEntry {
                path: RelPath::single(dep_step(*step, false)).then(PStep::dos_node()),
                role,
                kind: DepKind::Output,
            });
        }
        Expr::For { var, body, .. } => {
            let role = catalog.fresh(format!("for ${}", q.vars.name(*var)));
            t.var_role[var.index()] = Some(role);
            walk(body, q, tags, catalog, t);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_cond(cond, q, tags, catalog, t);
            walk(then_branch, q, tags, catalog, t);
            walk(else_branch, q, tags, catalog, t);
        }
    }
}

fn walk_cond(c: &Cond, q: &Query, tags: &TagInterner, catalog: &mut RoleCatalog, t: &mut DepTable) {
    let _ = tags;
    match c {
        Cond::True => {}
        Cond::Exists { var, step } => {
            let role = catalog.fresh(format!("exists(${}/…)", q.vars.name(*var)));
            t.per_var[var.index()].push(DepEntry {
                path: RelPath::single(dep_step(*step, true)),
                role,
                kind: DepKind::Exists,
            });
        }
        Cond::CmpStr { var, step, .. } => {
            let role = catalog.fresh(format!("compare ${}/…", q.vars.name(*var)));
            t.per_var[var.index()].push(DepEntry {
                path: RelPath::single(dep_step(*step, false)).then(PStep::dos_node()),
                role,
                kind: DepKind::Compare,
            });
        }
        Cond::CmpVar {
            left_var,
            left_step,
            right_var,
            right_step,
            ..
        } => {
            let role = catalog.fresh(format!("compare ${}/…", q.vars.name(*left_var)));
            t.per_var[left_var.index()].push(DepEntry {
                path: RelPath::single(dep_step(*left_step, false)).then(PStep::dos_node()),
                role,
                kind: DepKind::Compare,
            });
            let role2 = catalog.fresh(format!("compare ${}/…", q.vars.name(*right_var)));
            t.per_var[right_var.index()].push(DepEntry {
                path: RelPath::single(dep_step(*right_step, false)).then(PStep::dos_node()),
                role: role2,
                kind: DepKind::Compare,
            });
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            walk_cond(a, q, tags, catalog, t);
            walk_cond(b, q, tags, catalog, t);
        }
        Cond::Not(inner) => walk_cond(inner, q, tags, catalog, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gcx_projection::PTest;

    fn setup(input: &str) -> (Query, TagInterner, DepTable, RoleCatalog) {
        let mut tags = TagInterner::new();
        let q = parse(input, &mut tags).expect("parse");
        let mut catalog = RoleCatalog::new();
        let t = collect_deps(&q, &tags, &mut catalog);
        (q, tags, t, catalog)
    }

    fn var_by_name(q: &Query, name: &str) -> VarId {
        q.vars.ids().find(|&v| q.vars.name(v) == name).unwrap()
    }

    /// Paper Example 5: dep($x) = {⟨price\[1\], r4⟩, ⟨dos::node(), r5⟩},
    /// dep($b) = {⟨title/dos::node(), r7⟩}.
    #[test]
    fn example5_intro_deps() {
        let (q, tags, t, _) = setup(
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
        );
        let vx = var_by_name(&q, "x");
        let vb = var_by_name(&q, "b");
        let dx = t.deps(vx);
        assert_eq!(dx.len(), 2);
        assert_eq!(dx[0].kind, DepKind::Exists);
        assert_eq!(dx[0].path.display(&tags).to_string(), "price[1]");
        assert_eq!(dx[1].kind, DepKind::SelfOutput);
        assert_eq!(dx[1].path.display(&tags).to_string(), "dos::node()");
        let db = t.deps(vb);
        assert_eq!(db.len(), 1);
        assert_eq!(db[0].kind, DepKind::Output);
        assert_eq!(db[0].path.display(&tags).to_string(), "title/dos::node()");
        // $bib itself has no dependencies; only its for-loop role.
        let vbib = var_by_name(&q, "bib");
        assert!(t.deps(vbib).is_empty());
        assert!(t.var_role[vbib.index()].is_some());
    }

    /// Role numbering matches the paper's running example when counting
    /// from r2 (the paper starts at the for-loop of $bib).
    #[test]
    fn role_allocation_order() {
        let (_, _, t, catalog) = setup(
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
        );
        // Allocation order: for $bib, for $x, exists, output $x,
        // for $b, output $b/title.
        assert_eq!(catalog.len(), 6);
        assert_eq!(t.var_role[1], Some(Role(0))); // $bib  — paper's r2
        assert_eq!(t.var_role[2], Some(Role(1))); // $x    — paper's r3
        assert_eq!(catalog.origin(Role(2)), "exists($x/…)"); // paper's r4
        assert_eq!(catalog.origin(Role(3)), "output $x"); // paper's r5
        assert_eq!(t.var_role[3], Some(Role(4))); // $b    — paper's r6
        assert_eq!(catalog.origin(Role(5)), "output $b/…"); // paper's r7
    }

    #[test]
    fn comparison_creates_two_deps() {
        let (q, tags, t, _) = setup(
            r#"<r>{ for $p in /people return for $t in /sales return
                if ($t/buyer = $p/id) then $t else () }</r>"#,
        );
        let vp = var_by_name(&q, "p");
        let vt = var_by_name(&q, "t");
        assert_eq!(t.deps(vp).len(), 1);
        // $t: compare dep + self-output dep.
        assert_eq!(t.deps(vt).len(), 2);
        assert_eq!(
            t.deps(vt)[0].path.display(&tags).to_string(),
            "buyer/dos::node()"
        );
        assert_eq!(t.deps(vp)[0].kind, DepKind::Compare);
    }

    #[test]
    fn string_compare_single_dep() {
        let (q, tags, t, _) =
            setup(r#"<r>{ for $p in /a return if ($p/id = "x7") then $p/name else () }</r>"#);
        let vp = var_by_name(&q, "p");
        let d = t.deps(vp);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].kind, DepKind::Compare);
        assert_eq!(d[0].path.display(&tags).to_string(), "id/dos::node()");
        assert_eq!(d[1].kind, DepKind::Output);
        assert_eq!(d[1].path.display(&tags).to_string(), "name/dos::node()");
    }

    #[test]
    fn exists_gets_positional_predicate() {
        let (q, _, t, _) =
            setup(r#"<r>{ for $x in /a return if (exists($x//k)) then <hit/> else () }</r>"#);
        let vx = var_by_name(&q, "x");
        let d = &t.deps(vx)[0];
        assert_eq!(d.path.steps.len(), 1);
        assert_eq!(d.path.steps[0].pred, Pred::First);
        assert_eq!(
            d.path.steps[0].axis,
            gcx_projection::PAxis::Descendant,
            "descendant axis preserved"
        );
    }

    #[test]
    fn text_step_dependency() {
        let (q, _, t, _) = setup("<r>{ for $x in /a return $x/text() }</r>");
        let vx = var_by_name(&q, "x");
        let d = &t.deps(vx)[0];
        assert_eq!(d.path.steps[0].test, PTest::Text);
        assert_eq!(d.path.steps.len(), 2, "text step still gets dos::node()");
    }

    #[test]
    fn self_output_detection() {
        let (q, _, t, _) = setup("<r>{ for $x in /a return $x }</r>");
        let vx = var_by_name(&q, "x");
        assert!(t.has_self_output(vx));
        let (q2, _, t2, _) = setup("<r>{ for $x in /a return $x/b }</r>");
        let vx2 = var_by_name(&q2, "x");
        assert!(!t2.has_self_output(vx2));
    }
}
