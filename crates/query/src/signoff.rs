//! SignOff insertion (paper §4, Fig. 8 — algorithm `suQ`).
//!
//! At the end of the scope of each variable `$x`, all nodes that depend on
//! `$x` — and for which `$x` is the *first straight ancestor* — lose their
//! roles:
//!
//! ```text
//! suQ($x):
//!   for each $z with fsa($z) = $x (own variable first):
//!     σ = varpath($x, $z)
//!     emit signOff($x/σ, rQ(for-loop of $z))        -- unless eliminated
//!     for each ⟨π, r⟩ in dep($z): emit signOff($x/σ/π, r)
//! ```
//!
//! For straight `$z = $x` this yields the paper's `signOff($x, r)`; for
//! non-straight variables the update happens at the first straight
//! ancestor through the variable path — exactly the
//! `signOff($root//b, r2)` of paper Fig. 9. (Fig. 8 as printed emits the
//! own-variable update only in the `$x ≠ $root` branch; reading it
//! together with Fig. 9 shows the update must travel to the fsa for
//! non-straight variables, which is what we implement.)
//!
//! Insertion points (the two rules below Fig. 8): the end of the query
//! body for `$root`, and the end of every for-loop body for its own
//! variable.

use crate::ast::{Expr, Query, VarId};
use crate::deps::DepTable;
use crate::vartree::VarAnalysis;

/// Generates the signOff statements of `suQ($x)`.
pub fn su_q(x: VarId, analysis: &VarAnalysis, deps: &DepTable) -> Vec<Expr> {
    let mut out = Vec::new();
    for z in analysis.scoped_to(x) {
        let sigma = analysis.varpath(x, z);
        if z != VarId::ROOT {
            if let Some(role) = deps.var_role[z.index()] {
                out.push(Expr::SignOff {
                    var: x,
                    path: sigma.clone(),
                    role,
                });
            }
        }
        for dep in deps.deps(z) {
            let mut path = sigma.clone();
            path.steps.extend(dep.path.steps.iter().copied());
            out.push(Expr::SignOff {
                var: x,
                path,
                role: dep.role,
            });
        }
    }
    out
}

/// Rewrites a query by appending `suQ` at every scope end.
pub fn insert_signoffs(q: &Query, analysis: &VarAnalysis, deps: &DepTable) -> Query {
    let body = rewrite(&q.body, analysis, deps);
    let root_updates = su_q(VarId::ROOT, analysis, deps);
    let mut items = vec![body];
    items.extend(root_updates);
    Query {
        root_tag: q.root_tag,
        body: Expr::seq(items),
        vars: q.vars.clone(),
    }
}

fn rewrite(e: &Expr, analysis: &VarAnalysis, deps: &DepTable) -> Expr {
    match e {
        Expr::For {
            var,
            source,
            step,
            body,
        } => {
            let inner = rewrite(body, analysis, deps);
            let updates = su_q(*var, analysis, deps);
            let mut items = vec![inner];
            items.extend(updates);
            Expr::For {
                var: *var,
                source: *source,
                step: *step,
                body: Box::new(Expr::seq(items)),
            }
        }
        Expr::Element { tag, content } => Expr::Element {
            tag: *tag,
            content: Box::new(rewrite(content, analysis, deps)),
        },
        Expr::Sequence(items) => {
            Expr::seq(items.iter().map(|i| rewrite(i, analysis, deps)).collect())
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Expr::If {
            cond: cond.clone(),
            then_branch: Box::new(rewrite(then_branch, analysis, deps)),
            else_branch: Box::new(rewrite(else_branch, analysis, deps)),
        },
        other => other.clone(),
    }
}

/// Static safety check: every allocated role is removed by exactly the
/// signOffs that reference it, and no signOff sits inside an if-branch.
/// Returns the list of roles referenced by signOffs.
pub fn signoff_roles(e: &Expr) -> Vec<gcx_projection::Role> {
    let mut out = Vec::new();
    collect_roles(e, &mut out);
    out
}

fn collect_roles(e: &Expr, out: &mut Vec<gcx_projection::Role>) {
    match e {
        Expr::SignOff { role, .. } => out.push(*role),
        Expr::Element { content, .. } => collect_roles(content, out),
        Expr::Sequence(items) => {
            for i in items {
                collect_roles(i, out);
            }
        }
        Expr::For { body, .. } => collect_roles(body, out),
        Expr::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_roles(then_branch, out);
            collect_roles(else_branch, out);
        }
        _ => {}
    }
}

/// True when no signOff statement is nested inside an if-branch (the
/// guarantee the if-pushdown establishes).
pub fn no_signoff_under_if(e: &Expr) -> bool {
    fn check(e: &Expr, under_if: bool) -> bool {
        match e {
            Expr::SignOff { .. } => !under_if,
            Expr::Element { content, .. } => check(content, under_if),
            Expr::Sequence(items) => items.iter().all(|i| check(i, under_if)),
            Expr::For { body, .. } => check(body, under_if),
            Expr::If {
                then_branch,
                else_branch,
                ..
            } => check(then_branch, true) && check(else_branch, true),
            _ => true,
        }
    }
    check(e, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::collect_deps;
    use crate::parser::parse;
    use crate::pretty::pretty_query;
    use crate::vartree::analyze;
    use gcx_projection::RoleCatalog;
    use gcx_xml::TagInterner;

    fn rewritten(input: &str) -> (Query, TagInterner) {
        let mut tags = TagInterner::new();
        let q = parse(input, &mut tags).expect("parse");
        let analysis = analyze(&q).expect("analysis");
        let mut catalog = RoleCatalog::new();
        let deps = collect_deps(&q, &tags, &mut catalog);
        let q2 = insert_signoffs(&q, &analysis, &deps);
        (q2, tags)
    }

    /// Paper Example 4: both variables straight; signOffs at each loop end.
    #[test]
    fn example4_straight_signoffs() {
        let (q, tags) =
            rewritten("<q>{ for $a in //a return <a>{ for $b in $a//b return <b/> }</a> }</q>");
        let s = pretty_query(&q, &tags);
        assert!(s.contains("signOff($b, r1)"), "got: {s}");
        assert!(s.contains("signOff($a, r0)"), "got: {s}");
        assert!(no_signoff_under_if(&q.body));
    }

    /// Paper Fig. 9: $b is not straight; its update is emitted at $root as
    /// signOff($root//b, r).
    #[test]
    fn fig9_non_straight_signoff_at_root() {
        let (q, tags) =
            rewritten("<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>");
        let s = pretty_query(&q, &tags);
        // $a's own update inside its loop:
        assert!(s.contains("signOff($a, r0)"), "got: {s}");
        // $b's update travels to $root with the variable path //b:
        assert!(s.contains("signOff($root//b, r1)"), "got: {s}");
        // … and appears after the outer for-loop (end of query body).
        let pos_for = s.find("for $a").unwrap();
        let pos_so = s.find("signOff($root//b").unwrap();
        assert!(pos_so > pos_for);
        // No signOff($b, …) inside the $b loop:
        assert!(!s.contains("signOff($b"), "got: {s}");
    }

    /// The intro example: the full rewritten query of paper §1.
    #[test]
    fn intro_query_rewriting() {
        let (q, tags) = rewritten(
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
        );
        let s = pretty_query(&q, &tags);
        // Role numbering: r0=$bib(paper r2), r1=$x(r3), r2=exists(r4),
        // r3=output $x(r5), r4=$b(r6), r5=title/dos(r7).
        assert!(s.contains("signOff($x, r1)"), "got: {s}");
        assert!(s.contains("signOff($x/price[1], r2)"), "got: {s}");
        assert!(s.contains("signOff($x/dos::node(), r3)"), "got: {s}");
        assert!(s.contains("signOff($b, r4)"), "got: {s}");
        assert!(s.contains("signOff($b/title/dos::node(), r5)"), "got: {s}");
        assert!(s.contains("signOff($bib, r0)"), "got: {s}");
        assert!(no_signoff_under_if(&q.body));
        // Ordering within the $x loop: own role, then deps in order.
        let p1 = s.find("signOff($x, r1)").unwrap();
        let p2 = s.find("signOff($x/price[1], r2)").unwrap();
        let p3 = s.find("signOff($x/dos::node(), r3)").unwrap();
        assert!(p1 < p2 && p2 < p3);
    }

    /// All allocated roles are covered by signOffs exactly once.
    #[test]
    fn every_role_signed_off_once() {
        let inputs = [
            "<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>",
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
            r#"<r>{ for $p in /a return for $t in /b return
                if ($t/r = $p/id) then $t else () }</r>"#,
        ];
        for input in inputs {
            let mut tags = TagInterner::new();
            let q = parse(input, &mut tags).unwrap();
            let analysis = analyze(&q).unwrap();
            let mut catalog = RoleCatalog::new();
            let deps = collect_deps(&q, &tags, &mut catalog);
            let q2 = insert_signoffs(&q, &analysis, &deps);
            let mut roles = signoff_roles(&q2.body);
            roles.sort();
            let expected: Vec<_> = catalog.roles().collect();
            assert_eq!(roles, expected, "for input {input}");
        }
    }

    /// suQ for a variable with no dependents yields only its own update.
    #[test]
    fn suq_minimal() {
        let mut tags = TagInterner::new();
        let q = parse("<r>{ for $x in /a return <hit/> }</r>", &mut tags).unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let deps = collect_deps(&q, &tags, &mut catalog);
        let x = q.vars.ids().find(|&v| q.vars.name(v) == "x").unwrap();
        let sos = su_q(x, &analysis, &deps);
        assert_eq!(sos.len(), 1);
        assert!(matches!(&sos[0], Expr::SignOff { path, .. } if path.is_empty()));
    }
}
