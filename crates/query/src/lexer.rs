//! Tokenizer for the XQ surface syntax.
//!
//! The surface syntax follows the paper's examples:
//!
//! ```xquery
//! <r> {
//!   for $bib in /bib return
//!   ((for $x in $bib/* return
//!       if (not(exists($x/price))) then $x else ()),
//!    for $b in $bib/book return $b/title)
//! } </r>
//! ```
//!
//! The classic `<` ambiguity (constructor vs. less-than) is resolved
//! lexically: `<name` opens a constructor, `</name` closes one, `<=` and a
//! `<` followed by whitespace are comparison operators.

use std::fmt;

/// Tokens of the XQ surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// `<name`
    TagOpen(String),
    /// `</name`
    TagClose(String),
    /// `>`
    RAngle,
    /// `/>`
    SelfClose,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    /// `$name`
    Var(String),
    /// bare name / keyword
    Name(String),
    /// quoted string literal
    Str(String),
    /// numeric literal (kept as text; comparisons decide numeric-ness)
    Number(String),
    Slash,
    DSlash,
    Star,
    ColonColon,
    /// `:=` (rejected by the parser with a let-specific hint)
    Assign,
    Eq,
    Ne,
    Le,
    Lt,
    Ge,
    Gt,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::TagOpen(n) => write!(f, "<{n}"),
            Tok::TagClose(n) => write!(f, "</{n}"),
            Tok::RAngle => write!(f, ">"),
            Tok::SelfClose => write!(f, "/>"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Var(n) => write!(f, "${n}"),
            Tok::Name(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Slash => write!(f, "/"),
            Tok::DSlash => write!(f, "//"),
            Tok::Star => write!(f, "*"),
            Tok::ColonColon => write!(f, "::"),
            Tok::Assign => write!(f, ":="),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Le => write!(f, "<="),
            Tok::Lt => write!(f, "<"),
            Tok::Ge => write!(f, ">="),
            Tok::Gt => write!(f, ">"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub detail: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenizes a whole query string.
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();
    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            out.push(Spanned {
                tok: $tok,
                pos: $pos,
            })
        };
    }
    while i < n {
        let c = bytes[i];
        let pos = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                // XQuery comments: (: ... :)
                if i + 1 < n && bytes[i + 1] == ':' {
                    let mut depth = 1;
                    i += 2;
                    while i < n && depth > 0 {
                        if bytes[i] == '(' && i + 1 < n && bytes[i + 1] == ':' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == ':' && i + 1 < n && bytes[i + 1] == ')' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(LexError {
                            pos,
                            detail: "unterminated comment".into(),
                        });
                    }
                } else {
                    push!(Tok::LParen, pos);
                    i += 1;
                }
            }
            ')' => {
                push!(Tok::RParen, pos);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace, pos);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace, pos);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma, pos);
                i += 1;
            }
            '*' => {
                push!(Tok::Star, pos);
                i += 1;
            }
            '=' => {
                push!(Tok::Eq, pos);
                i += 1;
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Ne, pos);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos,
                        detail: "expected '=' after '!'".into(),
                    });
                }
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == ':' {
                    push!(Tok::ColonColon, pos);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    // `:=` only appears in let-expressions, which the
                    // parser rejects with a helpful message.
                    push!(Tok::Assign, pos);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos,
                        detail: "stray ':'".into(),
                    });
                }
            }
            '/' => {
                if i + 1 < n && bytes[i + 1] == '/' {
                    push!(Tok::DSlash, pos);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '>' {
                    push!(Tok::SelfClose, pos);
                    i += 2;
                } else {
                    push!(Tok::Slash, pos);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Ge, pos);
                    i += 2;
                } else {
                    push!(Tok::RAngle, pos);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Le, pos);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '/' {
                    let mut j = i + 2;
                    let mut name = String::new();
                    while j < n && is_name_char(bytes[j]) {
                        name.push(bytes[j]);
                        j += 1;
                    }
                    if name.is_empty() {
                        return Err(LexError {
                            pos,
                            detail: "expected tag name after '</'".into(),
                        });
                    }
                    push!(Tok::TagClose(name), pos);
                    i = j;
                } else if i + 1 < n && is_name_start(bytes[i + 1]) {
                    let mut j = i + 1;
                    let mut name = String::new();
                    while j < n && is_name_char(bytes[j]) {
                        name.push(bytes[j]);
                        j += 1;
                    }
                    push!(Tok::TagOpen(name), pos);
                    i = j;
                } else {
                    push!(Tok::Lt, pos);
                    i += 1;
                }
            }
            '$' => {
                let mut j = i + 1;
                let mut name = String::new();
                while j < n && is_name_char(bytes[j]) {
                    name.push(bytes[j]);
                    j += 1;
                }
                if name.is_empty() {
                    return Err(LexError {
                        pos,
                        detail: "expected variable name after '$'".into(),
                    });
                }
                push!(Tok::Var(name), pos);
                i = j;
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                while j < n && bytes[j] != quote {
                    s.push(bytes[j]);
                    j += 1;
                }
                if j >= n {
                    return Err(LexError {
                        pos,
                        detail: "unterminated string literal".into(),
                    });
                }
                push!(Tok::Str(s), pos);
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut s = String::new();
                while j < n && (bytes[j].is_ascii_digit() || bytes[j] == '.') {
                    s.push(bytes[j]);
                    j += 1;
                }
                push!(Tok::Number(s), pos);
                i = j;
            }
            c if is_name_start(c) => {
                let mut j = i;
                let mut s = String::new();
                while j < n && is_name_char(bytes[j]) {
                    s.push(bytes[j]);
                    j += 1;
                }
                push!(Tok::Name(s), pos);
                i = j;
            }
            other => {
                return Err(LexError {
                    pos,
                    detail: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: n,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn constructor_tokens() {
        assert_eq!(
            toks("<r>{ }</r>"),
            vec![
                Tok::TagOpen("r".into()),
                Tok::RAngle,
                Tok::LBrace,
                Tok::RBrace,
                Tok::TagClose("r".into()),
                Tok::RAngle,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bachelor_tag() {
        assert_eq!(
            toks("<b/>"),
            vec![Tok::TagOpen("b".into()), Tok::SelfClose, Tok::Eof]
        );
    }

    #[test]
    fn paths_and_vars() {
        assert_eq!(
            toks("$bib/book//title/*"),
            vec![
                Tok::Var("bib".into()),
                Tok::Slash,
                Tok::Name("book".into()),
                Tok::DSlash,
                Tok::Name("title".into()),
                Tok::Slash,
                Tok::Star,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("$x/a <= 5"),
            vec![
                Tok::Var("x".into()),
                Tok::Slash,
                Tok::Name("a".into()),
                Tok::Le,
                Tok::Number("5".into()),
                Tok::Eof
            ]
        );
        // '<' with whitespace is less-than, not a constructor.
        assert!(toks("$x/a < 5").contains(&Tok::Lt));
        assert!(toks("$x/a >= $y/b").contains(&Tok::Ge));
        assert!(toks("$x/a > $y/b").contains(&Tok::RAngle));
        assert!(toks("$x/a != 'q'").contains(&Tok::Ne));
    }

    #[test]
    fn axis_syntax() {
        assert_eq!(
            toks("$x/descendant::b"),
            vec![
                Tok::Var("x".into()),
                Tok::Slash,
                Tok::Name("descendant".into()),
                Tok::ColonColon,
                Tok::Name("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            toks("\"a b\" 'c d'"),
            vec![Tok::Str("a b".into()), Tok::Str("c d".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("(: outer (: inner :) still :) $x"),
            vec![Tok::Var("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn error_on_stray_colon() {
        assert!(lex("a : b").is_err());
    }

    #[test]
    fn keywords_are_plain_names() {
        assert_eq!(
            toks("for $x in /a return ()"),
            vec![
                Tok::Name("for".into()),
                Tok::Var("x".into()),
                Tok::Name("in".into()),
                Tok::Slash,
                Tok::Name("a".into()),
                Tok::Name("return".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Eof
            ]
        );
    }
}
