//! # gcx-query — the XQ fragment and GCX's static analysis
//!
//! Implements §3/§4/§6 of the paper:
//!
//! * [`ast`] — the XQ fragment (Fig. 6): nested for-loops, conditions with
//!   existence checks, string comparisons and joins, element construction.
//! * [`parser`]/[`lexer`] — a surface-syntax frontend with the paper's
//!   normalizations (absolute paths, multi-step paths → nested single-step
//!   loops, `where` → `if`).
//! * [`ifpush`] — the DECOMP/SEQ/NC/FOR rewriting of Fig. 7.
//! * [`vartree`] — variable trees, straight variables, first straight
//!   ancestors (Defs. 3/4).
//! * [`deps`] — dependencies `⟨$x/π, r⟩` and role allocation (Def. 2).
//! * [`signoff`] — the `suQ` rewriting of Fig. 8.
//! * [`projection`] — projection-tree derivation (§4, Fig. 1).
//! * [`optimize`] — early updates and redundant-role elimination (§6).
//! * [`pipeline`] — [`compile`] bundling everything into a
//!   [`CompiledQuery`].

pub mod ast;
pub mod deps;
pub mod ifpush;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod pipeline;
pub mod pretty;
pub mod projection;
pub mod signoff;
pub mod vartree;

pub use ast::{Axis, Cond, Expr, NodeTest, Query, RelOp, Step, VarId, VarTable};
pub use deps::{DepEntry, DepKind, DepTable};
pub use parser::{parse, ParseError};
pub use pipeline::{compile, compile_default, CompileError, CompileOptions, CompiledQuery};
pub use pretty::{pretty_expr, pretty_query};
pub use projection::Projection;
pub use vartree::{analyze, VarAnalysis};
