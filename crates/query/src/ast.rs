//! Abstract syntax of the XQ fragment (paper §3, Fig. 6).
//!
//! ```text
//! Q    ::= <a> q </a>
//! q    ::= () | <a> q </a> | var | var/axis::ν | (q, ..., q)
//!        | (if cond then <a> else (), q, if cond then </a> else ())
//!        | for var in var/axis::ν return q
//!        | if cond then q else q
//! cond ::= true() | exists var/axis::ν | var/axis::ν RelOp string
//!        | var/axis::ν RelOp var/axis::ν | cond and cond
//!        | cond or cond | not cond
//! axis ::= child | descendant          ν ::= a | * | text()
//! RelOp ::= ≤ | < | = | ≥ | >
//! ```
//!
//! Two extra node kinds exist only in *rewritten* queries: the split
//! constructor tags produced by the NC rule (Fig. 7) and the
//! `signOff($x/π, r)` statements inserted by `suQ` (Fig. 8).

use gcx_projection::{RelPath, Role};
use gcx_xml::TagId;

/// An XQuery variable. `VarId(0)` is always the distinguished `$root`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The distinguished root variable, the unique free variable of any
    /// query.
    pub const ROOT: VarId = VarId(0);

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Variable-name table. Parsing freshens duplicate names so that every
/// `for` introduces a distinct [`VarId`] (the paper's analysis assumes
/// uniquely named variables).
#[derive(Debug, Clone)]
pub struct VarTable {
    names: Vec<String>,
}

impl Default for VarTable {
    fn default() -> Self {
        Self::new()
    }
}

impl VarTable {
    pub fn new() -> Self {
        VarTable {
            names: vec!["root".to_string()],
        }
    }

    /// Introduces a fresh variable; `name` is freshened if already used.
    pub fn fresh(&mut self, name: &str) -> VarId {
        let mut candidate = name.to_string();
        let mut i = 1;
        while self.names.iter().any(|n| n == &candidate) {
            i += 1;
            candidate = format!("{name}_{i}");
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(candidate);
        id
    }

    /// `$name` of a variable (without the dollar sign).
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        false // $root always exists
    }

    /// All variables including `$root`.
    pub fn ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.names.len() as u32).map(VarId)
    }
}

/// Axis of an XQ step (`child` or `descendant`; `dos` appears only in
/// projection paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
}

/// Node test ν of an XQ step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeTest {
    Tag(TagId),
    Star,
    Text,
}

/// A single location step `axis::ν`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
}

impl Step {
    pub fn child(test: NodeTest) -> Self {
        Step {
            axis: Axis::Child,
            test,
        }
    }

    pub fn descendant(test: NodeTest) -> Self {
        Step {
            axis: Axis::Descendant,
            test,
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    Le,
    Lt,
    Eq,
    Ne,
    Ge,
    Gt,
}

impl RelOp {
    /// The operator with flipped operands (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> RelOp {
        match self {
            RelOp::Le => RelOp::Ge,
            RelOp::Lt => RelOp::Gt,
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
            RelOp::Ge => RelOp::Le,
            RelOp::Gt => RelOp::Lt,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Le => "<=",
            RelOp::Lt => "<",
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Ge => ">=",
            RelOp::Gt => ">",
        }
    }
}

/// XQ expressions (the `q` nonterminal).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `()`
    Empty,
    /// `<a> q </a>`
    Element { tag: TagId, content: Box<Expr> },
    /// `$x` — outputs the subtree of the binding.
    VarRef(VarId),
    /// `$x/axis::ν` — outputs all matched nodes with their subtrees.
    PathOutput { var: VarId, step: Step },
    /// `(q, ..., q)`
    Sequence(Vec<Expr>),
    /// `for $var in $source/step return body`
    For {
        var: VarId,
        source: VarId,
        step: Step,
        body: Box<Expr>,
    },
    /// `if cond then q else q`
    If {
        cond: Cond,
        then_branch: Box<Expr>,
        else_branch: Box<Expr>,
    },
    /// `<a>` alone — produced by the NC rewriting rule only.
    OpenTag(TagId),
    /// `</a>` alone — produced by the NC rewriting rule only.
    CloseTag(TagId),
    /// `signOff($var/path, role)` — produced by suQ only.
    SignOff {
        var: VarId,
        path: RelPath,
        role: Role,
    },
}

impl Expr {
    /// Wraps a list of expressions as a sequence, flattening trivial cases.
    pub fn seq(mut items: Vec<Expr>) -> Expr {
        items.retain(|e| !matches!(e, Expr::Empty));
        match items.len() {
            0 => Expr::Empty,
            1 => items.pop().expect("one item"),
            _ => Expr::Sequence(items),
        }
    }

    /// True when the expression contains a `for` anywhere (used by the
    /// practical if-pushdown mode).
    pub fn contains_for(&self) -> bool {
        match self {
            Expr::For { .. } => true,
            Expr::Element { content, .. } => content.contains_for(),
            Expr::Sequence(items) => items.iter().any(Expr::contains_for),
            Expr::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.contains_for() || else_branch.contains_for(),
            _ => false,
        }
    }

    /// Visits every subexpression, outermost first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Element { content, .. } => content.visit(f),
            Expr::Sequence(items) => {
                for e in items {
                    e.visit(f);
                }
            }
            Expr::For { body, .. } => body.visit(f),
            Expr::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                else_branch.visit(f);
            }
            _ => {}
        }
    }
}

/// Conditions (the `cond` nonterminal).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `true()`
    True,
    /// `exists($x/axis::ν)`
    Exists {
        var: VarId,
        step: Step,
    },
    /// `$x/axis::ν RelOp "string"` (string side normalized to the right).
    CmpStr {
        var: VarId,
        step: Step,
        op: RelOp,
        value: String,
    },
    /// `$x/axis::ν RelOp $y/axis::ν` — the join form.
    CmpVar {
        left_var: VarId,
        left_step: Step,
        op: RelOp,
        right_var: VarId,
        right_step: Step,
    },
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
}

impl Cond {
    /// Visits every condition node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Cond)) {
        f(self);
        match self {
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Cond::Not(c) => c.visit(f),
            _ => {}
        }
    }
}

/// A complete query `Q ::= <a> q </a>` plus its variable table.
#[derive(Debug, Clone)]
pub struct Query {
    pub root_tag: TagId,
    pub body: Expr,
    pub vars: VarTable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_table_freshens_duplicates() {
        let mut vt = VarTable::new();
        let a = vt.fresh("x");
        let b = vt.fresh("x");
        assert_ne!(a, b);
        assert_eq!(vt.name(a), "x");
        assert_eq!(vt.name(b), "x_2");
        assert_eq!(vt.name(VarId::ROOT), "root");
    }

    #[test]
    fn seq_flattens() {
        assert_eq!(Expr::seq(vec![]), Expr::Empty);
        assert_eq!(Expr::seq(vec![Expr::Empty, Expr::Empty]), Expr::Empty);
        let one = Expr::seq(vec![Expr::Empty, Expr::VarRef(VarId(1))]);
        assert_eq!(one, Expr::VarRef(VarId(1)));
        let two = Expr::seq(vec![Expr::VarRef(VarId(1)), Expr::VarRef(VarId(2))]);
        assert!(matches!(two, Expr::Sequence(v) if v.len() == 2));
    }

    #[test]
    fn relop_flip() {
        assert_eq!(RelOp::Lt.flip(), RelOp::Gt);
        assert_eq!(RelOp::Eq.flip(), RelOp::Eq);
        assert_eq!(RelOp::Ge.flip(), RelOp::Le);
    }

    #[test]
    fn contains_for_detects_nesting() {
        let f = Expr::For {
            var: VarId(1),
            source: VarId::ROOT,
            step: Step::child(NodeTest::Star),
            body: Box::new(Expr::Empty),
        };
        let wrapped = Expr::Element {
            tag: TagId(0),
            content: Box::new(Expr::Sequence(vec![Expr::Empty, f])),
        };
        assert!(wrapped.contains_for());
        assert!(!Expr::Empty.contains_for());
    }
}
