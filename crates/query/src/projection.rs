//! Deriving the projection tree from a query (paper §4, Example 5).
//!
//! Three steps:
//! 1. build the variable tree;
//! 2. for each dependency `⟨$x/π, r⟩`, add a chain labeled `π` below
//!    `$x`'s node with `rπ(terminal) = r`;
//! 3. relabel variable nodes with their for-loop steps, assign them the
//!    for-loop roles, and relabel the root `/`.
//!
//! The aggregate-role optimization (§6) flags `dos::node()` terminals so
//! that the matcher assigns their role only at the subtree root.

use crate::ast::VarId;
use crate::deps::{DepKind, DepTable};
use crate::vartree::{step_to_pstep, VarAnalysis};
use gcx_projection::{ProjNodeId, ProjTree, Role};

/// The derived projection artifacts.
#[derive(Debug, Clone)]
pub struct Projection {
    pub tree: ProjTree,
    /// Projection-tree node of each variable.
    pub var_node: Vec<ProjNodeId>,
    /// Roles flagged aggregate (for the buffer and the signOff executor).
    pub aggregates: Vec<Role>,
}

/// Builds the projection tree.
pub fn build_projection(
    analysis: &VarAnalysis,
    deps: &DepTable,
    aggregate_roles: bool,
) -> Projection {
    let mut tree = ProjTree::new();
    let n = analysis.len();
    let mut var_node = vec![ProjTree::ROOT; n];
    let mut aggregates = Vec::new();
    // Variable nodes, in id order (parents precede children since sources
    // are bound before their dependents).
    for i in 1..n {
        let v = VarId(i as u32);
        let Some(step) = analysis.step[i] else {
            continue;
        };
        let parent = analysis.source[i].expect("non-root variable has a source");
        let role = deps.var_role[i];
        var_node[i] = tree.add_child(var_node[parent.index()], step_to_pstep(step), role);
        let _ = v;
    }
    // Dependency chains.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for dep in deps.deps(VarId(i as u32)) {
            let terminal = tree.add_path(var_node[i], &dep.path.steps, Some(dep.role));
            let is_dos_terminal = matches!(
                dep.kind,
                DepKind::Output | DepKind::Compare | DepKind::SelfOutput
            );
            if aggregate_roles && is_dos_terminal {
                tree.set_aggregate(terminal);
                aggregates.push(dep.role);
            }
        }
    }
    Projection {
        tree,
        var_node,
        aggregates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Query;
    use crate::deps::collect_deps;
    use crate::parser::parse;
    use crate::vartree::analyze;
    use gcx_projection::{PTest, Pred, RoleCatalog};
    use gcx_xml::TagInterner;

    fn project(input: &str, aggregates: bool) -> (Query, TagInterner, Projection) {
        let mut tags = TagInterner::new();
        let q = parse(input, &mut tags).expect("parse");
        let analysis = analyze(&q).expect("analyze");
        let mut catalog = RoleCatalog::new();
        let deps = collect_deps(&q, &tags, &mut catalog);
        let p = build_projection(&analysis, &deps, aggregates);
        (q, tags, p)
    }

    fn var_by_name(q: &Query, name: &str) -> VarId {
        q.vars.ids().find(|&v| q.vars.name(v) == name).unwrap()
    }

    /// Paper Fig. 1: the projection tree of the intro query.
    ///
    /// ```text
    /// n1: /
    ///   n2: /bib            (r for $bib)
    ///     n3: /*            (r for $x)
    ///       n4: /price\[1\]   (exists)
    ///       n5: dos::node() (output $x)
    ///     n6: /book         (r for $b)
    ///       n7: /title → dos::node() (output $b/title)
    /// ```
    #[test]
    fn fig1_intro_projection_tree() {
        let (q, tags, p) = project(
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
            false,
        );
        let t = &p.tree;
        let root_kids = t.children(ProjTree::ROOT);
        assert_eq!(root_kids.len(), 1);
        let n2 = root_kids[0];
        assert_eq!(t.xpath_of(n2, &tags), "/bib");
        let bib_kids = t.children(n2);
        assert_eq!(bib_kids.len(), 2);
        let n3 = bib_kids[0]; // /*
        let n6 = bib_kids[1]; // /book
        assert_eq!(t.xpath_of(n3, &tags), "/bib/*");
        assert_eq!(t.xpath_of(n6, &tags), "/bib/book");
        // Children of n3: price[1] and dos::node().
        let x_kids = t.children(n3);
        assert_eq!(x_kids.len(), 2);
        assert_eq!(t.step(x_kids[0]).pred, Pred::First);
        assert_eq!(t.step(x_kids[1]).test, PTest::AnyNode);
        // n6 has the title → dos chain.
        let b_kids = t.children(n6);
        assert_eq!(b_kids.len(), 1);
        let title = b_kids[0];
        assert_eq!(t.role(title), None, "chain intermediates are roleless");
        let dos = t.children(title)[0];
        assert!(t.role(dos).is_some());
        // Variable mapping is consistent.
        let vbib = var_by_name(&q, "bib");
        assert_eq!(p.var_node[vbib.index()], n2);
        // All roles: 6 (paper's r2..r7).
        let with_roles = t.ids().filter(|&i| t.role(i).is_some()).count();
        assert_eq!(with_roles, 6, "three variable roles + r4 + r5 + r7");
    }

    /// Fig. 9's tree (= Fig. 4(d)): $b hangs off the root, not off $a.
    #[test]
    fn fig9_tree_shape() {
        let (q, tags, p) = project(
            "<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>",
            false,
        );
        let t = &p.tree;
        let kids = t.children(ProjTree::ROOT);
        assert_eq!(kids.len(), 2, "both variables are children of the root");
        assert_eq!(t.xpath_of(kids[0], &tags), "//a");
        assert_eq!(t.xpath_of(kids[1], &tags), "//b");
        let va = var_by_name(&q, "a");
        let vb = var_by_name(&q, "b");
        assert_eq!(p.var_node[va.index()], kids[0]);
        assert_eq!(p.var_node[vb.index()], kids[1]);
    }

    /// Example 4's tree (= Fig. 4(b)): $b below $a.
    #[test]
    fn example4_tree_shape() {
        let (_, tags, p) = project(
            "<q>{ for $a in //a return <a>{ for $b in $a//b return <b/> }</a> }</q>",
            false,
        );
        let t = &p.tree;
        let kids = t.children(ProjTree::ROOT);
        assert_eq!(kids.len(), 1);
        let va = kids[0];
        assert_eq!(t.xpath_of(va, &tags), "//a");
        let a_kids = t.children(va);
        assert_eq!(a_kids.len(), 1);
        assert_eq!(t.xpath_of(a_kids[0], &tags), "//a//b");
    }

    #[test]
    fn aggregates_flag_dos_terminals() {
        let (_, _, p) = project("<r>{ for $b in /bib return ($b/title, $b) }</r>", true);
        assert_eq!(
            p.aggregates.len(),
            2,
            "output dep and self dep both aggregate"
        );
        let t = &p.tree;
        let agg_nodes = t.ids().filter(|&i| t.node(i).aggregate).count();
        assert_eq!(agg_nodes, 2);
    }

    #[test]
    fn exists_dep_never_aggregate() {
        let (_, _, p) = project(
            "<r>{ for $x in /a return if (exists($x/p)) then <hit/> else () }</r>",
            true,
        );
        assert!(p.aggregates.is_empty());
    }

    #[test]
    fn eliminated_var_roles_leave_none() {
        // Simulated elimination: clear var role before building.
        let mut tags = TagInterner::new();
        let q = parse("<r>{ for $b in /bib return $b/title }</r>", &mut tags).unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let mut deps = collect_deps(&q, &tags, &mut catalog);
        let vb = var_by_name(&q, "b");
        deps.var_role[vb.index()] = None;
        let p = build_projection(&analysis, &deps, false);
        assert_eq!(p.tree.role(p.var_node[vb.index()]), None);
    }
}
