//! The optimizations of paper §6: early updates and redundant-role
//! elimination. (Aggregate roles are applied during projection-tree
//! construction; see [`crate::projection`].)

use crate::ast::{Expr, Query, VarId};
use crate::deps::DepTable;
use crate::vartree::VarAnalysis;

/// **Early updates** (§6): rewrites every output expression `$x/σ` into
/// `for $y in $x/σ return $y` with a fresh variable. After signOff
/// insertion this becomes `for $y in $x/σ return ($y, signOff($y, r))`, so
/// each matched node loses its output role immediately after being
/// emitted, instead of at the end of `$x`'s scope.
pub fn early_updates(q: &mut Query) {
    let body = std::mem::replace(&mut q.body, Expr::Empty);
    q.body = rewrite(body, q);
}

fn rewrite(e: Expr, q: &mut Query) -> Expr {
    match e {
        Expr::PathOutput { var, step } => {
            let y = q.vars.fresh("out");
            Expr::For {
                var: y,
                source: var,
                step,
                body: Box::new(Expr::VarRef(y)),
            }
        }
        Expr::Element { tag, content } => Expr::Element {
            tag,
            content: Box::new(rewrite(*content, q)),
        },
        Expr::Sequence(items) => Expr::Sequence(items.into_iter().map(|i| rewrite(i, q)).collect()),
        Expr::For {
            var,
            source,
            step,
            body,
        } => Expr::For {
            var,
            source,
            step,
            body: Box::new(rewrite(*body, q)),
        },
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Expr::If {
            cond,
            then_branch: Box::new(rewrite(*then_branch, q)),
            else_branch: Box::new(rewrite(*else_branch, q)),
        },
        other => other,
    }
}

/// **Redundant-role elimination** (§6, Fig. 12): drops for-loop roles that
/// can never affect correctness, so they are neither assigned during
/// projection nor signed off.
///
/// A variable role `rQ(for $x …)` is redundant when either
///
/// 1. `dep($x)` contains a self-output dependency (`$x` is output): the
///    `dos::node()` role covers the binding itself with identical
///    multiplicity and is removed at the same scope end; or
/// 2. the subtree of `$x`'s loop is *pure output*: its body consists only
///    of sequences, for-loops (recursively pure) and output paths rooted
///    at `$x` or its descendant variables. Then a binding whose subtree
///    carries no other role produces no output, so purging it early (and
///    skipping the binding) cannot change the result. Conditions,
///    constructors and outputs of outer variables all disqualify, because
///    for those an *absent* binding is observable.
///
/// Returns the eliminated variables; their entries in
/// [`DepTable::var_role`] are cleared.
pub fn eliminate_redundant_roles(
    q: &Query,
    analysis: &VarAnalysis,
    deps: &mut DepTable,
) -> Vec<VarId> {
    let mut eliminated = Vec::new();
    for i in 1..analysis.len() {
        let v = VarId(i as u32);
        if deps.var_role[i].is_none() {
            continue;
        }
        let redundant = deps.has_self_output(v)
            || body_of(&q.body, v).is_some_and(|b| pure_output(b, v, analysis));
        if redundant {
            deps.var_role[i] = None;
            eliminated.push(v);
        }
    }
    eliminated
}

/// Finds the body of the for-loop binding `v`.
fn body_of(e: &Expr, v: VarId) -> Option<&Expr> {
    match e {
        Expr::For { var, body, .. } if *var == v => Some(body),
        Expr::For { body, .. } => body_of(body, v),
        Expr::Element { content, .. } => body_of(content, v),
        Expr::Sequence(items) => items.iter().find_map(|i| body_of(i, v)),
        Expr::If {
            then_branch,
            else_branch,
            ..
        } => body_of(then_branch, v).or_else(|| body_of(else_branch, v)),
        _ => None,
    }
}

/// Pure-output check for rule 2 (see [`eliminate_redundant_roles`]).
fn pure_output(e: &Expr, scope_root: VarId, analysis: &VarAnalysis) -> bool {
    match e {
        Expr::Empty => true,
        Expr::VarRef(v) | Expr::PathOutput { var: v, .. } => {
            analysis.is_ancestor(scope_root, *v, true)
        }
        Expr::Sequence(items) => items.iter().all(|i| pure_output(i, scope_root, analysis)),
        Expr::For { body, .. } => pure_output(body, scope_root, analysis),
        // Conditions, constructors, split tags, signOffs: not pure.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::collect_deps;
    use crate::parser::parse;
    use crate::pretty::pretty_query;
    use crate::vartree::analyze;
    use gcx_projection::RoleCatalog;
    use gcx_xml::TagInterner;

    fn var_by_name(q: &Query, name: &str) -> VarId {
        q.vars.ids().find(|&v| q.vars.name(v) == name).unwrap()
    }

    #[test]
    fn early_updates_introduce_loops() {
        let mut tags = TagInterner::new();
        let mut q = parse("<r>{ for $b in /bib return $b/title }</r>", &mut tags).unwrap();
        early_updates(&mut q);
        let s = pretty_query(&q, &tags);
        assert!(s.contains("for $out in $b/title return $out"), "got: {s}");
    }

    #[test]
    fn early_updates_skip_var_refs() {
        let mut tags = TagInterner::new();
        let mut q = parse("<r>{ for $b in /bib return $b }</r>", &mut tags).unwrap();
        let before = pretty_query(&q, &tags);
        early_updates(&mut q);
        assert_eq!(pretty_query(&q, &tags), before);
    }

    /// Paper Fig. 12 context: in the intro query, $x's role (r3) is
    /// redundant because $x is output ($x has a dos-self dependency), and
    /// $b's role (r6) is redundant because its body is pure output.
    #[test]
    fn fig12_intro_roles_eliminated() {
        let mut tags = TagInterner::new();
        let q = parse(
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
            &mut tags,
        )
        .unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let mut deps = collect_deps(&q, &tags, &mut catalog);
        let eliminated = eliminate_redundant_roles(&q, &analysis, &mut deps);
        let vx = var_by_name(&q, "x");
        let vb = var_by_name(&q, "b");
        let vbib = var_by_name(&q, "bib");
        assert!(eliminated.contains(&vx), "$x eliminated (self-output)");
        assert!(eliminated.contains(&vb), "$b eliminated (pure output)");
        assert!(
            !eliminated.contains(&vbib),
            "$bib must keep its role: its body contains conditions"
        );
        assert_eq!(deps.var_role[vx.index()], None);
        assert!(deps.var_role[vbib.index()].is_some());
    }

    /// A loop whose body constructs elements cannot lose its role: a
    /// skipped binding would silently drop the constructor output.
    #[test]
    fn constructor_bodies_not_eliminated() {
        let mut tags = TagInterner::new();
        let q = parse(
            "<r>{ for $x in /a return <entry>{ $x/title }</entry> }</r>",
            &mut tags,
        )
        .unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let mut deps = collect_deps(&q, &tags, &mut catalog);
        let eliminated = eliminate_redundant_roles(&q, &analysis, &mut deps);
        assert!(eliminated.is_empty());
    }

    /// A body outputting an *outer* variable disqualifies rule 2.
    #[test]
    fn outer_variable_output_not_eliminated() {
        let mut tags = TagInterner::new();
        let q = parse(
            "<r>{ for $a in /a return for $x in /b return $a/k }</r>",
            &mut tags,
        )
        .unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let mut deps = collect_deps(&q, &tags, &mut catalog);
        let eliminated = eliminate_redundant_roles(&q, &analysis, &mut deps);
        let vx = var_by_name(&q, "x");
        assert!(
            !eliminated.contains(&vx),
            "$x's body outputs $a/k which does not depend on $x"
        );
        // $a itself is eliminable: pure output rooted at $a… no — its body
        // contains a for over /b whose output is rooted at $a. That is
        // still "output of $a's data", and skipping an $a binding with no
        // buffered k-children produces no output. $a qualifies.
        let va = var_by_name(&q, "a");
        assert!(eliminated.contains(&va));
    }

    /// Condition-bearing bodies keep their roles.
    #[test]
    fn conditions_block_elimination() {
        let mut tags = TagInterner::new();
        let q = parse(
            "<r>{ for $x in /a return if (exists($x/p)) then <hit/> else () }</r>",
            &mut tags,
        )
        .unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let mut deps = collect_deps(&q, &tags, &mut catalog);
        let eliminated = eliminate_redundant_roles(&q, &analysis, &mut deps);
        assert!(eliminated.is_empty());
    }

    /// Nested pure-output loops are eliminated together.
    #[test]
    fn nested_pure_output() {
        let mut tags = TagInterner::new();
        let q = parse(
            "<r>{ for $a in /a return for $b in $a/b return $b/c }</r>",
            &mut tags,
        )
        .unwrap();
        let analysis = analyze(&q).unwrap();
        let mut catalog = RoleCatalog::new();
        let mut deps = collect_deps(&q, &tags, &mut catalog);
        let eliminated = eliminate_redundant_roles(&q, &analysis, &mut deps);
        assert_eq!(eliminated.len(), 2);
    }
}
