//! Variable trees, straight variables and first straight ancestors
//! (paper §3, Definitions 3 and 4).
//!
//! * `parVarQ($x) = $y` when the query contains `for $x in $y/axis::ν`.
//! * The *variable tree* has edge relation `parVar`.
//! * `$z` is **straight** when its whole chain of enclosing for-loops binds
//!   only ancestor variables of `$z` (Def. 3). Straightness decides *where*
//!   signOff statements may be placed: roles of non-straight variables can
//!   only be released at the first straight ancestor (`fsa`, Def. 4),
//!   because their bindings are revisited across iterations of unrelated
//!   loops (the join case, paper Fig. 9 / Example 6/8).

use crate::ast::{Expr, Query, Step, VarId};
use gcx_projection::{PStep, RelPath};
use std::fmt;

/// Errors from variable analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Internal: a `for` reuses a VarId (parser bug).
    DuplicateBinding(u32),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::DuplicateBinding(v) => {
                write!(f, "variable {v} is bound by two for-loops")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Result of variable analysis; indexes are [`VarId`]s.
#[derive(Debug, Clone)]
pub struct VarAnalysis {
    /// `parVar` — the source variable of each for-loop (None for `$root`).
    pub source: Vec<Option<VarId>>,
    /// The step of each variable's for-loop (None for `$root`).
    pub step: Vec<Option<Step>>,
    /// Variables of the for-loops lexically enclosing each variable's
    /// defining loop, outermost first.
    pub enclosing: Vec<Vec<VarId>>,
    /// Def. 3 verdict.
    pub straight: Vec<bool>,
    /// Def. 4: first straight ancestor.
    pub fsa: Vec<VarId>,
    /// Variable-tree children (by `parVar`), in VarId order.
    pub children: Vec<Vec<VarId>>,
}

impl VarAnalysis {
    /// True when `a` is an ancestor variable of `d` (`d <Q a`), or equal
    /// when `or_self`.
    pub fn is_ancestor(&self, a: VarId, d: VarId, or_self: bool) -> bool {
        if or_self && a == d {
            return true;
        }
        let mut at = self.source[d.index()];
        while let Some(x) = at {
            if x == a {
                return true;
            }
            at = self.source[x.index()];
        }
        false
    }

    /// `varpathQ($x, $z)`: the relative path along the variable tree from
    /// `$x` down to `$z` (empty when equal).
    ///
    /// # Panics
    /// Panics when `$x` is not an ancestor-or-self of `$z`.
    pub fn varpath(&self, x: VarId, z: VarId) -> RelPath {
        let mut chain = Vec::new();
        let mut at = z;
        while at != x {
            let step = self.step[at.index()].expect("non-root variable has a step");
            chain.push(step);
            at = self.source[at.index()]
                .unwrap_or_else(|| panic!("varpath: {x:?} is not an ancestor of {z:?}"));
        }
        chain.reverse();
        RelPath::from_steps(chain.into_iter().map(step_to_pstep).collect())
    }

    /// All variables `$z` with `fsa($z) = $x`, in VarId order with `$x`
    /// itself first (the paper's suQ emits the own-scope update first).
    pub fn scoped_to(&self, x: VarId) -> Vec<VarId> {
        let mut out = Vec::new();
        if self.fsa[x.index()] == x {
            out.push(x);
        }
        for i in 0..self.fsa.len() {
            let z = VarId(i as u32);
            if z != x && self.fsa[i] == x {
                out.push(z);
            }
        }
        out
    }

    /// Number of variables (including `$root`).
    pub fn len(&self) -> usize {
        self.source.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Converts an XQ step into a projection path step (no predicate).
pub fn step_to_pstep(s: Step) -> PStep {
    use crate::ast::{Axis, NodeTest};
    use gcx_projection::{PAxis, PTest};
    let axis = match s.axis {
        Axis::Child => PAxis::Child,
        Axis::Descendant => PAxis::Descendant,
    };
    let test = match s.test {
        NodeTest::Tag(t) => PTest::Tag(t),
        NodeTest::Star => PTest::Star,
        NodeTest::Text => PTest::Text,
    };
    PStep::new(axis, test)
}

/// Runs variable analysis over a query.
pub fn analyze(q: &Query) -> Result<VarAnalysis, AnalysisError> {
    let n = q.vars.len();
    let mut a = VarAnalysis {
        source: vec![None; n],
        step: vec![None; n],
        enclosing: vec![Vec::new(); n],
        straight: vec![false; n],
        fsa: vec![VarId::ROOT; n],
        children: vec![Vec::new(); n],
    };
    let mut seen = vec![false; n];
    seen[VarId::ROOT.index()] = true;
    let mut stack: Vec<VarId> = Vec::new();
    collect(&q.body, &mut stack, &mut a, &mut seen)?;
    // Variable-tree children in id order.
    for i in 1..n {
        if let Some(p) = a.source[i] {
            a.children[p.index()].push(VarId(i as u32));
        }
    }
    // Straightness (Def. 3), computed in id order: sources are always
    // introduced before their dependents, so one pass suffices.
    a.straight[VarId::ROOT.index()] = true;
    for i in 1..n {
        let z = VarId(i as u32);
        let Some(y) = a.source[i] else {
            continue; // never bound (unused slot) — treated as non-straight
        };
        let enclosing_ok = a.enclosing[i].iter().all(|&u| a.is_ancestor(u, z, false));
        a.straight[i] = a.straight[y.index()] && enclosing_ok;
    }
    // fsa (Def. 4).
    for i in 1..n {
        let mut at = VarId(i as u32);
        while !a.straight[at.index()] {
            at = a.source[at.index()].expect("chain reaches $root, which is straight");
        }
        a.fsa[i] = at;
    }
    Ok(a)
}

fn collect(
    e: &Expr,
    stack: &mut Vec<VarId>,
    a: &mut VarAnalysis,
    seen: &mut [bool],
) -> Result<(), AnalysisError> {
    match e {
        Expr::For {
            var,
            source,
            step,
            body,
        } => {
            if seen[var.index()] {
                return Err(AnalysisError::DuplicateBinding(var.0));
            }
            seen[var.index()] = true;
            a.source[var.index()] = Some(*source);
            a.step[var.index()] = Some(*step);
            a.enclosing[var.index()] = stack.clone();
            stack.push(*var);
            collect(body, stack, a, seen)?;
            stack.pop();
            Ok(())
        }
        Expr::Element { content, .. } => collect(content, stack, a, seen),
        Expr::Sequence(items) => {
            for i in items {
                collect(i, stack, a, seen)?;
            }
            Ok(())
        }
        Expr::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect(then_branch, stack, a, seen)?;
            collect(else_branch, stack, a, seen)
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gcx_xml::TagInterner;

    fn analyzed(input: &str) -> (Query, VarAnalysis) {
        let mut tags = TagInterner::new();
        let q = parse(input, &mut tags).expect("parse");
        let a = analyze(&q).expect("analyze");
        (q, a)
    }

    fn var_by_name(q: &Query, name: &str) -> VarId {
        q.vars
            .ids()
            .find(|&v| q.vars.name(v) == name)
            .unwrap_or_else(|| panic!("no variable {name}"))
    }

    /// Paper Example 6, first half: $a and $b in Example 4's query are
    /// straight.
    #[test]
    fn example6_straight_vars() {
        let (q, a) =
            analyzed("<q>{ for $a in //a return <a>{ for $b in $a//b return <b/> }</a> }</q>");
        let va = var_by_name(&q, "a");
        let vb = var_by_name(&q, "b");
        assert!(a.straight[va.index()]);
        assert!(a.straight[vb.index()]);
        assert_eq!(a.fsa[va.index()], va);
        assert_eq!(a.fsa[vb.index()], vb);
    }

    /// Paper Example 6, second half: in the Fig. 9 query, $b is not
    /// straight and fsa($b) = $root.
    #[test]
    fn example6_fig9_not_straight() {
        let (q, a) =
            analyzed("<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>");
        let va = var_by_name(&q, "a");
        let vb = var_by_name(&q, "b");
        assert!(a.straight[va.index()]);
        assert!(
            !a.straight[vb.index()],
            "$b's enclosing loop binds $a, not an ancestor"
        );
        assert_eq!(a.fsa[vb.index()], VarId::ROOT);
        assert_eq!(
            a.source[vb.index()],
            Some(VarId::ROOT),
            "parVar($b) = $root"
        );
    }

    /// The intro query: $bib, $x, $b are all straight.
    #[test]
    fn intro_query_vars() {
        let (q, a) = analyzed(
            r#"<r>{ for $bib in /bib return
              ((for $x in $bib/* return if (not(exists($x/price))) then $x else ()),
               for $b in $bib/book return $b/title) }</r>"#,
        );
        for name in ["bib", "x", "b"] {
            let v = var_by_name(&q, name);
            assert!(a.straight[v.index()], "${name} is straight");
        }
        let vbib = var_by_name(&q, "bib");
        let vx = var_by_name(&q, "x");
        assert_eq!(a.source[vx.index()], Some(vbib));
        assert_eq!(a.children[vbib.index()].len(), 2);
    }

    #[test]
    fn varpath_concatenates_steps() {
        let mut tags = TagInterner::new();
        let q = parse(
            "<r>{ for $x in /a return for $y in $x//b return for $z in $y/c return $z }</r>",
            &mut tags,
        )
        .expect("parse");
        let a = analyze(&q).expect("analyze");
        let vx = var_by_name(&q, "x");
        let vz = var_by_name(&q, "z");
        let b = tags.get("b").unwrap();
        let c = tags.get("c").unwrap();
        let p = a.varpath(vx, vz);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].test, gcx_projection::PTest::Tag(b));
        assert_eq!(p.steps[0].axis, gcx_projection::PAxis::Descendant);
        assert_eq!(p.steps[1].test, gcx_projection::PTest::Tag(c));
        assert!(a.varpath(vx, vx).is_empty());
    }

    #[test]
    fn scoped_to_lists_own_var_first() {
        let (q, a) =
            analyzed("<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>");
        let va = var_by_name(&q, "a");
        let vb = var_by_name(&q, "b");
        let root_scope = a.scoped_to(VarId::ROOT);
        assert_eq!(root_scope, vec![VarId::ROOT, vb]);
        assert_eq!(a.scoped_to(va), vec![va]);
    }

    /// Nested non-straightness: a chain through a non-straight variable is
    /// itself non-straight.
    #[test]
    fn non_straight_propagates() {
        let (q, a) = analyzed(
            "<q>{ for $a in //a return for $b in //b return for $c in $b/c return $c }</q>",
        );
        let vb = var_by_name(&q, "b");
        let vc = var_by_name(&q, "c");
        assert!(!a.straight[vb.index()]);
        assert!(
            !a.straight[vc.index()],
            "$c's source $b is not straight (Def. 3 condition 1)"
        );
        assert_eq!(a.fsa[vc.index()], VarId::ROOT);
    }

    /// Deep straight chains stay straight.
    #[test]
    fn deep_straight_chain() {
        let (q, a) = analyzed(
            "<q>{ for $a in /a return for $b in $a/b return for $c in $b/c return $c }</q>",
        );
        for name in ["a", "b", "c"] {
            let v = var_by_name(&q, name);
            assert!(a.straight[v.index()]);
        }
    }
}
