//! Minimal raw-syscall bindings for `epoll(7)` and `eventfd(2)`.
//!
//! The workspace is offline and dependency-free, so there is no `libc`
//! crate to lean on; the four syscalls the readiness loop needs are
//! issued directly via inline assembly (x86_64 and aarch64 Linux ABIs).
//! Everything else — sockets, reads, writes — stays on `std::net`.
//!
//! Scope is deliberately tiny: create an epoll instance, register fds
//! with a `u64` token, wait for events, and signal/drain an eventfd.
//! `EINTR` is retried inside every wrapper (a signal during graceful
//! drain must never surface as an I/O error — see the accept/read/write
//! paths in `server.rs` for the same rule on socket syscalls).

use std::io;
use std::os::fd::RawFd;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i64 = 1;
const EPOLL_CTL_DEL: i64 = 2;

const EPOLL_CLOEXEC: i64 = 0o2000000;
const EFD_CLOEXEC: i64 = 0o2000000;
const EFD_NONBLOCK: i64 = 0o4000;

const EINTR: i64 = 4;
const EAGAIN: i64 = 11;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: i64 = 0;
    pub const WRITE: i64 = 1;
    pub const CLOSE: i64 = 3;
    pub const EPOLL_CTL: i64 = 233;
    pub const EPOLL_PWAIT: i64 = 281;
    pub const EVENTFD2: i64 = 290;
    pub const EPOLL_CREATE1: i64 = 291;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EVENTFD2: i64 = 19;
    pub const EPOLL_CREATE1: i64 = 20;
    pub const EPOLL_CTL: i64 = 21;
    pub const EPOLL_PWAIT: i64 = 22;
    pub const CLOSE: i64 = 57;
    pub const READ: i64 = 63;
    pub const WRITE: i64 = 64;
}

/// Raw 6-argument syscall. Returns the kernel's raw result: `>= 0` on
/// success, `-errno` on failure.
///
/// # Safety
/// The caller must pass arguments valid for the given syscall number —
/// in particular, pointer arguments must reference live memory of the
/// size the kernel expects for the call.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall6(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
    let ret: i64;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// See the x86_64 variant for the contract.
///
/// # Safety
/// Same as the x86_64 variant.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall6(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
    let ret: i64;
    core::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Unsupported targets compile (the workspace builds everywhere) but the
/// readiness loop fails at `Epoll::new()` with `ENOSYS`.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod nr {
    pub const READ: i64 = -1;
    pub const WRITE: i64 = -1;
    pub const CLOSE: i64 = -1;
    pub const EPOLL_CTL: i64 = -1;
    pub const EPOLL_PWAIT: i64 = -1;
    pub const EVENTFD2: i64 = -1;
    pub const EPOLL_CREATE1: i64 = -1;
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
unsafe fn syscall6(_nr: i64, _a1: i64, _a2: i64, _a3: i64, _a4: i64, _a5: i64, _a6: i64) -> i64 {
    -38 // ENOSYS
}

fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

fn close_fd(fd: RawFd) {
    // EINTR on close is not retried: Linux guarantees the fd is released
    // either way, and a retry could close a recycled descriptor.
    unsafe {
        syscall6(nr::CLOSE, i64::from(fd), 0, 0, 0, 0, 0);
    }
}

/// One `epoll_event`, kernel layout. Packed on x86_64 only, matching the
/// kernel's uapi definition (`EPOLL_PACKED`).
#[derive(Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub(crate) struct EpollEvent {
    pub(crate) events: u32,
    pub(crate) data: u64,
}

impl EpollEvent {
    pub(crate) fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

/// An epoll instance. Registered fds carry a `u64` token returned in
/// each event's `data`.
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                i64::from(self.fd),
                EPOLL_CTL_ADD,
                i64::from(fd),
                core::ptr::addr_of_mut!(ev) as i64,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Deregisters `fd`. Errors are ignored: closing the fd removes it
    /// from every epoll set anyway, so `del` is best-effort hygiene for
    /// fds about to be closed.
    pub(crate) fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent::zeroed(); // pre-2.6.9 kernels reject NULL
        unsafe {
            syscall6(
                nr::EPOLL_CTL,
                i64::from(self.fd),
                EPOLL_CTL_DEL,
                i64::from(fd),
                core::ptr::addr_of_mut!(ev) as i64,
                0,
                0,
            );
        }
    }

    /// Waits for events. `timeout_ms < 0` blocks indefinitely; `0` polls.
    /// `EINTR` is retried with the full timeout (callers re-derive their
    /// timer deadlines on every return, so a stretched wait only delays
    /// timers, never loses a wakeup).
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    i64::from(self.fd),
                    events.as_mut_ptr() as i64,
                    events.len() as i64,
                    i64::from(timeout_ms),
                    0, // sigmask: NULL — plain epoll_wait semantics
                    8, // sigsetsize (ignored with a NULL mask)
                )
            };
            if ret == -EINTR {
                continue;
            }
            return check(ret).map(|n| n as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// A non-blocking eventfd: the cross-thread wake source for a worker
/// parked in `epoll_wait`. `signal` is cheap enough for evaluator hot
/// paths (one `write(2)`); the counter semantics coalesce any number of
/// signals into one wakeup.
pub(crate) struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub(crate) fn new() -> io::Result<EventFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd { fd: fd as RawFd })
    }

    pub(crate) fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wakes any epoll waiter watching this fd. `EAGAIN` (counter
    /// saturated) is ignored — a wakeup is already pending.
    pub(crate) fn signal(&self) {
        let one: u64 = 1;
        loop {
            let ret = unsafe {
                syscall6(
                    nr::WRITE,
                    i64::from(self.fd),
                    core::ptr::addr_of!(one) as i64,
                    8,
                    0,
                    0,
                    0,
                )
            };
            if ret != -EINTR {
                return; // success, EAGAIN, or a dead fd — all terminal
            }
        }
    }

    /// Resets the counter so the (level-triggered) fd stops reading as
    /// ready. Pending signals landing after the drain re-arm it.
    pub(crate) fn drain(&self) {
        let mut buf: u64 = 0;
        loop {
            let ret = unsafe {
                syscall6(
                    nr::READ,
                    i64::from(self.fd),
                    core::ptr::addr_of_mut!(buf) as i64,
                    8,
                    0,
                    0,
                    0,
                )
            };
            if ret != -EINTR {
                return; // drained, or EAGAIN (nothing pending)
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

// Suppress the unused-constant lint on targets where the stub module is
// compiled in.
#[allow(dead_code)]
const _: i64 = EAGAIN;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn eventfd_signals_epoll_waiter() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];

        // Nothing signalled: a zero timeout polls and returns empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.signal();
        ev.signal(); // coalesces into the same readiness
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data; // copy out: packed fields can't be referenced
        assert_eq!(data, 7);
        let bits = events[0].events;
        assert_ne!(bits & EPOLLIN, 0);

        // Level-triggered: still ready until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Signals after a drain re-arm the fd.
        ev.signal();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
    }

    #[test]
    fn wait_timeout_expires_without_events() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent::zeroed(); 1];
        let start = Instant::now();
        assert_eq!(ep.wait(&mut events, 50).unwrap(), 0);
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(40), "waited {waited:?}");
    }

    #[test]
    fn signal_from_another_thread_wakes_a_blocked_wait() {
        let ep = Epoll::new().unwrap();
        let ev = std::sync::Arc::new(EventFd::new().unwrap());
        ep.add(ev.raw(), EPOLLIN, 9).unwrap();
        let signaller = {
            let ev = ev.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                ev.signal();
            })
        };
        let mut events = [EpollEvent::zeroed(); 1];
        let start = Instant::now();
        let n = ep.wait(&mut events, 5000).unwrap();
        assert_eq!(n, 1);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "signal must cut the wait short"
        );
        signaller.join().unwrap();
    }

    #[test]
    fn del_then_wait_sees_nothing() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 3).unwrap();
        ev.signal();
        ep.del(ev.raw());
        let mut events = [EpollEvent::zeroed(); 1];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
