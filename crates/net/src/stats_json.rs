//! `/stats` JSON rendering (schema `gcx-net-stats/1`).
//!
//! Hand-rolled like gcx-bench's report module — the workspace is offline,
//! no serde. The document has four sections:
//!
//! * `server` — front-end counters and the (fixed) thread topology;
//! * `service` — compiled-query cache statistics;
//! * `budget` — the shared [`gcx_service::MemoryBudget`], or `null`;
//! * `sessions` — **live** per-session buffer statistics sampled from the
//!   running engines (current/peak buffered nodes and bytes, text-arena
//!   bytes), the observability the paper's buffer-minimization claims
//!   deserve: you can watch the buffer stay small mid-stream.

use crate::server::ServerShared;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full `/stats` document.
pub(crate) fn render(shared: &ServerShared) -> String {
    let c = &shared.counters;
    let service_stats = shared.service.stats();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"schema\": \"gcx-net-stats/1\",\n");

    let sessions = shared.sessions.lock().expect("registry lock");
    let _ = writeln!(
        out,
        "  \"server\": {{ \"workers\": {}, \"evaluators\": {}, \"threads\": {}, \
         \"active_sessions\": {}, \"connections\": {}, \"requests\": {}, \
         \"sessions_completed\": {}, \"sessions_failed\": {}, \
         \"sessions_output_capped\": {}, \"bytes_in\": {}, \"bytes_out\": {}, \
         \"tokens_read_total\": {}, \"peak_nodes_max\": {} }},",
        shared.workers,
        shared.evaluators,
        1 + shared.workers + shared.evaluators,
        sessions.len(),
        c.connections.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.sessions_completed.load(Ordering::Relaxed),
        c.sessions_failed.load(Ordering::Relaxed),
        c.sessions_output_capped.load(Ordering::Relaxed),
        c.bytes_in.load(Ordering::Relaxed),
        c.bytes_out.load(Ordering::Relaxed),
        c.tokens_read_total.load(Ordering::Relaxed),
        c.peak_nodes_max.load(Ordering::Relaxed),
    );

    let _ = writeln!(
        out,
        "  \"service\": {{ \"cache_hits\": {}, \"cache_misses\": {}, \
         \"cache_evictions\": {}, \"sessions_opened\": {}, \"cached_queries\": {}, \
         \"registered_queries\": {}, \"interner_rebuilds\": {}, \
         \"master_interner_len\": {} }},",
        service_stats.cache_hits,
        service_stats.cache_misses,
        service_stats.cache_evictions,
        service_stats.sessions_opened,
        shared.service.cached_queries(),
        shared.queries.len(),
        service_stats.interner_rebuilds,
        shared.service.master_interner_len(),
    );

    match shared.service.budget() {
        Some(b) => {
            let _ = writeln!(
                out,
                "  \"budget\": {{ \"limit\": {}, \"used\": {}, \"engine_used\": {} }},",
                b.limit(),
                b.used(),
                b.engine_used()
            );
        }
        None => out.push_str("  \"budget\": null,\n"),
    }

    out.push_str("  \"sessions\": [\n");
    let mut ids: Vec<_> = sessions.keys().copied().collect();
    ids.sort_unstable();
    for (i, id) in ids.iter().enumerate() {
        let entry = &sessions[id];
        let (live_nodes, peak_nodes, live_bytes, peak_bytes, text_arena, created, purged) =
            entry.live.snapshot();
        let _ = write!(
            out,
            "    {{ \"id\": {id}, \"query\": \"{}\", \"peer\": \"{}\", \
             \"age_ms\": {}, \"buffer\": {{ \"live_nodes\": {live_nodes}, \
             \"peak_nodes\": {peak_nodes}, \"live_bytes\": {live_bytes}, \
             \"peak_bytes\": {peak_bytes}, \"text_arena_bytes\": {text_arena}, \
             \"nodes_created\": {created}, \"nodes_purged\": {purged} }} }}",
            esc(&entry.query_label),
            esc(&entry.peer),
            entry.started.elapsed().as_millis(),
        );
        out.push_str(if i + 1 < ids.len() { ",\n" } else { "\n" });
    }
    drop(sessions);
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("plain"), "plain");
    }
}
