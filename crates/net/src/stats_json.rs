//! `/stats` JSON rendering (schema `gcx-net-stats/5`).
//!
//! Hand-rolled like gcx-bench's report module — the workspace is offline,
//! no serde. The document's main sections:
//!
//! * `server` — front-end counters and the (fixed) thread topology;
//! * `scheduler` — the evaluator pool's ready-queue scheduler (slices
//!   run, session yields, queue depth) plus the connection workers'
//!   `epoll_wait` wakeup count (added in `/5`);
//! * `service` — compiled-query cache statistics;
//! * `budget` — the shared [`gcx_service::MemoryBudget`], or `null`;
//! * `latency` — quantile summaries (count/mean/p50/p90/p99/max, µs) of
//!   every histogram the server records: per-class request latency,
//!   TTFB, connection queue wait, sampled engine stages, and session
//!   lifecycle phases (added in `/2`; `GET /metrics` exposes the same
//!   histograms with full buckets);
//! * `sessions` — **live** per-session buffer statistics sampled from the
//!   running engines (current/peak buffered nodes and bytes, text-arena
//!   bytes), the observability the paper's buffer-minimization claims
//!   deserve: you can watch the buffer stay small mid-stream.
//!
//! The session registry lock is held only long enough to *copy* each
//! entry's scalars into a local vector; all string formatting happens
//! unlocked, so a slow `/stats` render never stalls request dispatch
//! (which takes the same lock to register/unregister sessions).

use crate::server::ServerShared;
use gcx_obs::LatencyHistogram;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Appends `s` to `out` with JSON string escaping, allocation-free.
/// Also used for `/metrics` label values: the escapes Prometheus
/// requires (`\\`, `\"`, `\n`) are exactly JSON's.
pub(crate) fn esc_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends one `"name": { count, mean_us, p50_us, … }` summary object.
fn latency_summary(out: &mut String, name: &str, h: &LatencyHistogram) {
    let s = h.snapshot();
    let _ = write!(
        out,
        "\"{name}\": {{ \"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \
         \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {} }}",
        s.count,
        s.mean_nanos() / 1_000,
        s.p50() / 1_000,
        s.p90() / 1_000,
        s.p99() / 1_000,
        s.max_nanos / 1_000,
    );
}

fn latency_group<'a>(
    out: &mut String,
    name: &str,
    members: impl IntoIterator<Item = (&'a str, &'a LatencyHistogram)>,
    trailing_comma: bool,
) {
    let _ = write!(out, "    \"{name}\": {{ ");
    for (i, (member, h)) in members.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        latency_summary(out, member, h);
    }
    out.push_str(if trailing_comma { " },\n" } else { " }\n" });
}

/// One session row copied out of the registry under its lock.
struct SessionRow {
    id: u64,
    query_label: String,
    peer: String,
    age_ms: u128,
    live: (usize, usize, usize, usize, usize, u64, u64),
}

/// Renders the full `/stats` document.
pub(crate) fn render(shared: &ServerShared) -> String {
    let c = &shared.counters;
    let m = &shared.metrics;
    let service_stats = shared.service.stats();

    // Snapshot the registry first: scalars only, no formatting under the
    // lock shared with the request path.
    let mut rows: Vec<SessionRow> = {
        let sessions = shared.sessions.lock().expect("registry lock");
        sessions
            .iter()
            .map(|(&id, entry)| SessionRow {
                id,
                query_label: entry.query_label.clone(),
                peer: entry.peer.clone(),
                age_ms: entry.started.elapsed().as_millis(),
                live: entry.live.snapshot(),
            })
            .collect()
    };
    rows.sort_unstable_by_key(|r| r.id);

    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"schema\": \"gcx-net-stats/5\",\n");

    let _ = writeln!(
        out,
        "  \"server\": {{ \"workers\": {}, \"evaluators\": {}, \"threads\": {}, \
         \"uptime_s\": {}, \
         \"active_sessions\": {}, \"open_connections\": {}, \"connections\": {}, \
         \"requests\": {}, \"sessions_completed\": {}, \"sessions_failed\": {}, \
         \"sessions_output_capped\": {}, \"bytes_in\": {}, \"bytes_out\": {}, \
         \"tokens_read_total\": {}, \"peak_nodes_max\": {}, \
         \"connections_shed\": {}, \"accept_errors\": {}, \
         \"evaluator_panics\": {} }},",
        shared.workers,
        shared.evaluators,
        1 + shared.workers + shared.evaluators,
        shared.started.elapsed().as_secs(),
        rows.len(),
        shared.open_connections(),
        c.connections.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.sessions_completed.load(Ordering::Relaxed),
        c.sessions_failed.load(Ordering::Relaxed),
        c.sessions_output_capped.load(Ordering::Relaxed),
        c.bytes_in.load(Ordering::Relaxed),
        c.bytes_out.load(Ordering::Relaxed),
        c.tokens_read_total.load(Ordering::Relaxed),
        c.peak_nodes_max.load(Ordering::Relaxed),
        c.connections_shed.load(Ordering::Relaxed),
        c.accept_errors.load(Ordering::Relaxed),
        shared.pool.panics(),
    );

    let _ = writeln!(
        out,
        "  \"scheduler\": {{ \"evaluators\": {}, \"steps\": {}, \"yields\": {}, \
         \"queued\": {}, \"active\": {}, \"panics\": {}, \"epoll_wakeups\": {} }},",
        shared.pool.size(),
        shared.pool.steps(),
        shared.pool.yields(),
        shared.pool.queued(),
        shared.pool.active(),
        shared.pool.panics(),
        c.epoll_wakeups.load(Ordering::Relaxed),
    );

    let _ = writeln!(
        out,
        "  \"service\": {{ \"cache_hits\": {}, \"cache_misses\": {}, \
         \"cache_evictions\": {}, \"sessions_opened\": {}, \"cached_queries\": {}, \
         \"registered_queries\": {}, \"interner_rebuilds\": {}, \
         \"master_interner_len\": {} }},",
        service_stats.cache_hits,
        service_stats.cache_misses,
        service_stats.cache_evictions,
        service_stats.sessions_opened,
        shared.service.cached_queries(),
        shared.queries.len(),
        service_stats.interner_rebuilds,
        shared.service.master_interner_len(),
    );

    match shared.service.budget() {
        Some(b) => {
            let _ = writeln!(
                out,
                "  \"budget\": {{ \"limit\": {}, \"used\": {}, \"engine_used\": {} }},",
                b.limit(),
                b.used(),
                b.engine_used()
            );
        }
        None => out.push_str("  \"budget\": null,\n"),
    }

    let rec = &shared.recorder;
    let _ = writeln!(
        out,
        "  \"tracing\": {{ \"traces_captured\": {}, \"spans_dropped\": {}, \
         \"slow_requests\": {}, \"sample_every\": {} }},",
        rec.traces_captured.get(),
        rec.spans_dropped.get(),
        rec.slow_requests.get(),
        shared.trace_sample_every,
    );

    out.push_str("  \"latency\": {\n");
    latency_group(&mut out, "requests", m.request_classes(), true);
    latency_group(&mut out, "ttfb", [("all", &m.ttfb)], true);
    latency_group(&mut out, "queue_wait", [("all", &m.queue_wait)], true);
    latency_group(&mut out, "engine_stages", m.engine_stages.stages(), true);
    latency_group(&mut out, "session", m.sessions.phases(), false);
    out.push_str("  },\n");

    out.push_str("  \"sessions\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let (live_nodes, peak_nodes, live_bytes, peak_bytes, text_arena, created, purged) =
            row.live;
        let _ = write!(out, "    {{ \"id\": {}, \"query\": \"", row.id);
        esc_into(&mut out, &row.query_label);
        out.push_str("\", \"peer\": \"");
        esc_into(&mut out, &row.peer);
        let _ = write!(
            out,
            "\", \"age_ms\": {}, \"buffer\": {{ \"live_nodes\": {live_nodes}, \
             \"peak_nodes\": {peak_nodes}, \"live_bytes\": {live_bytes}, \
             \"peak_bytes\": {peak_bytes}, \"text_arena_bytes\": {text_arena}, \
             \"nodes_created\": {created}, \"nodes_purged\": {purged} }} }}",
            row.age_ms,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> String {
        let mut out = String::new();
        esc_into(&mut out, s);
        out
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("ctl\u{1}"), "ctl\\u0001");
    }

    #[test]
    fn latency_summary_shape() {
        let h = LatencyHistogram::new();
        h.record_nanos(1_500_000); // 1.5 ms
        let mut out = String::new();
        latency_summary(&mut out, "total", &h);
        assert!(out.starts_with("\"total\": { \"count\": 1,"), "{out}");
        assert!(out.contains("\"p50_us\": 1500"), "{out}");
        assert!(out.contains("\"max_us\": 1500"), "{out}");
    }
}
