//! A minimal blocking HTTP/1.1 client over `std::net` — just enough to
//! test and benchmark the server from the same dependency-free world:
//! `GET`, `POST` with `Content-Length`, **streamed chunked uploads**
//! ([`PostStream`]) where the response body arrives while the request
//! body is still being written, and **keep-alive connection reuse**
//! ([`HttpClient`]): responses are read to their framing boundary
//! (`Content-Length` or the chunked terminator, never to EOF), bytes of
//! a pipelined successor are carried over, and one TCP connection serves
//! many requests.

use crate::http::{self, ChunkedDecoder};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Per-request wall-clock timings, as measured by the client (the other
/// side of the server's own histograms — see `GET /metrics`).
#[derive(Debug, Clone, Copy)]
pub struct RequestTiming {
    /// Request sent → first response bytes observed (time to first byte).
    /// For pipelined keep-alive requests whose response head was already
    /// carried over from a previous read, this is effectively zero.
    pub ttfb: Duration,
    /// Request sent → response fully read.
    pub total: Duration,
}

/// A fully read response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    /// Lowercased header names, in order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    let mut stream = connect(addr)?;
    let head = format!("GET {path} HTTP/1.1\r\nHost: gcx\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    read_response(&mut stream)
}

/// `POST path` with a `Content-Length` body.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
    post_timed(addr, path, body).map(|(resp, _)| resp)
}

/// As [`post`], also reporting [`RequestTiming`]. The clock starts
/// before the connect: on a fresh (`Connection: close`) request the TCP
/// handshake *is* part of the per-request latency.
pub fn post_timed(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &[u8],
) -> io::Result<(HttpResponse, RequestTiming)> {
    let start = Instant::now();
    let mut stream = connect(addr)?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: gcx\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut carry = Vec::new();
    let (resp, first_byte) = read_response_buffered_timed(&mut stream, &mut carry)?;
    let timing = RequestTiming {
        ttfb: first_byte.duration_since(start),
        total: start.elapsed(),
    };
    Ok((resp, timing))
}

/// An in-flight chunked `POST`: send the body piecewise, then collect the
/// response. Dropping it without [`PostStream::finish`] is a mid-stream
/// client disconnect (the server must cancel the session cleanly).
pub struct PostStream {
    stream: TcpStream,
}

impl PostStream {
    /// Opens the connection and sends the request head
    /// (`Transfer-Encoding: chunked`).
    pub fn open(addr: impl ToSocketAddrs, path: &str) -> io::Result<PostStream> {
        let mut stream = connect(addr)?;
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: gcx\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        Ok(PostStream { stream })
    }

    /// Sends one body chunk (empty slices are skipped — an empty chunk
    /// would terminate the body).
    pub fn send_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let mut wire = Vec::with_capacity(data.len() + 16);
        http::encode_chunk(data, &mut wire);
        self.stream.write_all(&wire)
    }

    /// Terminates the body and reads the full response.
    pub fn finish(mut self) -> io::Result<HttpResponse> {
        self.stream.write_all(http::FINAL_CHUNK)?;
        read_response(&mut self.stream)
    }

    /// Streams `chunks` as the body while a second thread concurrently
    /// reads the response — the shape of a real streaming client (curl),
    /// which never lets a large response back up while it uploads. Use
    /// this when the response is big relative to socket buffers;
    /// [`PostStream::finish`] alone would deadlock against the server's
    /// output backpressure.
    pub fn stream_and_finish<I>(mut self, chunks: I) -> io::Result<HttpResponse>
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let reader_stream = self.stream.try_clone()?;
        let reader = std::thread::spawn(move || {
            let mut stream = reader_stream;
            read_response(&mut stream)
        });
        let mut write_result = Ok(());
        for chunk in chunks {
            if let Err(e) = self.send_chunk(&chunk) {
                write_result = Err(e);
                break;
            }
        }
        if write_result.is_ok() {
            write_result = self.stream.write_all(http::FINAL_CHUNK);
        }
        let response = reader
            .join()
            .map_err(|_| io::Error::other("response reader thread panicked"))?;
        // A write error (e.g. the server aborted) usually comes with a
        // more useful response/read error; prefer that one.
        match (response, write_result) {
            (Ok(r), _) => Ok(r),
            (Err(e), _) => Err(e),
        }
    }
}

fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // A generous safety net so a wedged server fails tests instead of
    // hanging them.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    Ok(stream)
}

/// Reads and parses a full response (status line, headers, body framed by
/// `Content-Length`, chunked coding, or connection close). A chunked body
/// cut off before its terminator yields `UnexpectedEof` — that is how the
/// server signals a mid-stream failure after the head went out.
pub fn read_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let mut carry = Vec::new();
    read_response_buffered(stream, &mut carry)
}

/// As [`read_response`], with an explicit carry-over buffer: leftover
/// bytes beyond the response's framing boundary (the head of a pipelined
/// successor) stay in `carry` for the next call — the keep-alive reader.
/// The body of a response with neither `Content-Length` nor chunked
/// framing runs to EOF (and the connection is spent).
pub fn read_response_buffered(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> io::Result<HttpResponse> {
    read_response_buffered_timed(stream, carry).map(|(resp, _)| resp)
}

/// As [`read_response_buffered`], also reporting the instant the first
/// bytes of this response were observed (the TTFB mark). Bytes already
/// sitting in `carry` from a previous read count as observed *now* — a
/// pipelined response that has fully arrived has no first-byte wait left.
pub fn read_response_buffered_timed(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> io::Result<(HttpResponse, Instant)> {
    let mut scratch = [0u8; 16 * 1024];
    let mut first_byte = if carry.is_empty() {
        None
    } else {
        Some(Instant::now())
    };
    loop {
        let head_end = loop {
            if let Some(end) = http::find_head_end(carry) {
                break end;
            }
            let n = stream.read(&mut scratch)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            first_byte.get_or_insert_with(Instant::now);
            carry.extend_from_slice(&scratch[..n]);
        };
        let (status, headers) = parse_response_head(&carry[..head_end])?;
        carry.drain(..head_end);
        if (100..200).contains(&status) {
            // Informational (e.g. `100 Continue`): drop it, keep any
            // bytes read past it, and read the real response. The TTFB
            // mark stands — an informational head is still the server's
            // first byte (matching the server's own TTFB accounting).
            continue;
        }
        let resp = read_body(stream, status, headers, carry)?;
        let first = first_byte.expect("head parsed implies bytes were observed");
        return Ok((resp, first));
    }
}

fn read_body(
    stream: &mut TcpStream,
    status: u16,
    headers: Vec<(String, String)>,
    carry: &mut Vec<u8>,
) -> io::Result<HttpResponse> {
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    let chunked =
        header("transfer-encoding").is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    let mut body = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    if chunked {
        let mut dec = ChunkedDecoder::new();
        loop {
            if !carry.is_empty() {
                let used = dec
                    .decode(carry, &mut body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                carry.drain(..used);
            }
            if dec.is_done() {
                break; // leftover bytes in `carry` belong to the successor
            }
            let n = stream.read(&mut scratch)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "chunked response truncated (server aborted mid-stream)",
                ));
            }
            carry.extend_from_slice(&scratch[..n]);
        }
    } else if let Some(len) = header("content-length") {
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
        while carry.len() < len {
            let n = stream.read(&mut scratch)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "response body truncated",
                ));
            }
            carry.extend_from_slice(&scratch[..n]);
        }
        body.extend_from_slice(&carry[..len]);
        carry.drain(..len);
    } else {
        // Read to EOF (Connection: close framing).
        body = std::mem::take(carry);
        loop {
            let n = stream.read(&mut scratch)?;
            if n == 0 {
                break;
            }
            body.extend_from_slice(&scratch[..n]);
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// A persistent keep-alive connection: many requests over one socket,
/// responses read to their framing boundary. Also speaks pipelining —
/// queue several requests with [`HttpClient::send_get`]/
/// [`HttpClient::send_post`], then collect the responses in order with
/// [`HttpClient::read_response`].
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response's framing boundary.
    carry: Vec<u8>,
    /// A response carried `Connection: close` (or close-delimited
    /// framing): the server is shutting the socket, further sends would
    /// fail confusingly mid-write.
    closed: bool,
}

impl HttpClient {
    /// Opens the connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        Ok(HttpClient {
            stream: connect(addr)?,
            carry: Vec::new(),
            closed: false,
        })
    }

    /// True once the server has announced it is closing this connection
    /// (e.g. its per-connection request cap was reached) — reconnect to
    /// continue.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    fn check_open(&self) -> io::Result<()> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "server closed this connection (Connection: close); reconnect to continue",
            ));
        }
        Ok(())
    }

    /// Queues a `GET` without reading the response (pipelining half).
    pub fn send_get(&mut self, path: &str) -> io::Result<()> {
        self.check_open()?;
        let head = format!("GET {path} HTTP/1.1\r\nHost: gcx\r\n\r\n");
        self.stream.write_all(head.as_bytes())
    }

    /// Queues a `POST` with a `Content-Length` body without reading the
    /// response (pipelining half).
    pub fn send_post(&mut self, path: &str, body: &[u8]) -> io::Result<()> {
        self.check_open()?;
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: gcx\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)
    }

    /// Reads the next queued response (in request order).
    pub fn read_response(&mut self) -> io::Result<HttpResponse> {
        let resp = read_response_buffered(&mut self.stream, &mut self.carry)?;
        self.note_framing(&resp);
        Ok(resp)
    }

    /// Records whether the response announced (or implied, by
    /// close-delimited framing) that the server is closing the socket.
    fn note_framing(&mut self, resp: &HttpResponse) {
        let close = resp
            .header("connection")
            .is_some_and(|v| v.to_ascii_lowercase().contains("close"));
        let unframed = resp.header("content-length").is_none()
            && !resp
                .header("transfer-encoding")
                .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
        if close || unframed {
            self.closed = true;
        }
    }

    /// `GET path` over the persistent connection.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.send_get(path)?;
        self.read_response()
    }

    /// `POST path` with a `Content-Length` body over the persistent
    /// connection.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        self.send_post(path, body)?;
        self.read_response()
    }

    /// As [`HttpClient::post`], also reporting [`RequestTiming`] for this
    /// request (connection setup is *not* included — the socket already
    /// exists, which is the point of keep-alive).
    pub fn post_timed(
        &mut self,
        path: &str,
        body: &[u8],
    ) -> io::Result<(HttpResponse, RequestTiming)> {
        let start = Instant::now();
        self.send_post(path, body)?;
        let (resp, first_byte) = read_response_buffered_timed(&mut self.stream, &mut self.carry)?;
        self.note_framing(&resp);
        let timing = RequestTiming {
            ttfb: first_byte.duration_since(start),
            total: start.elapsed(),
        };
        Ok((resp, timing))
    }

    /// Raw stream access (tests that need half-close etc.).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn parse_response_head(bytes: &[u8]) -> io::Result<(u16, Vec<(String, String)>)> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}
