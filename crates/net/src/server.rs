//! The streaming HTTP front-end: acceptor, epoll-driven connection
//! workers, session registry.
//!
//! ## Thread topology (fixed at bind time)
//!
//! ```text
//!   acceptor ── round-robin ──► N connection workers, each an
//!               (eventfd +      epoll(7) readiness loop over its
//!                inbox)         own set of connections
//!                                    │ try_feed / drain
//!                                    ▼
//!                            M evaluator-pool threads
//!                            (gcx-service EvaluatorPool)
//! ```
//!
//! `1 + N + M` threads total, **independent of how many sessions are
//! open**: connection workers never block on any single socket — sockets
//! are non-blocking and sessions are driven through
//! [`StreamSession::try_feed`], so a backpressured or slow connection
//! simply sleeps in its worker's epoll set while others are served.
//! A worker parks in `epoll_wait` until one of exactly three wake
//! sources fires: socket readiness (edge-triggered epoll events),
//! session progress (evaluators signal the worker's eventfd through each
//! session's `progress_waker`), or the nearest idle/keep-alive deadline.
//! There is **no time-based polling** in the connection path — an idle
//! server sits in `epoll_wait` with an infinite timeout and burns no
//! CPU. Evaluators run on the shared [`EvaluatorPool`]; sessions beyond
//! its size queue (their input simply buffers until a pool thread frees
//! up). This replaces the one-thread-per-session model `StreamSession`
//! started with, and the run-queue + condvar-poll worker pool that
//! followed it.
//!
//! ## Endpoints
//!
//! * `POST /query?xq=<urlencoded XQ>` (or `?name=<registered query>`) —
//!   the request body is the XML document, `Content-Length` or chunked;
//!   the response streams the result as a chunked body while the
//!   document is still being uploaded. Constant memory end to end.
//! * `GET /stats` — JSON: server counters, service cache stats, memory
//!   budget, and **live per-session buffer statistics** sampled from the
//!   engines mid-run.
//! * `GET /metrics` — Prometheus text exposition of the same planes.
//! * `GET /trace` — recent kept request traces as Chrome trace-event
//!   JSON (Perfetto-loadable); see [`gcx_obs::FlightRecorder`].
//! * `GET /healthz` — liveness probe.

use crate::epoll::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::http;
use crate::metrics::{self, NetMetrics, ReqClass};
use crate::stats_json;
use gcx_buffer::LiveBufferStats;
use gcx_obs::{log_debug, log_warn, FlightRecorder, SpanKind};
use gcx_service::{EvaluatorPool, QueryService, ServiceConfig, StreamSession, TryFeed};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-worker mailbox: the only cross-thread channel into a connection
/// worker. The acceptor hands fresh connections to `inbox`; evaluator
/// threads report session progress to `progressed` (via each session's
/// `progress_waker`). Both pushes signal `wake`, the eventfd the
/// worker's epoll set watches — so a worker parked in `epoll_wait` wakes
/// immediately, and a busy worker picks the messages up at its next
/// loop turn. eventfd counter semantics coalesce any number of signals
/// into one wakeup.
pub(crate) struct WorkerMailbox {
    /// Wakes the worker out of `epoll_wait` (registered level-triggered
    /// under [`WAKE_TOKEN`], so a pending signal keeps the next wait
    /// from blocking even if it lands mid-loop).
    wake: EventFd,
    /// Freshly accepted connections handed over by the acceptor.
    inbox: Mutex<Vec<(TcpStream, String, OpenGuard)>>,
    /// Tokens of connections whose session made progress (consumed
    /// input, produced output, or terminated).
    progressed: Mutex<Vec<u64>>,
}

impl WorkerMailbox {
    fn new() -> std::io::Result<WorkerMailbox> {
        Ok(WorkerMailbox {
            wake: EventFd::new()?,
            inbox: Mutex::new(Vec::new()),
            progressed: Mutex::new(Vec::new()),
        })
    }

    fn submit(&self, stream: TcpStream, peer: String, open: OpenGuard) {
        self.inbox
            .lock()
            .expect("worker inbox lock")
            .push((stream, peer, open));
        self.wake.signal();
    }

    /// Session-progress wakeup, called from evaluator threads. One
    /// `Vec::push` plus (at most) one `write(2)` on the eventfd — cheap
    /// enough for the evaluator hot path.
    pub(crate) fn note_progress(&self, token: u64) {
        self.progressed
            .lock()
            .expect("worker progressed lock")
            .push(token);
        self.wake.signal();
    }
}

/// Front-end configuration.
pub struct NetConfig {
    /// Connection workers (socket I/O + session driving). Default 4.
    pub workers: usize,
    /// Evaluator-pool threads (concurrent evaluations). Default 8, or
    /// `GCX_EVALUATORS` when set — a test/CI hook (like
    /// `GCX_SCAN_KERNEL`) that constrains the scheduler without
    /// threading a parameter through every test; explicitly set values
    /// are never overridden.
    pub evaluators: usize,
    /// The underlying query service (cache, budget, engine options).
    pub service: ServiceConfig,
    /// Named queries addressable as `POST /query?name=<name>`.
    pub queries: Vec<(String, String)>,
    /// Charge each session's engine buffer against the service's memory
    /// budget (hard per-session failure instead of unbounded growth).
    /// Only effective when `service.memory_budget` is set. Default true.
    pub charge_engine_buffer: bool,
    /// Maximum request-head size. Default 16 KiB.
    pub max_head_bytes: usize,
    /// Socket read size per step. Default 64 KiB.
    pub io_chunk_bytes: usize,
    /// Connections making no progress for this long *mid-request* are
    /// dropped (slow clients must not pin evaluator threads forever).
    /// Default 30 s.
    pub idle_timeout: Duration,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server closes it. Default 15 s.
    pub keep_alive_timeout: Duration,
    /// Requests served over one connection before the server answers
    /// with `Connection: close` (bounds per-connection state lifetime).
    /// Default 1000.
    pub max_requests_per_conn: u64,
    /// Per-session output high-water mark: above this many undrained
    /// result bytes the evaluator parks (backpressure). Default 1 MiB.
    pub output_high_water: usize,
    /// Per-session output hard cap: the session fails cleanly (422 or
    /// aborted stream, counted in `/stats` as `sessions_output_capped`)
    /// if undrained output ever exceeds this. The evaluator parks at
    /// `output_high_water`, so the cap only trips when configured at or
    /// below the high-water mark; a client that stops draining is
    /// instead detected at the connection level — no progress for
    /// `idle_timeout` with response bytes stuck in the send buffer —
    /// and counted under the same counter. Default 4 MiB.
    pub output_max_bytes: usize,
    /// Admission cap: with this many connections already open, new ones
    /// are answered `503 Service Unavailable` + `Retry-After` straight
    /// from the acceptor instead of queueing behind a saturated server
    /// (counted in `/stats` as `connections_shed`). Default 4096.
    pub max_connections: usize,
    /// Overload deadline for the accept→first-worker-drive queue wait: a
    /// connection that waited longer is shed with a fast `503` +
    /// `Retry-After` rather than served at collapsed latency. Default 2 s.
    pub queue_wait_deadline: Duration,
    /// Head-based trace sampling: every `trace_sample_every`th query
    /// request is kept in the flight recorder (the first always is).
    /// Slow requests are kept regardless (see `slow_request_threshold`).
    /// 0 disables head sampling. Default 64.
    pub trace_sample_every: u64,
    /// Requests slower than this are kept in the flight recorder
    /// retroactively and logged (one structured warn line with trace ID
    /// and per-stage breakdown). `None` disables. Default `None`; the
    /// `gcx serve` binary wires `GCX_SLOW_MS` / `--slow-ms` here.
    pub slow_request_threshold: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            evaluators: env_evaluators().unwrap_or(8),
            service: ServiceConfig::default(),
            queries: Vec::new(),
            charge_engine_buffer: true,
            max_head_bytes: 16 * 1024,
            io_chunk_bytes: 64 * 1024,
            idle_timeout: Duration::from_secs(30),
            keep_alive_timeout: Duration::from_secs(15),
            max_requests_per_conn: 1000,
            output_high_water: 1024 * 1024,
            output_max_bytes: 4 * 1024 * 1024,
            max_connections: 4096,
            queue_wait_deadline: Duration::from_secs(2),
            trace_sample_every: 64,
            slow_request_threshold: None,
        }
    }
}

/// `GCX_EVALUATORS` override for the *default* evaluator count, so CI
/// can run the whole net suite against a constrained scheduler (e.g.
/// one evaluator thread). Configs that set `evaluators` explicitly are
/// unaffected.
fn env_evaluators() -> Option<usize> {
    std::env::var("GCX_EVALUATORS")
        .ok()?
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// Server-level counters (monotonic; `active_sessions` is derived from
/// the registry instead).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// TCP connections accepted. With keep-alive, `requests` outgrows
    /// this — the whole point of not tearing the world down per request.
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub sessions_completed: AtomicU64,
    pub sessions_failed: AtomicU64,
    /// Sessions failed specifically because the client stopped draining:
    /// either the per-session output cap (`output_max_bytes`) tripped,
    /// or the connection idled out with response bytes stuck in its send
    /// buffer while the session sat parked on output backpressure.
    pub sessions_output_capped: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Sum of `tokens_read + tokens_skipped` over completed sessions.
    pub tokens_read_total: AtomicU64,
    /// Max `peak_nodes` over completed sessions.
    pub peak_nodes_max: AtomicU64,
    /// Connections answered `503` by overload shedding — the admission
    /// cap (`max_connections`) or the queue-wait deadline.
    pub connections_shed: AtomicU64,
    /// `accept(2)` failures (fd exhaustion, aborted handshakes); the
    /// acceptor backs off exponentially while these persist.
    pub accept_errors: AtomicU64,
    /// `epoll_wait(2)` returns that delivered at least one event, summed
    /// over all connection workers. With no traffic the workers sleep in
    /// `epoll_wait` indefinitely, so this advancing means actual wake
    /// sources fired — it is the witness that the connection path is
    /// event-driven, not polling.
    pub epoll_wakeups: AtomicU64,
}

/// One live session as seen by `/stats`.
pub struct SessionEntry {
    pub query_label: String,
    pub peer: String,
    pub started: Instant,
    pub live: Arc<LiveBufferStats>,
}

pub(crate) struct ServerShared {
    pub(crate) service: QueryService,
    pub(crate) queries: HashMap<String, String>,
    /// One mailbox per connection worker (own `Arc`s so the per-session
    /// waker closures hold no cycle back to `ServerShared`). The
    /// acceptor round-robins new connections across them.
    mailboxes: Vec<Arc<WorkerMailbox>>,
    stop: AtomicBool,
    /// Graceful drain in progress: stop accepting, finish in-flight
    /// requests, answer `Connection: close` at every response boundary.
    /// Distinct from `stop`, which abandons queued connections outright.
    draining: AtomicBool,
    /// Connections currently alive anywhere (queued, driven, parked).
    /// Maintained by [`OpenGuard`] so every disposal path decrements.
    open_conns: Arc<AtomicUsize>,
    pub(crate) counters: ServerCounters,
    pub(crate) metrics: NetMetrics,
    pub(crate) sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_session_id: AtomicU64,
    pub(crate) pool: EvaluatorPool,
    charge_engine_buffer: bool,
    max_head_bytes: usize,
    io_chunk_bytes: usize,
    /// Largest slice offered to `try_feed` at once — `io_chunk_bytes`
    /// clamped to the memory budget, so a single offer can never be
    /// rejected as permanently unfittable.
    feed_chunk_bytes: usize,
    idle_timeout: Duration,
    keep_alive_timeout: Duration,
    max_requests_per_conn: u64,
    output_high_water: usize,
    output_max_bytes: usize,
    max_connections: usize,
    queue_wait_deadline: Duration,
    pub(crate) workers: usize,
    pub(crate) evaluators: usize,
    /// The flight recorder every request records into (see `gcx-obs`).
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Server start time (`uptime_s` in `/stats`, uptime in `/metrics`).
    pub(crate) started: Instant,
    /// Trace IDs are minted sequentially from 1 (0 = no trace).
    next_trace_id: AtomicU64,
    /// Query-class requests seen, for the head-sampling keep decision —
    /// counted separately from trace IDs so "keep every Nth *query*" is
    /// deterministic no matter how many `/stats` scrapes interleave.
    queries_seen: AtomicU64,
    pub(crate) trace_sample_every: u64,
    slow_threshold: Option<Duration>,
}

impl ServerShared {
    pub(crate) fn open_connections(&self) -> usize {
        self.open_conns.load(Ordering::SeqCst)
    }
}

/// Holds one slot of `open_conns` for the lifetime of its [`Conn`]; the
/// `Drop` decrement covers every disposal path — clean close, teardown,
/// shed, or a queued connection dropped by shutdown's `q.clear()`.
struct OpenGuard(Arc<AtomicUsize>);

impl OpenGuard {
    fn new(counter: Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        OpenGuard(counter)
    }
}

impl Drop for OpenGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The running server. Bound threads live until [`GcxServer::shutdown`]
/// (or drop).
pub struct GcxServer {
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl GcxServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawns
    /// the fixed thread set: one acceptor, `workers` connection workers,
    /// `evaluators` pool threads.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> std::io::Result<GcxServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let evaluators = config.evaluators.max(1);
        let io_chunk_bytes = config.io_chunk_bytes.max(512);
        let feed_chunk_bytes = config
            .service
            .memory_budget
            .map_or(io_chunk_bytes, |b| io_chunk_bytes.min(b.max(1)));
        let mut mailboxes = Vec::with_capacity(workers);
        for _ in 0..workers {
            mailboxes.push(Arc::new(WorkerMailbox::new()?));
        }
        let shared = Arc::new(ServerShared {
            service: QueryService::new(config.service),
            queries: config.queries.into_iter().collect(),
            mailboxes,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            open_conns: Arc::new(AtomicUsize::new(0)),
            counters: ServerCounters::default(),
            metrics: NetMetrics::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session_id: AtomicU64::new(1),
            pool: EvaluatorPool::new(evaluators),
            charge_engine_buffer: config.charge_engine_buffer,
            max_head_bytes: config.max_head_bytes.max(512),
            io_chunk_bytes,
            feed_chunk_bytes,
            idle_timeout: config.idle_timeout,
            keep_alive_timeout: config.keep_alive_timeout,
            max_requests_per_conn: config.max_requests_per_conn.max(1),
            output_high_water: config.output_high_water,
            output_max_bytes: config.output_max_bytes,
            max_connections: config.max_connections.max(1),
            queue_wait_deadline: config.queue_wait_deadline,
            workers,
            evaluators,
            recorder: Arc::new(FlightRecorder::new()),
            started: Instant::now(),
            next_trace_id: AtomicU64::new(1),
            queries_seen: AtomicU64::new(0),
            trace_sample_every: config.trace_sample_every,
            slow_threshold: config.slow_request_threshold,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("gcx-net-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))
                    .expect("spawn acceptor"),
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            let mailbox = shared.mailboxes[i].clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gcx-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &mailbox))
                    .expect("spawn connection worker"),
            );
        }
        Ok(GcxServer {
            shared,
            threads,
            addr: local,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fixed thread count: acceptor + connection workers + evaluators.
    /// Does **not** grow with open sessions — that is the point.
    pub fn thread_count(&self) -> usize {
        1 + self.shared.workers + self.shared.evaluators
    }

    /// The underlying service (stats, cache introspection).
    pub fn service(&self) -> &QueryService {
        &self.shared.service
    }

    /// Server counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.shared.counters
    }

    /// Sessions currently registered (mid-stream).
    pub fn active_sessions(&self) -> usize {
        self.shared.sessions.lock().expect("registry lock").len()
    }

    /// Renders the `/stats` JSON document (also served over HTTP).
    pub fn stats_json(&self) -> String {
        stats_json::render(&self.shared)
    }

    /// Renders the `/metrics` Prometheus text exposition (also served
    /// over HTTP).
    pub fn metrics_text(&self) -> String {
        metrics::render(&self.shared)
    }

    /// Blocks the calling thread until the server shuts down (CLI
    /// foreground mode).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Stops accepting, drops queued connections (cancelling their
    /// sessions), and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Graceful drain: stops accepting immediately, lets in-flight
    /// requests run to completion (keep-alive connections are told
    /// `Connection: close` at their next response boundary, idle ones
    /// are closed at once), and hard-cancels whatever is still open when
    /// `deadline` expires — at which point this degenerates into
    /// [`GcxServer::shutdown`].
    pub fn shutdown_graceful(mut self, deadline: Duration) {
        self.drain_then_stop(deadline);
    }

    /// Connections currently open (queued, driven, or parked).
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections()
    }

    fn drain_then_stop(&mut self, deadline: Duration) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the acceptor so it observes the drain and exits, and
        // wake every worker so idle keep-alive connections close now
        // instead of sitting out their keep-alive timeout.
        let _ = TcpStream::connect(self.addr);
        for mb in &self.shared.mailboxes {
            mb.wake.signal();
        }
        let t0 = Instant::now();
        while t0.elapsed() < deadline {
            if self.shared.open_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Either drained clean or out of patience: hard-stop the rest.
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection and every worker
        // through its wake eventfd.
        let _ = TcpStream::connect(self.addr);
        for mb in &self.shared.mailboxes {
            mb.wake.signal();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Connections (and their sessions) are gone; now the evaluator
        // pool can drain and stop.
        self.shared.pool.shutdown();
    }
}

impl Drop for GcxServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept-error backoff bounds: persistent failures (EMFILE under fd
/// exhaustion, ECONNABORTED storms) must not busy-spin a core, but a
/// long fixed sleep would throttle recovery — so exponential between
/// these, reset on the next successful accept.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    // Round-robin handoff target. Connections are pinned to one worker
    // for life (their epoll registration and session waker both point at
    // it), so this is the only balancing decision.
    let mut next_worker = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
                    // Returning drops the listener: a draining server
                    // refuses new connections at the socket.
                    return;
                }
                if gcx_faults::fire("net.accept.err") {
                    shared
                        .counters
                        .accept_errors
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    continue;
                }
                backoff = ACCEPT_BACKOFF_MIN;
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if shared.open_connections() >= shared.max_connections {
                    shed_overloaded_stream(shared, stream);
                    continue;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                shared.mailboxes[next_worker].submit(
                    stream,
                    peer.to_string(),
                    OpenGuard::new(shared.open_conns.clone()),
                );
                next_worker = (next_worker + 1) % shared.mailboxes.len();
            }
            Err(e) => {
                if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                if e.kind() == std::io::ErrorKind::Interrupted {
                    // EINTR: a signal landed mid-accept. Not a socket
                    // error — retry without counting or backing off.
                    continue;
                }
                shared
                    .counters
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                log_debug!(LOG_TARGET, "accept error (backoff {backoff:?}): {e}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// The canned overload answer: `503` + `Retry-After`, `Connection:
/// close`. Kept to one small write so the admission-cap fast path on
/// the acceptor thread answers within milliseconds even when every
/// worker is saturated.
fn overload_response() -> Vec<u8> {
    let body: &[u8] = b"server overloaded, retry later\n";
    let len = body.len().to_string();
    let mut out = http::response_head(
        503,
        "Service Unavailable",
        &[
            ("Content-Type", TEXT_PLAIN),
            ("Retry-After", "1"),
            ("Content-Length", &len),
        ],
        false,
    );
    out.extend_from_slice(body);
    out
}

/// Sheds a connection the admission cap rejected: best-effort fast 503
/// straight from the acceptor thread, then close (drop).
fn shed_overloaded_stream(shared: &Arc<ServerShared>, mut stream: TcpStream) {
    shared
        .counters
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nonblocking(false);
    let _ = stream.write_all(&overload_response());
    log_debug!(LOG_TARGET, "connection shed: admission cap reached");
}

/// The `epoll_event` token reserved for the worker's wake eventfd;
/// connection tokens count up from zero and never reach it.
const WAKE_TOKEN: u64 = u64::MAX;

/// Events fetched per `epoll_wait` call.
const EVENT_BATCH: usize = 256;

/// Marks `token` runnable, once (the `queued` flag dedups: a connection
/// can be woken by a socket event and a session bump in the same batch).
fn mark_runnable(runnable: &mut VecDeque<u64>, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.get_mut(&token) {
        if !conn.queued {
            conn.queued = true;
            runnable.push_back(token);
        }
    }
}

/// Disposes of a finished connection: deregisters the socket and drops
/// the state (which cancels any in-flight session). Stale tokens — a
/// session bump racing the teardown — are ignored.
fn remove_conn(ep: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        ep.del(conn.stream.as_raw_fd());
    }
}

/// One connection worker: an epoll readiness loop over the worker's own
/// set of connections. Each iteration ingests mailbox messages (new
/// connections, session-progress tokens), drives every runnable
/// connection until it blocks or finishes, expires idle deadlines, and
/// then sleeps in `epoll_wait` until the next wake source — socket
/// readiness, the mailbox eventfd, or the nearest deadline. With no
/// connections and nothing pending the timeout is infinite: an idle
/// worker costs zero CPU.
fn worker_loop(shared: &Arc<ServerShared>, mailbox: &Arc<WorkerMailbox>) {
    let ep = match Epoll::new() {
        Ok(ep) => ep,
        Err(e) => {
            log_warn!(LOG_TARGET, "epoll_create1 failed, worker exiting: {e}");
            return;
        }
    };
    if let Err(e) = ep.add(mailbox.wake.raw(), EPOLLIN, WAKE_TOKEN) {
        log_warn!(LOG_TARGET, "epoll wake registration failed: {e}");
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut runnable: VecDeque<u64> = VecDeque::new();
    let mut events = vec![EpollEvent::zeroed(); EVENT_BATCH];
    let mut expired: Vec<u64> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Dropping connections cancels their sessions; the evaluator
            // pool is still alive to observe it.
            return;
        }
        let draining = shared.draining.load(Ordering::SeqCst);

        // Adopt freshly accepted connections: register the socket
        // edge-triggered and give the connection a first drive (its
        // request bytes may already sit in the kernel buffer, and ET
        // never re-announces what it already reported).
        let fresh = std::mem::take(&mut *mailbox.inbox.lock().expect("worker inbox lock"));
        for (stream, peer, open) in fresh {
            let token = next_token;
            next_token += 1;
            if let Err(e) = ep.add(
                stream.as_raw_fd(),
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                token,
            ) {
                log_debug!(LOG_TARGET, "epoll add failed for {peer}: {e}");
                continue; // dropping stream + guard closes the connection
            }
            conns.insert(token, Conn::new(stream, peer, open, token, mailbox.clone()));
            mark_runnable(&mut runnable, &mut conns, token);
        }

        // Session-progress wakeups from evaluator threads.
        let progressed =
            std::mem::take(&mut *mailbox.progressed.lock().expect("worker progressed lock"));
        for token in progressed {
            mark_runnable(&mut runnable, &mut conns, token);
        }

        // Drive every runnable connection as far as it goes. A blocked
        // connection is *not* re-queued — it sleeps until one of its
        // wake sources fires (socket readiness, session progress, or
        // the deadline scan below).
        while let Some(token) = runnable.pop_front() {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            conn.queued = false;
            if !conn.queue_wait_recorded {
                conn.queue_wait_recorded = true;
                let waited = conn.accepted.elapsed();
                shared.metrics.queue_wait.record(waited);
                if waited > shared.queue_wait_deadline {
                    // Saturated past the deadline before the first
                    // drive: shedding this connection fast beats
                    // serving everyone at collapsed latency.
                    conn.shed_overloaded(shared);
                    remove_conn(&ep, &mut conns, token);
                    continue;
                }
            }
            if draining && conn.is_idle_keep_alive() {
                // Draining: close parked keep-alive connections
                // immediately instead of letting them sit out the
                // keep-alive timeout.
                conn.teardown(shared);
                remove_conn(&ep, &mut conns, token);
                continue;
            }
            let mut made_progress = false;
            let finished = loop {
                match conn.step(shared) {
                    StepResult::Progress => made_progress = true,
                    StepResult::Blocked => break false,
                    StepResult::Finished => break true,
                }
            };
            if finished {
                conn.teardown(shared);
                remove_conn(&ep, &mut conns, token);
                continue;
            }
            if made_progress {
                conn.last_progress = Instant::now();
            }
        }

        // Deadline pass: expire idle/keep-alive budgets and find the
        // nearest remaining deadline — which becomes the epoll timeout,
        // so timeouts fire without any polling tick. During a drain,
        // idle keep-alive connections are closed here as well (they are
        // blocked, so the drive loop above never sees them).
        let now = Instant::now();
        let mut next_deadline: Option<Instant> = None;
        for (&token, conn) in &conns {
            if draining && conn.is_idle_keep_alive() {
                expired.push(token);
                continue;
            }
            let deadline = conn.last_progress + conn.idle_budget(shared);
            if deadline <= now {
                expired.push(token);
            } else {
                next_deadline = Some(next_deadline.map_or(deadline, |d: Instant| d.min(deadline)));
            }
        }
        for token in expired.drain(..) {
            if let Some(conn) = conns.get_mut(&token) {
                conn.fail_idle(shared);
                conn.teardown(shared);
                remove_conn(&ep, &mut conns, token);
            }
        }

        let timeout_ms = match next_deadline {
            // No deadlines pending: sleep until an event arrives.
            None => -1,
            Some(d) => {
                let dur = d.saturating_duration_since(now);
                // Round up: a sub-millisecond remainder truncated to 0
                // would spin until the deadline actually passes.
                dur.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32
            }
        };
        match ep.wait(&mut events, timeout_ms) {
            Ok(n) => {
                if n > 0 {
                    shared
                        .counters
                        .epoll_wakeups
                        .fetch_add(1, Ordering::Relaxed);
                }
                for ev in &events[..n] {
                    let token = ev.data;
                    let bits = ev.events;
                    if token == WAKE_TOKEN {
                        // Drain *before* the next mailbox read at the
                        // loop top: a signal landing after the drain
                        // leaves the counter nonzero, so the next wait
                        // returns immediately and nothing is lost.
                        mailbox.wake.drain();
                        continue;
                    }
                    // ERR/HUP are folded into both directions: the next
                    // read/write surfaces the actual error or EOF.
                    if bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                        if let Some(conn) = conns.get_mut(&token) {
                            conn.sock_readable = true;
                        }
                    }
                    if bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
                        if let Some(conn) = conns.get_mut(&token) {
                            conn.sock_writable = true;
                        }
                    }
                    mark_runnable(&mut runnable, &mut conns, token);
                }
            }
            Err(e) => {
                // Defensive: nothing recoverable lives here (EBADF,
                // EFAULT would be bugs), but a hot error loop would be
                // worse than a degraded one.
                log_warn!(LOG_TARGET, "epoll_wait failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

enum StepResult {
    /// State advanced (bytes moved, session fed, response emitted …).
    Progress,
    /// Nothing can move right now (socket or session would block).
    Blocked,
    /// The connection is done (cleanly or not) and must be torn down.
    Finished,
}

enum ConnState {
    /// Accumulating (or parsing buffered pipelined bytes of) the next
    /// request head.
    Head,
    /// Streaming a request body through a session.
    Body(Box<BodyState>),
    /// Discarding the remainder of a framed request body after an early
    /// error response, so the connection stays reusable.
    Drain(Box<DrainState>),
    /// Writing out the remaining `send` buffer, then looping back to
    /// `Head` (keep-alive) or closing.
    Flush {
        close: bool,
    },
    Closed,
}

enum BodyFraming {
    /// `Content-Length`: remaining body bytes.
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked(http::ChunkedDecoder),
    /// No framing given: body runs until EOF (HTTP/1.0 style). The
    /// connection cannot be reused afterwards.
    Eof,
}

impl BodyFraming {
    /// Decodes raw socket bytes per this framing, appending body payload
    /// to `out`; returns the number of `recv` bytes consumed. The single
    /// copy of the framing state machine, shared by the feed path
    /// (`step_body`) and the discard path (`step_drain`).
    fn decode_into(&mut self, recv: &[u8], out: &mut Vec<u8>) -> Result<usize, String> {
        match self {
            BodyFraming::Length(remaining) => {
                let take = (*remaining).min(recv.len() as u64) as usize;
                out.extend_from_slice(&recv[..take]);
                *remaining -= take as u64;
                Ok(take)
            }
            BodyFraming::Chunked(dec) => dec.decode(recv, out),
            BodyFraming::Eof => {
                out.extend_from_slice(recv);
                Ok(recv.len())
            }
        }
    }

    fn complete(&self) -> bool {
        match self {
            BodyFraming::Length(n) => *n == 0,
            BodyFraming::Chunked(d) => d.is_done(),
            BodyFraming::Eof => false, // completion signalled by EOF
        }
    }
}

struct BodyState {
    session: StreamSession,
    session_id: u64,
    framing: BodyFraming,
    /// Response head already sent. It goes out lazily, with the first
    /// output byte, so pre-output failures can still return a clean 4xx.
    sent_head: bool,
    /// Decoded body bytes not yet accepted by `try_feed`.
    pending: Vec<u8>,
    pending_pos: usize,
    /// All input fed and `close_input` called.
    input_closed: bool,
    /// Output produced after the upload completed, held back until the
    /// session's verdict: emitting it would commit us to a 200, and with
    /// the input already closed the verdict is at most one evaluation
    /// away — so completed uploads that fail get a clean 4xx instead of
    /// a racy truncated 200. (Mid-upload output streams immediately;
    /// that is the whole point of the engine.)
    held: Vec<u8>,
    /// Socket saw EOF.
    saw_eof: bool,
    /// Reuse the connection for another request after this response.
    keep: bool,
    /// Frame the response body chunked (HTTP/1.1). HTTP/1.0 clients get
    /// a close-delimited body instead, and `keep` is forced off.
    chunked_response: bool,
}

/// Discard-the-body state after an early error response (bad query name,
/// missing parameters, …): the request's remaining body bytes must be
/// consumed before the next head can be parsed off the same socket.
struct DrainState {
    framing: BodyFraming,
    /// Bytes discarded so far; bounded by [`DRAIN_MAX_BYTES`].
    drained: u64,
    saw_eof: bool,
    /// Reusable decode sink (cleared per step; the payload is discarded).
    sink: Vec<u8>,
}

/// Upper bound on request-body bytes discarded to keep a connection
/// alive after an early error; a larger remainder closes instead (the
/// teardown is cheaper than sinking megabytes).
const DRAIN_MAX_BYTES: u64 = 256 * 1024;

/// Content type of plain-text (error/health) responses.
const TEXT_PLAIN: &str = "text/plain; charset=utf-8";

/// Log target for server events (`GCX_LOG=gcx_net=debug`).
const LOG_TARGET: &str = "gcx_net::server";

/// Whether a body with this framing is worth discarding to keep the
/// connection: bounded `Content-Length` or chunked (capped while
/// draining); EOF-framed bodies only end with the connection.
fn drainable(framing: &BodyFraming) -> bool {
    match framing {
        BodyFraming::Length(n) => *n <= DRAIN_MAX_BYTES,
        BodyFraming::Chunked(_) => true,
        BodyFraming::Eof => false,
    }
}

struct Conn {
    stream: TcpStream,
    peer: String,
    recv: Vec<u8>,
    send: Vec<u8>,
    send_pos: usize,
    /// Reusable socket-read scratch (sized lazily to `io_chunk_bytes`).
    scratch: Vec<u8>,
    state: ConnState,
    last_progress: Instant,
    /// Requests answered on this connection so far.
    requests_served: u64,
    /// When the acceptor queued this connection; the accept→first-drive
    /// delta is the connection's queue wait.
    accepted: Instant,
    /// Queue wait already recorded (first worker drive happened).
    queue_wait_recorded: bool,
    /// When the in-flight request's head was parsed; taken when the
    /// response is fully flushed (total latency) — requests that die
    /// mid-flight (teardown, timeouts) are not recorded.
    req_start: Option<Instant>,
    /// Endpoint class of the in-flight request.
    req_class: ReqClass,
    /// First response byte not yet on the wire (TTFB pending).
    ttfb_pending: bool,
    /// Trace ID of the in-flight request (minted at head parse; 0 when
    /// no request is in flight).
    trace_id: u64,
    /// Head-sampling verdict: keep this request's trace at completion.
    trace_keep: bool,
    /// Label for the kept trace (query name / preview, else the path).
    req_label: Option<String>,
    /// The worker-local epoll token — also the routing key the session's
    /// `progress_waker` pushes into the worker mailbox.
    token: u64,
    /// The owning worker's mailbox (session-progress wakeups land here).
    mailbox: Arc<WorkerMailbox>,
    /// Cached socket readability. Edge-triggered epoll reports
    /// *transitions*, so the last known state lives here: set by events
    /// (and optimistically at accept), cleared only when a read actually
    /// returns `WouldBlock`. While clear, `read_some` short-circuits —
    /// the syscall could only confirm what the flag already says.
    sock_readable: bool,
    /// Cached socket writability; same discipline as `sock_readable`.
    sock_writable: bool,
    /// Already on the worker's runnable queue (dedup flag).
    queued: bool,
    /// Slot in the server's `open_conns` count (released on drop).
    _open: OpenGuard,
}

/// Above this much un-flushed response data, stop pulling more output
/// from the session: the socket's backpressure propagates to the engine
/// by letting output sit in the session's buffer.
const SEND_HIGH_WATER: usize = 256 * 1024;

/// Above this much decoded-but-unfed body data, stop reading the socket:
/// a client uploading faster than its session evaluates must not make
/// the server buffer the document.
const RECV_HIGH_WATER: usize = 256 * 1024;

impl Conn {
    fn new(
        stream: TcpStream,
        peer: String,
        open: OpenGuard,
        token: u64,
        mailbox: Arc<WorkerMailbox>,
    ) -> Self {
        Conn {
            stream,
            peer,
            _open: open,
            recv: Vec::new(),
            send: Vec::new(),
            send_pos: 0,
            scratch: Vec::new(),
            state: ConnState::Head,
            last_progress: Instant::now(),
            requests_served: 0,
            accepted: Instant::now(),
            queue_wait_recorded: false,
            req_start: None,
            req_class: ReqClass::Other,
            ttfb_pending: false,
            trace_id: 0,
            trace_keep: false,
            req_label: None,
            token,
            mailbox,
            // Optimistic: a fresh socket is writable, and its first
            // request bytes may predate the epoll registration. The
            // first `WouldBlock` corrects the flags; from then on epoll
            // maintains them.
            sock_readable: true,
            sock_writable: true,
            queued: false,
        }
    }

    /// A keep-alive connection parked between requests with nothing
    /// buffered in either direction — safe to close during a drain.
    fn is_idle_keep_alive(&self) -> bool {
        self.requests_served > 0
            && self.recv.is_empty()
            && self.send_pos >= self.send.len()
            && matches!(self.state, ConnState::Head)
    }

    /// Sheds this connection (queue-wait deadline exceeded): a fast 503
    /// + `Retry-After`, best-effort flushed, then close.
    fn shed_overloaded(&mut self, shared: &Arc<ServerShared>) {
        shared
            .counters
            .connections_shed
            .fetch_add(1, Ordering::Relaxed);
        self.send.extend_from_slice(&overload_response());
        if self.send_pos < self.send.len() {
            let _ = self.stream.write_all(&self.send[self.send_pos..]);
        }
        self.teardown(shared);
    }

    /// The no-progress budget for the connection's current state: a
    /// keep-alive connection parked *between* requests gets the (shorter)
    /// keep-alive timeout; anything mid-request gets the idle timeout.
    fn idle_budget(&self, shared: &Arc<ServerShared>) -> Duration {
        match &self.state {
            ConnState::Head if self.recv.is_empty() && self.requests_served > 0 => {
                shared.keep_alive_timeout
            }
            _ => shared.idle_timeout,
        }
    }

    /// One non-blocking step of the connection state machine.
    fn step(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        match self.state {
            ConnState::Closed => StepResult::Finished,
            ConnState::Flush { close } => match self.write_some(shared) {
                WriteOutcome::Progress => {
                    if self.send_pos >= self.send.len() {
                        return self.finish_response(shared, close);
                    }
                    StepResult::Progress
                }
                WriteOutcome::Idle => self.finish_response(shared, close),
                WriteOutcome::WouldBlock => StepResult::Blocked,
                WriteOutcome::Gone => StepResult::Finished,
            },
            ConnState::Head => self.step_head(shared),
            ConnState::Body(_) => self.step_body(shared),
            ConnState::Drain(_) => self.step_drain(shared),
        }
    }

    /// The response is fully on the wire: close, or loop back to parse
    /// the next request (whose bytes may already sit in `recv` —
    /// pipelined requests must not be dropped with the response).
    fn finish_response(&mut self, shared: &Arc<ServerShared>, close: bool) -> StepResult {
        if let Some(t0) = self.req_start.take() {
            let elapsed = t0.elapsed();
            shared.metrics.request_class(self.req_class).record(elapsed);
            if self.trace_id != 0 {
                self.finish_trace(shared, elapsed);
            }
        }
        self.trace_id = 0;
        self.ttfb_pending = false;
        // A drain that began mid-response still ends the connection at
        // this boundary, even if the response itself negotiated
        // keep-alive before the drain started.
        if close || shared.draining.load(Ordering::SeqCst) {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            self.state = ConnState::Closed;
            return StepResult::Finished;
        }
        self.state = ConnState::Head;
        StepResult::Progress
    }

    /// Completes the in-flight request's trace: flush instant, the
    /// whole-request span, the keep decision (head-sampled or slow), and
    /// the slow-request log line with its per-stage breakdown.
    fn finish_trace(&mut self, shared: &Arc<ServerShared>, elapsed: Duration) {
        let rec = &shared.recorder;
        rec.record_instant(self.trace_id, SpanKind::Flush, 0, 0);
        let dur_ns = elapsed.as_nanos() as u64;
        let start = rec.now_ns().saturating_sub(dur_ns);
        rec.record_span(self.trace_id, SpanKind::Request, start, dur_ns, 0);
        let slow = shared.slow_threshold.is_some_and(|t| elapsed >= t);
        if self.trace_keep || slow {
            let label = self.req_label.as_deref().unwrap_or("");
            rec.keep(self.trace_id, label, dur_ns, slow);
        }
        if slow {
            // One structured warn line: trace ID + per-stage breakdown
            // (total recorded nanoseconds per stage, scanned from the
            // rings — diagnostics-path cost, never the hot path).
            let totals = rec.stage_totals(self.trace_id);
            let mut stages = String::new();
            for (kind, ns) in totals {
                if kind == SpanKind::Request || ns == 0 {
                    continue;
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut stages,
                    format_args!(" {}_us={}", kind.name(), ns / 1000),
                );
            }
            log_warn!(
                LOG_TARGET,
                "slow request: trace_id={} label={:?} class={:?} total_ms={}{}",
                self.trace_id,
                self.req_label.as_deref().unwrap_or(""),
                self.req_class,
                elapsed.as_millis(),
                stages
            );
        }
    }

    fn step_head(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        // Parse before reading: a pipelined request (or one that arrived
        // in the same segment as its predecessor) is already buffered,
        // and reading first would block on an empty socket despite a
        // complete head sitting in `recv`.
        if let Some(head_end) = http::find_head_end(&self.recv) {
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            self.requests_served += 1;
            // Request clock starts at head parse; `dispatch` refines the
            // class, `finish_response` stops the clock.
            self.req_start = Some(Instant::now());
            self.req_class = ReqClass::Other;
            self.ttfb_pending = true;
            // Every request gets a trace ID; whether the trace is *kept*
            // (exported by /trace) is decided at completion — head
            // sampling for queries, retroactive keep for slow requests.
            self.trace_id = shared.next_trace_id.fetch_add(1, Ordering::Relaxed);
            self.trace_keep = false;
            self.req_label = None;
            shared
                .recorder
                .record_instant(self.trace_id, SpanKind::HeadParse, 0, 0);
            let head = match http::parse_head(&self.recv[..head_end]) {
                Ok(h) => h,
                Err(e) => {
                    // Framing is untrustworthy after a malformed head;
                    // answer and close.
                    self.respond_simple(
                        400,
                        "Bad Request",
                        &format!("malformed request: {e}\n"),
                        false,
                    );
                    return StepResult::Progress;
                }
            };
            self.recv.drain(..head_end);
            self.dispatch(shared, &head);
            return StepResult::Progress;
        }
        match self.read_some(shared) {
            ReadOutcome::Data => {}
            ReadOutcome::WouldBlock => return StepResult::Blocked,
            ReadOutcome::Eof | ReadOutcome::Gone => return StepResult::Finished,
        }
        if http::find_head_end(&self.recv).is_none() && self.recv.len() > shared.max_head_bytes {
            // Body bytes may already be piling in behind a complete head;
            // only an actually-unterminated head this large is an error.
            self.respond_simple(
                431,
                "Request Header Fields Too Large",
                "head too large\n",
                false,
            );
        }
        StepResult::Progress // parse (or keep reading) on the next step
    }

    /// Whether the connection may serve another request after this one.
    /// A draining server answers `Connection: close` at every response
    /// boundary so keep-alive clients let go promptly.
    fn negotiate_keep_alive(&self, shared: &Arc<ServerShared>, head: &http::RequestHead) -> bool {
        head.wants_keep_alive()
            && self.requests_served < shared.max_requests_per_conn
            && !shared.draining.load(Ordering::SeqCst)
    }

    fn dispatch(&mut self, shared: &Arc<ServerShared>, head: &http::RequestHead) {
        // One classification point for the latency histograms: derived
        // from the same (method, path) pair the routing below matches on.
        self.req_class = metrics::classify(&head.method, &head.path);
        self.req_label = Some(head.path.clone());
        match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => self.respond_early(shared, head, 200, "OK", TEXT_PLAIN, "ok\n"),
            ("GET", "/stats") => {
                let json = stats_json::render(shared);
                self.respond_early(shared, head, 200, "OK", "application/json", &json);
            }
            ("GET", "/metrics") => {
                let text = metrics::render(shared);
                self.respond_early(
                    shared,
                    head,
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &text,
                );
            }
            ("GET", "/trace") => {
                let json = shared.recorder.export_chrome_json();
                self.respond_early(shared, head, 200, "OK", "application/json", &json);
            }
            ("POST", "/query") => {
                self.dispatch_query(shared, head);
            }
            _ => self.respond_early(
                shared,
                head,
                404,
                "Not Found",
                TEXT_PLAIN,
                "unknown endpoint\n",
            ),
        }
    }

    /// Parses the request's body framing, if any.
    fn body_framing(head: &http::RequestHead) -> Result<Option<BodyFraming>, String> {
        if head.is_chunked() {
            return Ok(Some(BodyFraming::Chunked(http::ChunkedDecoder::new())));
        }
        match head.content_length()? {
            Some(0) | None => Ok(None),
            Some(n) => Ok(Some(BodyFraming::Length(n))),
        }
    }

    /// Answers a request *before* (or instead of) consuming its body —
    /// health/stats endpoints and early errors. A body the client is
    /// still sending must be discarded before the next head can be read
    /// off the socket, so framed bodies of tolerable size enter the
    /// drain state; anything else closes after the response.
    fn respond_early(
        &mut self,
        shared: &Arc<ServerShared>,
        head: &http::RequestHead,
        status: u16,
        reason: &str,
        content_type: &str,
        body: &str,
    ) {
        let keep = self.negotiate_keep_alive(shared, head);
        let framing = match Self::body_framing(head) {
            Ok(f) => f,
            Err(_) => {
                // Unparseable Content-Length: the body's extent is
                // unknowable, so the connection cannot be reused —
                // answer and close.
                self.respond_simple_typed(status, reason, content_type, body, false);
                return;
            }
        };
        match framing {
            None if keep => {
                self.respond_simple_typed(status, reason, content_type, body, true);
            }
            // A client waiting for `100 Continue` never sends the body —
            // draining would stall until the timeout; close instead.
            Some(f) if keep && !head.expects_continue() && drainable(&f) => {
                self.send.extend_from_slice(&http::simple_response(
                    status,
                    reason,
                    content_type,
                    body.as_bytes(),
                    true,
                ));
                self.state = ConnState::Drain(Box::new(DrainState {
                    framing: f,
                    drained: 0,
                    saw_eof: false,
                    sink: Vec::new(),
                }));
            }
            _ => self.respond_simple_typed(status, reason, content_type, body, false),
        }
    }

    fn dispatch_query(&mut self, shared: &Arc<ServerShared>, head: &http::RequestHead) {
        let query_text = match (head.param("xq"), head.param("name")) {
            (Some(xq), _) => xq.to_string(),
            (None, Some(name)) => match shared.queries.get(name) {
                Some(q) => q.clone(),
                None => {
                    self.respond_early(
                        shared,
                        head,
                        404,
                        "Not Found",
                        TEXT_PLAIN,
                        &format!("no registered query named {name:?}\n"),
                    );
                    return;
                }
            },
            (None, None) => {
                self.respond_early(
                    shared,
                    head,
                    400,
                    "Bad Request",
                    TEXT_PLAIN,
                    "POST /query needs ?xq=<urlencoded query> or ?name=<registered query>\n",
                );
                return;
            }
        };
        let framing = if head.is_chunked() {
            BodyFraming::Chunked(http::ChunkedDecoder::new())
        } else {
            match head.content_length() {
                Err(e) => {
                    self.respond_simple(400, "Bad Request", &format!("{e}\n"), false);
                    return;
                }
                Ok(Some(n)) => BodyFraming::Length(n),
                Ok(None) => BodyFraming::Eof,
            }
        };
        // An EOF-framed request body consumes the rest of the stream;
        // the connection cannot carry another request, and the chunked
        // response coding is unavailable to HTTP/1.0 clients.
        let keep = self.negotiate_keep_alive(shared, head)
            && !matches!(framing, BodyFraming::Eof)
            && !head.is_http10();
        let chunked_response = !head.is_http10();
        let live = Arc::new(LiveBufferStats::default());
        let label = head
            .param("name")
            .map_or_else(|| preview(&query_text), str::to_string);
        // Head-based sampling over *query* requests (counted separately
        // from trace IDs, which every request class mints): the first
        // query is always kept, then every `trace_sample_every`th. Slow
        // requests are kept retroactively in `finish_trace` regardless.
        let queries_seen = shared.queries_seen.fetch_add(1, Ordering::Relaxed);
        self.trace_keep =
            shared.trace_sample_every > 0 && queries_seen.is_multiple_of(shared.trace_sample_every);
        self.req_label = Some(label.clone());
        let session = {
            let live = live.clone();
            let pool = shared.pool.clone();
            let charge = shared.charge_engine_buffer;
            let mailbox = self.mailbox.clone();
            let token = self.token;
            let output_high_water = shared.output_high_water;
            let output_max_bytes = shared.output_max_bytes;
            let session_metrics = shared.metrics.sessions.clone();
            let stage_metrics = shared.metrics.engine_stages.clone();
            let recorder = shared.recorder.clone();
            let trace_id = self.trace_id;
            let label = label.clone();
            shared.service.open_session_with(&query_text, move |cfg| {
                cfg.live_stats = Some(live);
                cfg.pool = Some(pool);
                cfg.charge_engine_buffer = charge;
                cfg.output_high_water = output_high_water;
                cfg.output_max_bytes = output_max_bytes;
                // Progress wakeups route straight to the one worker that
                // owns this connection, keyed by its epoll token.
                cfg.progress_waker = Some(Arc::new(move || mailbox.note_progress(token)));
                cfg.metrics = Some(session_metrics);
                cfg.stage_metrics = Some(stage_metrics);
                cfg.label = Some(label);
                cfg.flight_recorder = Some(recorder);
                cfg.trace_id = trace_id;
            })
        };
        let session = match session {
            Ok(s) => s,
            Err(e) => {
                self.respond_early(
                    shared,
                    head,
                    400,
                    "Bad Request",
                    TEXT_PLAIN,
                    &format!("{e}\n"),
                );
                return;
            }
        };
        let session_id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        shared.sessions.lock().expect("registry lock").insert(
            session_id,
            SessionEntry {
                query_label: label,
                peer: self.peer.clone(),
                started: Instant::now(),
                live,
            },
        );
        if head.expects_continue() {
            self.send
                .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        self.state = ConnState::Body(Box::new(BodyState {
            session,
            session_id,
            framing,
            sent_head: false,
            pending: Vec::new(),
            pending_pos: 0,
            input_closed: false,
            held: Vec::new(),
            saw_eof: false,
            keep,
            chunked_response,
        }));
    }

    /// Discards the remainder of an early-answered request's body; once
    /// the framing completes, the buffered response flushes and the
    /// connection loops back to the next request.
    fn step_drain(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        let mut progress = false;
        match self.write_some(shared) {
            WriteOutcome::Progress => progress = true,
            WriteOutcome::WouldBlock | WriteOutcome::Idle => {}
            WriteOutcome::Gone => return StepResult::Finished,
        }
        let ConnState::Drain(mut drain) = std::mem::replace(&mut self.state, ConnState::Closed)
        else {
            unreachable!("step_drain outside Drain state");
        };
        if !drain.saw_eof && !drain.framing.complete() && self.recv.is_empty() {
            match self.read_some(shared) {
                ReadOutcome::Data => progress = true,
                ReadOutcome::WouldBlock => {}
                ReadOutcome::Eof => {
                    drain.saw_eof = true;
                    progress = true;
                }
                ReadOutcome::Gone => return StepResult::Finished,
            }
        }
        if !self.recv.is_empty() {
            drain.sink.clear();
            let DrainState { framing, sink, .. } = &mut *drain;
            let consumed = match framing.decode_into(&self.recv, sink) {
                Ok(n) => n,
                Err(_) => return StepResult::Finished, // framing lost
            };
            drain.drained += consumed as u64;
            if consumed > 0 {
                self.recv.drain(..consumed);
                progress = true;
            }
            if drain.drained > DRAIN_MAX_BYTES {
                // The client keeps pushing; closing is cheaper than
                // sinking an unbounded body.
                return StepResult::Finished;
            }
        }
        if drain.framing.complete() {
            self.state = ConnState::Flush { close: false };
            return StepResult::Progress;
        }
        if drain.saw_eof {
            return StepResult::Finished;
        }
        self.state = ConnState::Drain(drain);
        if progress {
            StepResult::Progress
        } else {
            StepResult::Blocked
        }
    }

    fn step_body(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        let mut progress = false;

        // 1. Flush the response buffer first — it bounds everything else.
        match self.write_some(shared) {
            WriteOutcome::Progress => progress = true,
            WriteOutcome::WouldBlock | WriteOutcome::Idle => {}
            WriteOutcome::Gone => return StepResult::Finished,
        }

        // Work on the body state outside `self.state` so socket methods
        // on `self` stay callable.
        let ConnState::Body(mut body) = std::mem::replace(&mut self.state, ConnState::Closed)
        else {
            unreachable!("step_body outside Body state");
        };

        // 2. Read more body bytes unless the upload already completed —
        //    or the session is not keeping up (backlog cap: TCP pushes
        //    back on the client instead of us buffering the document).
        let backlog = body.pending.len() - body.pending_pos + self.recv.len();
        if !body.saw_eof && !body.framing.complete() && backlog < RECV_HIGH_WATER {
            match self.read_some(shared) {
                ReadOutcome::Data => progress = true,
                ReadOutcome::WouldBlock => {}
                ReadOutcome::Eof => {
                    body.saw_eof = true;
                    progress = true;
                }
                ReadOutcome::Gone => {
                    self.state = ConnState::Body(body);
                    return StepResult::Finished;
                }
            }
        }

        // EOF before a framed body completed: the client went away;
        // teardown cancels the session.
        if body.saw_eof && !matches!(body.framing, BodyFraming::Eof) && !body.framing.complete() {
            self.state = ConnState::Body(body);
            return StepResult::Finished;
        }

        // 3. Decode raw socket bytes into body payload.
        if !self.recv.is_empty() {
            let consumed = match body.framing.decode_into(&self.recv, &mut body.pending) {
                Ok(n) => n,
                Err(e) => {
                    finish_registry(shared, body.session_id, None);
                    // Framing is lost mid-stream: answer (when the
                    // head is still unsent) and close.
                    if body.sent_head {
                        self.state = ConnState::Flush { close: true };
                    } else {
                        self.respond_simple(
                            400,
                            "Bad Request",
                            &format!("malformed chunked body: {e}\n"),
                            false,
                        );
                    }
                    return StepResult::Progress; // body (and session) dropped here
                }
            };
            if consumed > 0 {
                self.recv.drain(..consumed);
                progress = true;
            }
        }

        // 4. Feed decoded payload into the session. Non-blocking: a full
        //    queue parks the connection, not the worker thread. Slices
        //    are bounded so one offer can always fit the memory budget.
        //    While our own send buffer is backed up (client not reading),
        //    feeding continues but *undrained*: `try_feed` would move the
        //    unread response into `send` without bound, whereas leaving
        //    it in the session engages the per-session output
        //    high-water/hard-cap machinery — the never-draining client
        //    fails its session instead of growing the server.
        let mut output = Vec::new();
        let send_ok = self.send.len() - self.send_pos < SEND_HIGH_WATER;
        while body.pending_pos < body.pending.len() {
            let chunk_end = (body.pending_pos + shared.feed_chunk_bytes).min(body.pending.len());
            let chunk = &body.pending[body.pending_pos..chunk_end];
            let fed = if send_ok {
                body.session.try_feed(chunk).map(|r| match r {
                    TryFeed::Fed(out) => (true, out),
                    TryFeed::Busy(out) => (false, out),
                })
            } else {
                body.session
                    .try_feed_undrained(chunk)
                    .map(|a| (a, Vec::new()))
            };
            match fed {
                Ok((admitted, out)) => {
                    if !out.is_empty() {
                        output.extend_from_slice(&out);
                        progress = true;
                    }
                    if !admitted {
                        break;
                    }
                    body.pending_pos = chunk_end;
                    progress = true;
                }
                Err(e) => {
                    self.session_failed(shared, &mut body, &e.to_string());
                    return StepResult::Progress; // body (and session) dropped here
                }
            }
        }
        if body.pending_pos == body.pending.len() && !body.pending.is_empty() {
            body.pending.clear();
            body.pending_pos = 0;
        }

        // 5. Close the session's input once the whole body was fed.
        let upload_done =
            body.framing.complete() || (matches!(body.framing, BodyFraming::Eof) && body.saw_eof);
        if upload_done && body.pending_pos >= body.pending.len() && !body.input_closed {
            body.session.close_input();
            body.input_closed = true;
            progress = true;
        }

        // 6. Pull output the engine has produced meanwhile — unless our
        //    own send buffer is already backed up.
        if self.send.len() - self.send_pos < SEND_HIGH_WATER {
            let drained = body.session.drain();
            if !drained.is_empty() {
                output.extend_from_slice(&drained);
                progress = true;
            }
            // 7. Completed? With the input freshly closed the verdict is
            //    usually microseconds away (small requests evaluate in
            //    one burst) — a bounded yield-spin saves the full
            //    park/bump/wake round trip per request, which dominates
            //    small-request keep-alive latency. Only spun when this
            //    step made progress, so a genuinely slow evaluation
            //    parks as before.
            if body.input_closed {
                let mut outcome = body.session.take_outcome();
                if outcome.is_none() && progress {
                    for _ in 0..32 {
                        std::thread::yield_now();
                        outcome = body.session.take_outcome();
                        if outcome.is_some() {
                            break;
                        }
                    }
                }
                if let Some(outcome) = outcome {
                    match outcome {
                        Ok(ok) => {
                            let mut full = std::mem::take(&mut body.held);
                            full.extend_from_slice(&output);
                            full.extend_from_slice(&ok.output);
                            self.emit_output(&mut body, &full);
                            if body.chunked_response {
                                self.send.extend_from_slice(http::FINAL_CHUNK);
                            }
                            finish_registry(shared, body.session_id, Some(&ok.report));
                            // A close-delimited (HTTP/1.0) body is only
                            // terminated by the close itself.
                            let close = !body.keep || !body.chunked_response;
                            self.state = ConnState::Flush { close };
                            return StepResult::Progress; // body dropped (already finished)
                        }
                        Err(e) => {
                            self.session_failed(shared, &mut body, &e.to_string());
                            return StepResult::Progress;
                        }
                    }
                }
            }
        }
        if !output.is_empty() {
            if body.input_closed {
                // Upload complete, verdict pending: hold (see `held`).
                body.held.extend_from_slice(&output);
            } else {
                self.emit_output(&mut body, &output);
            }
            progress = true;
        }

        self.state = ConnState::Body(body);
        if progress {
            StepResult::Progress
        } else {
            StepResult::Blocked
        }
    }

    /// Appends engine output to the response, sending the lazy 200 head
    /// first when needed (always called at completion, even with empty
    /// output, so the terminating chunk never goes out headless).
    fn emit_output(&mut self, body: &mut BodyState, output: &[u8]) {
        if !body.sent_head {
            body.sent_head = true;
            if body.chunked_response {
                self.send.extend_from_slice(&http::response_head(
                    200,
                    "OK",
                    &[
                        ("Content-Type", "application/xml"),
                        ("Transfer-Encoding", "chunked"),
                    ],
                    body.keep,
                ));
            } else {
                // HTTP/1.0: close-delimited body, no transfer coding.
                self.send.extend_from_slice(&http::response_head(
                    200,
                    "OK",
                    &[("Content-Type", "application/xml")],
                    false,
                ));
            }
        }
        if body.chunked_response {
            http::encode_chunk(output, &mut self.send);
        } else {
            self.send.extend_from_slice(output);
        }
    }

    /// Terminates a failed session: a clean 422 if the head is still
    /// unsent, otherwise an aborted (truncated) chunked body — the only
    /// honest signal once a 200 is on the wire (and the connection must
    /// close; the next request would be indistinguishable from body
    /// bytes otherwise).
    fn session_failed(&mut self, shared: &Arc<ServerShared>, body: &mut BodyState, msg: &str) {
        log_debug!(
            LOG_TARGET,
            "session {} ({}) failed: {msg}",
            body.session_id,
            self.peer
        );
        finish_registry(shared, body.session_id, None);
        if msg.contains(gcx_service::OUTPUT_CAP_ERROR) {
            shared
                .counters
                .sessions_output_capped
                .fetch_add(1, Ordering::Relaxed);
        }
        if body.sent_head {
            self.state = ConnState::Flush { close: true };
        } else {
            // Reuse is only sound when the request body was consumed in
            // full; a session that died mid-upload leaves the rest of
            // the body in the pipe.
            let keep =
                body.keep && body.framing.complete() && body.pending_pos >= body.pending.len();
            self.respond_simple(
                422,
                "Unprocessable Entity",
                &format!("query failed: {msg}\n"),
                keep,
            );
        }
    }

    fn fail_idle(&mut self, shared: &Arc<ServerShared>) {
        let info = match &self.state {
            ConnState::Body(b) => Some((b.session_id, b.sent_head)),
            _ => None,
        };
        if let Some((session_id, sent_head)) = info {
            // Mid-response with undrained bytes stuck in `send`: the
            // *client* stopped reading, so its session sits parked on
            // the output high-water mark. That is the connection-level
            // face of the output cap — counted under the same counter
            // as an `output_max_bytes` trip.
            if sent_head && self.send_pos < self.send.len() {
                shared
                    .counters
                    .sessions_output_capped
                    .fetch_add(1, Ordering::Relaxed);
            }
            log_debug!(
                LOG_TARGET,
                "dropping idle connection from {} (session {session_id})",
                self.peer
            );
            finish_registry(shared, session_id, None);
            if !sent_head {
                self.respond_simple(408, "Request Timeout", "connection idle too long\n", false);
            }
        }
        // Best-effort farewell; teardown closes regardless. (An idle
        // keep-alive connection between requests has nothing buffered
        // and closes silently — no request is in flight to answer.)
        if self.send_pos < self.send.len() {
            let _ = self.stream.write_all(&self.send[self.send_pos..]);
            self.send_pos = self.send.len();
        }
    }

    /// Replaces the connection's future with a fixed response; `keep`
    /// loops back to the next request after the flush.
    fn respond_simple(&mut self, status: u16, reason: &str, body: &str, keep: bool) {
        self.respond_simple_typed(status, reason, TEXT_PLAIN, body, keep);
    }

    fn respond_simple_typed(
        &mut self,
        status: u16,
        reason: &str,
        content_type: &str,
        body: &str,
        keep: bool,
    ) {
        self.send.extend_from_slice(&http::simple_response(
            status,
            reason,
            content_type,
            body.as_bytes(),
            keep,
        ));
        self.state = ConnState::Flush { close: !keep };
    }

    fn read_some(&mut self, shared: &Arc<ServerShared>) -> ReadOutcome {
        if !self.sock_readable {
            // Edge-triggered: the last read hit `WouldBlock` and no
            // readiness event has arrived since — the syscall could
            // only confirm that.
            return ReadOutcome::WouldBlock;
        }
        // Reuse one scratch buffer per connection — this runs on every
        // step of every connection, and a fresh zeroed 64 KiB Vec per
        // read would dominate the allocation profile.
        if self.scratch.len() < shared.io_chunk_bytes {
            self.scratch.resize(shared.io_chunk_bytes, 0);
        }
        if gcx_faults::fire("net.read.err") {
            return ReadOutcome::Gone;
        }
        if gcx_faults::fire("net.read.eof") {
            return ReadOutcome::Eof;
        }
        // A short read truncates the *request*, never loses bytes: the
        // cap is applied before asking the socket.
        let cap = if gcx_faults::fire("net.read.short") {
            1
        } else {
            self.scratch.len()
        };
        loop {
            match self.stream.read(&mut self.scratch[..cap]) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    shared
                        .counters
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    self.recv.extend_from_slice(&self.scratch[..n]);
                    return ReadOutcome::Data;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.sock_readable = false;
                    return ReadOutcome::WouldBlock;
                }
                // EINTR: a signal interrupted the syscall before any
                // bytes moved. Retry — mapping it to `WouldBlock` would
                // clear the readiness cache on a socket that is still
                // readable, and with edge-triggered epoll that edge
                // never comes back.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Gone,
            }
        }
    }

    fn write_some(&mut self, shared: &Arc<ServerShared>) -> WriteOutcome {
        if self.send_pos >= self.send.len() {
            if self.send_pos > 0 {
                self.send.clear();
                self.send_pos = 0;
            }
            return WriteOutcome::Idle;
        }
        if !self.sock_writable {
            // Edge-triggered: still waiting for the EPOLLOUT edge after
            // the last `WouldBlock`.
            return WriteOutcome::WouldBlock;
        }
        if gcx_faults::fire("net.write.err") {
            return WriteOutcome::Gone;
        }
        let cap = if gcx_faults::fire("net.write.short") {
            1
        } else {
            self.send.len() - self.send_pos
        };
        loop {
            match self
                .stream
                .write(&self.send[self.send_pos..self.send_pos + cap])
            {
                Ok(0) => return WriteOutcome::Gone,
                Ok(n) => {
                    shared
                        .counters
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                    if self.ttfb_pending {
                        self.ttfb_pending = false;
                        if let Some(t0) = self.req_start {
                            shared.metrics.ttfb.record(t0.elapsed());
                        }
                        shared.recorder.record_instant(
                            self.trace_id,
                            SpanKind::FirstByte,
                            0,
                            n as u64,
                        );
                    }
                    self.send_pos += n;
                    if self.send_pos >= self.send.len() {
                        self.send.clear();
                        self.send_pos = 0;
                    }
                    return WriteOutcome::Progress;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.sock_writable = false;
                    return WriteOutcome::WouldBlock;
                }
                // EINTR: retry, for the same edge-preservation reason as
                // in `read_some`.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return WriteOutcome::Gone,
            }
        }
    }

    /// Unregisters any in-flight session and closes the connection. The
    /// session itself is cancelled when the state drops.
    fn teardown(&mut self, shared: &Arc<ServerShared>) {
        if let ConnState::Body(body) = &self.state {
            finish_registry(shared, body.session_id, None);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.state = ConnState::Closed;
    }
}

enum ReadOutcome {
    Data,
    WouldBlock,
    Eof,
    Gone,
}

enum WriteOutcome {
    Progress,
    /// Send buffer empty — nothing to write (not progress, not an error).
    Idle,
    WouldBlock,
    Gone,
}

/// Removes a session from the registry and records completion counters.
/// Passing `Some(report)` marks success; `None` marks failure/abort.
/// Idempotent per session id.
fn finish_registry(
    shared: &Arc<ServerShared>,
    session_id: u64,
    report: Option<&gcx_core::RunReport>,
) {
    let removed = shared
        .sessions
        .lock()
        .expect("registry lock")
        .remove(&session_id);
    if removed.is_none() {
        return;
    }
    match report {
        Some(r) => {
            shared
                .counters
                .sessions_completed
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .tokens_read_total
                .fetch_add(r.tokens_read + r.tokens_skipped, Ordering::Relaxed);
            shared
                .counters
                .peak_nodes_max
                .fetch_max(r.stats.peak_nodes as u64, Ordering::Relaxed);
        }
        None => {
            shared
                .counters
                .sessions_failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// First ~40 chars of a query for registry labels.
fn preview(query: &str) -> String {
    let flat: String = query.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.len() <= 40 {
        flat
    } else {
        let mut cut = 40;
        while !flat.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &flat[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A session-progress note lands in the mailbox and signals the
    /// worker's eventfd (observable as a drained token list).
    #[test]
    fn mailbox_note_progress_records_token() {
        let mb = WorkerMailbox::new().unwrap();
        mb.note_progress(3);
        mb.note_progress(3);
        mb.note_progress(7);
        let tokens = std::mem::take(&mut *mb.progressed.lock().unwrap());
        assert_eq!(tokens, vec![3, 3, 7]);
    }

    /// `GCX_EVALUATORS` only shapes the default; explicit configs win.
    #[test]
    fn explicit_evaluator_count_survives_config() {
        let cfg = NetConfig {
            evaluators: 2,
            ..NetConfig::default()
        };
        assert_eq!(cfg.evaluators, 2);
    }
}
