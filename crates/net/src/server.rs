//! The streaming HTTP front-end: acceptor, connection run-queue, bounded
//! worker pool, session registry.
//!
//! ## Thread topology (fixed at bind time)
//!
//! ```text
//!   acceptor ──► run-queue of connections ──► N connection workers
//!                     ▲        │                  │ try_feed / drain
//!                     └────────┘ (parked conns)   ▼
//!                                         M evaluator-pool threads
//!                                         (gcx-service EvaluatorPool)
//! ```
//!
//! `1 + N + M` threads total, **independent of how many sessions are
//! open**: connection workers never block — sockets are non-blocking and
//! sessions are driven through [`StreamSession::try_feed`], so a
//! backpressured or slow connection is parked back on the run-queue and
//! the worker picks up another. Evaluators run on the shared
//! [`EvaluatorPool`]; sessions beyond its size queue (their input simply
//! buffers until a pool thread frees up). This replaces the
//! one-thread-per-session model `StreamSession` started with.
//!
//! ## Endpoints
//!
//! * `POST /query?xq=<urlencoded XQ>` (or `?name=<registered query>`) —
//!   the request body is the XML document, `Content-Length` or chunked;
//!   the response streams the result as a chunked body while the
//!   document is still being uploaded. Constant memory end to end.
//! * `GET /stats` — JSON: server counters, service cache stats, memory
//!   budget, and **live per-session buffer statistics** sampled from the
//!   engines mid-run.
//! * `GET /metrics` — Prometheus text exposition of the same planes.
//! * `GET /trace` — recent kept request traces as Chrome trace-event
//!   JSON (Perfetto-loadable); see [`gcx_obs::FlightRecorder`].
//! * `GET /healthz` — liveness probe.

use crate::http;
use crate::metrics::{self, NetMetrics, ReqClass};
use crate::stats_json;
use gcx_buffer::LiveBufferStats;
use gcx_obs::{log_debug, log_warn, FlightRecorder, SpanKind};
use gcx_service::{EvaluatorPool, QueryService, ServiceConfig, StreamSession, TryFeed};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Eventcount for session-progress wakeups. Connection workers that find
/// a connection unable to move (socket and session both blocked) used to
/// sleep a flat 500 µs before re-polling; now each session's evaluator
/// bumps this signal whenever it consumes input, produces output or
/// terminates (via [`gcx_service::SessionConfig::progress_waker`]), and a
/// worker waits on it instead — waking immediately on evaluator progress
/// while keeping the same bounded timeout as a poll fallback for socket
/// readability (which has no notification source without epoll).
///
/// `bump` is wait-free when nobody is parked: one atomic increment plus
/// one atomic load. The lock is only taken to publish the notify when a
/// waiter is registered — evaluator hot paths (one bump per output tag
/// batch) stay cheap.
pub(crate) struct ProgressSignal {
    seq: AtomicU64,
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ProgressSignal {
    fn new() -> Self {
        ProgressSignal {
            seq: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Records progress and wakes parked workers, if any.
    ///
    /// Orderings are `SeqCst` on both the seq bump and the waiters
    /// check: with anything weaker the store→load pairs here and in
    /// [`Self::wait_past`] may reorder (store buffering), letting a bump
    /// see `waiters == 0` while the racing parker still sees the old
    /// seq — a lost wakeup, the one failure mode this type exists to
    /// prevent. The single total order makes one side always observe
    /// the other.
    pub(crate) fn bump(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders the notify after a racing waiter's
            // seq check: the waiter holds it between checking and waiting.
            let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            // One waiter per bump: workers share one run-queue, so any
            // woken worker can drive the progressed connection; waking
            // the whole park ring on every output batch of one fast
            // session would burn idle-path CPU re-polling unrelated
            // blocked sockets. Concurrent bumps wake additional workers,
            // and the poll timeout still bounds worst-case staleness.
            self.cv.notify_one();
        }
    }

    /// The current sequence number; read before driving a connection so
    /// progress made during the attempt is never missed by `wait_past`.
    fn current(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Parks until the sequence moves past `observed` or `timeout`
    /// elapses, whichever is first.
    fn wait_past(&self, observed: u64, timeout: Duration) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        if self.seq.load(Ordering::SeqCst) == observed {
            let _ = self
                .cv
                .wait_timeout(guard, timeout)
                .unwrap_or_else(|p| p.into_inner());
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Front-end configuration.
pub struct NetConfig {
    /// Connection workers (socket I/O + session driving). Default 4.
    pub workers: usize,
    /// Evaluator-pool threads (concurrent evaluations). Default 8.
    pub evaluators: usize,
    /// The underlying query service (cache, budget, engine options).
    pub service: ServiceConfig,
    /// Named queries addressable as `POST /query?name=<name>`.
    pub queries: Vec<(String, String)>,
    /// Charge each session's engine buffer against the service's memory
    /// budget (hard per-session failure instead of unbounded growth).
    /// Only effective when `service.memory_budget` is set. Default true.
    pub charge_engine_buffer: bool,
    /// Maximum request-head size. Default 16 KiB.
    pub max_head_bytes: usize,
    /// Socket read size per step. Default 64 KiB.
    pub io_chunk_bytes: usize,
    /// Connections making no progress for this long *mid-request* are
    /// dropped (slow clients must not pin evaluator threads forever).
    /// Default 30 s.
    pub idle_timeout: Duration,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server closes it. Default 15 s.
    pub keep_alive_timeout: Duration,
    /// Requests served over one connection before the server answers
    /// with `Connection: close` (bounds per-connection state lifetime).
    /// Default 1000.
    pub max_requests_per_conn: u64,
    /// Per-session output high-water mark: above this many undrained
    /// result bytes the evaluator parks (backpressure). Default 1 MiB.
    pub output_high_water: usize,
    /// Per-session output hard cap: a client that stops draining fails
    /// its session cleanly (422 or aborted stream, counted in `/stats`
    /// as `sessions_output_capped`) once undrained output creeps past
    /// this. Default 4 MiB.
    pub output_max_bytes: usize,
    /// Admission cap: with this many connections already open, new ones
    /// are answered `503 Service Unavailable` + `Retry-After` straight
    /// from the acceptor instead of queueing behind a saturated server
    /// (counted in `/stats` as `connections_shed`). Default 4096.
    pub max_connections: usize,
    /// Overload deadline for the accept→first-worker-drive queue wait: a
    /// connection that waited longer is shed with a fast `503` +
    /// `Retry-After` rather than served at collapsed latency. Default 2 s.
    pub queue_wait_deadline: Duration,
    /// Head-based trace sampling: every `trace_sample_every`th query
    /// request is kept in the flight recorder (the first always is).
    /// Slow requests are kept regardless (see `slow_request_threshold`).
    /// 0 disables head sampling. Default 64.
    pub trace_sample_every: u64,
    /// Requests slower than this are kept in the flight recorder
    /// retroactively and logged (one structured warn line with trace ID
    /// and per-stage breakdown). `None` disables. Default `None`; the
    /// `gcx serve` binary wires `GCX_SLOW_MS` / `--slow-ms` here.
    pub slow_request_threshold: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            evaluators: 8,
            service: ServiceConfig::default(),
            queries: Vec::new(),
            charge_engine_buffer: true,
            max_head_bytes: 16 * 1024,
            io_chunk_bytes: 64 * 1024,
            idle_timeout: Duration::from_secs(30),
            keep_alive_timeout: Duration::from_secs(15),
            max_requests_per_conn: 1000,
            output_high_water: 1024 * 1024,
            output_max_bytes: 4 * 1024 * 1024,
            max_connections: 4096,
            queue_wait_deadline: Duration::from_secs(2),
            trace_sample_every: 64,
            slow_request_threshold: None,
        }
    }
}

/// Server-level counters (monotonic; `active_sessions` is derived from
/// the registry instead).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// TCP connections accepted. With keep-alive, `requests` outgrows
    /// this — the whole point of not tearing the world down per request.
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub sessions_completed: AtomicU64,
    pub sessions_failed: AtomicU64,
    /// Sessions failed specifically because the client stopped draining
    /// and the per-session output cap tripped.
    pub sessions_output_capped: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Sum of `tokens_read + tokens_skipped` over completed sessions.
    pub tokens_read_total: AtomicU64,
    /// Max `peak_nodes` over completed sessions.
    pub peak_nodes_max: AtomicU64,
    /// Connections answered `503` by overload shedding — the admission
    /// cap (`max_connections`) or the queue-wait deadline.
    pub connections_shed: AtomicU64,
    /// `accept(2)` failures (fd exhaustion, aborted handshakes); the
    /// acceptor backs off exponentially while these persist.
    pub accept_errors: AtomicU64,
}

/// One live session as seen by `/stats`.
pub struct SessionEntry {
    pub query_label: String,
    pub peer: String,
    pub started: Instant,
    pub live: Arc<LiveBufferStats>,
}

pub(crate) struct ServerShared {
    pub(crate) service: QueryService,
    pub(crate) queries: HashMap<String, String>,
    run_queue: Mutex<VecDeque<Conn>>,
    work: Condvar,
    /// Session-progress wakeups for parked connections (own `Arc` so the
    /// per-session waker closures hold no cycle back to `ServerShared`).
    progress: Arc<ProgressSignal>,
    stop: AtomicBool,
    /// Graceful drain in progress: stop accepting, finish in-flight
    /// requests, answer `Connection: close` at every response boundary.
    /// Distinct from `stop`, which abandons queued connections outright.
    draining: AtomicBool,
    /// Connections currently alive anywhere (queued, driven, parked).
    /// Maintained by [`OpenGuard`] so every disposal path decrements.
    open_conns: Arc<AtomicUsize>,
    pub(crate) counters: ServerCounters,
    pub(crate) metrics: NetMetrics,
    pub(crate) sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_session_id: AtomicU64,
    pub(crate) pool: EvaluatorPool,
    charge_engine_buffer: bool,
    max_head_bytes: usize,
    io_chunk_bytes: usize,
    /// Largest slice offered to `try_feed` at once — `io_chunk_bytes`
    /// clamped to the memory budget, so a single offer can never be
    /// rejected as permanently unfittable.
    feed_chunk_bytes: usize,
    idle_timeout: Duration,
    keep_alive_timeout: Duration,
    max_requests_per_conn: u64,
    output_high_water: usize,
    output_max_bytes: usize,
    max_connections: usize,
    queue_wait_deadline: Duration,
    pub(crate) workers: usize,
    pub(crate) evaluators: usize,
    /// The flight recorder every request records into (see `gcx-obs`).
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Server start time (`uptime_s` in `/stats`, uptime in `/metrics`).
    pub(crate) started: Instant,
    /// Trace IDs are minted sequentially from 1 (0 = no trace).
    next_trace_id: AtomicU64,
    /// Query-class requests seen, for the head-sampling keep decision —
    /// counted separately from trace IDs so "keep every Nth *query*" is
    /// deterministic no matter how many `/stats` scrapes interleave.
    queries_seen: AtomicU64,
    pub(crate) trace_sample_every: u64,
    slow_threshold: Option<Duration>,
}

impl ServerShared {
    pub(crate) fn open_connections(&self) -> usize {
        self.open_conns.load(Ordering::SeqCst)
    }
}

/// Holds one slot of `open_conns` for the lifetime of its [`Conn`]; the
/// `Drop` decrement covers every disposal path — clean close, teardown,
/// shed, or a queued connection dropped by shutdown's `q.clear()`.
struct OpenGuard(Arc<AtomicUsize>);

impl OpenGuard {
    fn new(counter: Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        OpenGuard(counter)
    }
}

impl Drop for OpenGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The running server. Bound threads live until [`GcxServer::shutdown`]
/// (or drop).
pub struct GcxServer {
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl GcxServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawns
    /// the fixed thread set: one acceptor, `workers` connection workers,
    /// `evaluators` pool threads.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> std::io::Result<GcxServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let evaluators = config.evaluators.max(1);
        let io_chunk_bytes = config.io_chunk_bytes.max(512);
        let feed_chunk_bytes = config
            .service
            .memory_budget
            .map_or(io_chunk_bytes, |b| io_chunk_bytes.min(b.max(1)));
        let shared = Arc::new(ServerShared {
            service: QueryService::new(config.service),
            queries: config.queries.into_iter().collect(),
            run_queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            progress: Arc::new(ProgressSignal::new()),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            open_conns: Arc::new(AtomicUsize::new(0)),
            counters: ServerCounters::default(),
            metrics: NetMetrics::new(),
            sessions: Mutex::new(HashMap::new()),
            next_session_id: AtomicU64::new(1),
            pool: EvaluatorPool::new(evaluators),
            charge_engine_buffer: config.charge_engine_buffer,
            max_head_bytes: config.max_head_bytes.max(512),
            io_chunk_bytes,
            feed_chunk_bytes,
            idle_timeout: config.idle_timeout,
            keep_alive_timeout: config.keep_alive_timeout,
            max_requests_per_conn: config.max_requests_per_conn.max(1),
            output_high_water: config.output_high_water,
            output_max_bytes: config.output_max_bytes,
            max_connections: config.max_connections.max(1),
            queue_wait_deadline: config.queue_wait_deadline,
            workers,
            evaluators,
            recorder: Arc::new(FlightRecorder::new()),
            started: Instant::now(),
            next_trace_id: AtomicU64::new(1),
            queries_seen: AtomicU64::new(0),
            trace_sample_every: config.trace_sample_every,
            slow_threshold: config.slow_request_threshold,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("gcx-net-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))
                    .expect("spawn acceptor"),
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gcx-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn connection worker"),
            );
        }
        Ok(GcxServer {
            shared,
            threads,
            addr: local,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fixed thread count: acceptor + connection workers + evaluators.
    /// Does **not** grow with open sessions — that is the point.
    pub fn thread_count(&self) -> usize {
        1 + self.shared.workers + self.shared.evaluators
    }

    /// The underlying service (stats, cache introspection).
    pub fn service(&self) -> &QueryService {
        &self.shared.service
    }

    /// Server counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.shared.counters
    }

    /// Sessions currently registered (mid-stream).
    pub fn active_sessions(&self) -> usize {
        self.shared.sessions.lock().expect("registry lock").len()
    }

    /// Renders the `/stats` JSON document (also served over HTTP).
    pub fn stats_json(&self) -> String {
        stats_json::render(&self.shared)
    }

    /// Renders the `/metrics` Prometheus text exposition (also served
    /// over HTTP).
    pub fn metrics_text(&self) -> String {
        metrics::render(&self.shared)
    }

    /// Blocks the calling thread until the server shuts down (CLI
    /// foreground mode).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Stops accepting, drops queued connections (cancelling their
    /// sessions), and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Graceful drain: stops accepting immediately, lets in-flight
    /// requests run to completion (keep-alive connections are told
    /// `Connection: close` at their next response boundary, idle ones
    /// are closed at once), and hard-cancels whatever is still open when
    /// `deadline` expires — at which point this degenerates into
    /// [`GcxServer::shutdown`].
    pub fn shutdown_graceful(mut self, deadline: Duration) {
        self.drain_then_stop(deadline);
    }

    /// Connections currently open (queued, driven, or parked).
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections()
    }

    fn drain_then_stop(&mut self, deadline: Duration) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the acceptor so it observes the drain and exits.
        let _ = TcpStream::connect(self.addr);
        self.shared.work.notify_all();
        let t0 = Instant::now();
        while t0.elapsed() < deadline {
            if self.shared.open_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Either drained clean or out of patience: hard-stop the rest.
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.work.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Connections (and their sessions) are gone; now the evaluator
        // pool can drain and stop.
        self.shared.pool.shutdown();
    }
}

impl Drop for GcxServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept-error backoff bounds: persistent failures (EMFILE under fd
/// exhaustion, ECONNABORTED storms) must not busy-spin a core, but a
/// long fixed sleep would throttle recovery — so exponential between
/// these, reset on the next successful accept.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
                    // Returning drops the listener: a draining server
                    // refuses new connections at the socket.
                    return;
                }
                if gcx_faults::fire("net.accept.err") {
                    shared
                        .counters
                        .accept_errors
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    continue;
                }
                backoff = ACCEPT_BACKOFF_MIN;
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if shared.open_connections() >= shared.max_connections {
                    shed_overloaded_stream(shared, stream);
                    continue;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn = Conn::new(
                    stream,
                    peer.to_string(),
                    OpenGuard::new(shared.open_conns.clone()),
                );
                let mut q = shared.run_queue.lock().expect("run queue lock");
                q.push_back(conn);
                drop(q);
                shared.work.notify_one();
            }
            Err(e) => {
                if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                shared
                    .counters
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                log_debug!(LOG_TARGET, "accept error (backoff {backoff:?}): {e}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// The canned overload answer: `503` + `Retry-After`, `Connection:
/// close`. Kept to one small write so the admission-cap fast path on
/// the acceptor thread answers within milliseconds even when every
/// worker is saturated.
fn overload_response() -> Vec<u8> {
    let body: &[u8] = b"server overloaded, retry later\n";
    let len = body.len().to_string();
    let mut out = http::response_head(
        503,
        "Service Unavailable",
        &[
            ("Content-Type", TEXT_PLAIN),
            ("Retry-After", "1"),
            ("Content-Length", &len),
        ],
        false,
    );
    out.extend_from_slice(body);
    out
}

/// Sheds a connection the admission cap rejected: best-effort fast 503
/// straight from the acceptor thread, then close (drop).
fn shed_overloaded_stream(shared: &Arc<ServerShared>, mut stream: TcpStream) {
    shared
        .counters
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nonblocking(false);
    let _ = stream.write_all(&overload_response());
    log_debug!(LOG_TARGET, "connection shed: admission cap reached");
}

fn worker_loop(shared: &Arc<ServerShared>) {
    // Consecutive blocked connections stepped without progress. A
    // progress bump wakes *one* worker, but the connection that
    // progressed can sit anywhere in the run queue — so a woken worker
    // keeps popping (and re-queuing) blocked connections until it has
    // covered a full queue's worth without progress, and only then
    // parks. Without the sweep, a wrong-connection pop would consume
    // the bump and park again, leaving the progressed connection to
    // wait out the poll timeout — per-request latency, multiplied under
    // keep-alive where every request crosses the worker↔evaluator
    // boundary twice.
    let mut idle_streak = 0usize;
    loop {
        let mut conn = {
            let mut q = shared.run_queue.lock().expect("run queue lock");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    // Dropping connections cancels their sessions; the
                    // evaluator pool is still alive to observe it.
                    q.clear();
                    return;
                }
                if let Some(c) = q.pop_front() {
                    break c;
                }
                idle_streak = 0;
                let (guard, _) = shared
                    .work
                    .wait_timeout(q, Duration::from_millis(5))
                    .expect("run queue lock poisoned");
                q = guard;
            }
        };
        if !conn.queue_wait_recorded {
            conn.queue_wait_recorded = true;
            let waited = conn.accepted.elapsed();
            shared.metrics.queue_wait.record(waited);
            if waited > shared.queue_wait_deadline {
                // Saturated past the deadline before the first drive:
                // shedding this connection fast beats serving everyone
                // at collapsed latency.
                conn.shed_overloaded(shared);
                idle_streak = 0;
                continue;
            }
        }
        if shared.draining.load(Ordering::SeqCst) && conn.is_idle_keep_alive() {
            // Draining: close parked keep-alive connections immediately
            // instead of letting them sit out the keep-alive timeout.
            conn.teardown(shared);
            idle_streak = 0;
            continue;
        }
        // Observe the progress sequence *before* driving: progress made
        // by an evaluator during the attempt bumps it, so a subsequent
        // `wait_past` returns immediately instead of losing the wakeup.
        let observed = shared.progress.current();
        let mut made_progress = false;
        // Drive this connection as far as it goes without blocking.
        let finished = loop {
            match conn.step(shared) {
                StepResult::Progress => made_progress = true,
                StepResult::Blocked => break false,
                StepResult::Finished => break true,
            }
        };
        if finished {
            conn.teardown(shared);
            idle_streak = 0;
            continue;
        }
        if made_progress {
            conn.last_progress = Instant::now();
            idle_streak = 0;
        } else if conn.last_progress.elapsed() > conn.idle_budget(shared) {
            conn.fail_idle(shared);
            conn.teardown(shared);
            // The queue shrank: a stale streak would end the sweep early
            // and park past connections that still need a look.
            idle_streak = 0;
            continue;
        } else {
            idle_streak += 1;
        }
        let park = conn.park_timeout();
        let mut q = shared.run_queue.lock().expect("run queue lock");
        q.push_back(conn);
        let queued = q.len();
        drop(q);
        if made_progress {
            shared.work.notify_one();
        } else if idle_streak >= queued {
            // A full unproductive sweep of the queue: nothing anywhere
            // can move. Park on the progress signal: an evaluator
            // draining input, producing output or finishing wakes us
            // immediately; the timeout is only the poll fallback for
            // socket readability (shortened right after a response,
            // when the next keep-alive request is likely already on
            // the wire).
            shared.progress.wait_past(observed, park);
            idle_streak = 0;
        }
        // else: sweep on — try the next queued connection immediately.
    }
}

enum StepResult {
    /// State advanced (bytes moved, session fed, response emitted …).
    Progress,
    /// Nothing can move right now (socket or session would block).
    Blocked,
    /// The connection is done (cleanly or not) and must be torn down.
    Finished,
}

enum ConnState {
    /// Accumulating (or parsing buffered pipelined bytes of) the next
    /// request head.
    Head,
    /// Streaming a request body through a session.
    Body(Box<BodyState>),
    /// Discarding the remainder of a framed request body after an early
    /// error response, so the connection stays reusable.
    Drain(Box<DrainState>),
    /// Writing out the remaining `send` buffer, then looping back to
    /// `Head` (keep-alive) or closing.
    Flush {
        close: bool,
    },
    Closed,
}

enum BodyFraming {
    /// `Content-Length`: remaining body bytes.
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked(http::ChunkedDecoder),
    /// No framing given: body runs until EOF (HTTP/1.0 style). The
    /// connection cannot be reused afterwards.
    Eof,
}

impl BodyFraming {
    /// Decodes raw socket bytes per this framing, appending body payload
    /// to `out`; returns the number of `recv` bytes consumed. The single
    /// copy of the framing state machine, shared by the feed path
    /// (`step_body`) and the discard path (`step_drain`).
    fn decode_into(&mut self, recv: &[u8], out: &mut Vec<u8>) -> Result<usize, String> {
        match self {
            BodyFraming::Length(remaining) => {
                let take = (*remaining).min(recv.len() as u64) as usize;
                out.extend_from_slice(&recv[..take]);
                *remaining -= take as u64;
                Ok(take)
            }
            BodyFraming::Chunked(dec) => dec.decode(recv, out),
            BodyFraming::Eof => {
                out.extend_from_slice(recv);
                Ok(recv.len())
            }
        }
    }

    fn complete(&self) -> bool {
        match self {
            BodyFraming::Length(n) => *n == 0,
            BodyFraming::Chunked(d) => d.is_done(),
            BodyFraming::Eof => false, // completion signalled by EOF
        }
    }
}

struct BodyState {
    session: StreamSession,
    session_id: u64,
    framing: BodyFraming,
    /// Response head already sent. It goes out lazily, with the first
    /// output byte, so pre-output failures can still return a clean 4xx.
    sent_head: bool,
    /// Decoded body bytes not yet accepted by `try_feed`.
    pending: Vec<u8>,
    pending_pos: usize,
    /// All input fed and `close_input` called.
    input_closed: bool,
    /// Output produced after the upload completed, held back until the
    /// session's verdict: emitting it would commit us to a 200, and with
    /// the input already closed the verdict is at most one evaluation
    /// away — so completed uploads that fail get a clean 4xx instead of
    /// a racy truncated 200. (Mid-upload output streams immediately;
    /// that is the whole point of the engine.)
    held: Vec<u8>,
    /// Socket saw EOF.
    saw_eof: bool,
    /// Reuse the connection for another request after this response.
    keep: bool,
    /// Frame the response body chunked (HTTP/1.1). HTTP/1.0 clients get
    /// a close-delimited body instead, and `keep` is forced off.
    chunked_response: bool,
}

/// Discard-the-body state after an early error response (bad query name,
/// missing parameters, …): the request's remaining body bytes must be
/// consumed before the next head can be parsed off the same socket.
struct DrainState {
    framing: BodyFraming,
    /// Bytes discarded so far; bounded by [`DRAIN_MAX_BYTES`].
    drained: u64,
    saw_eof: bool,
    /// Reusable decode sink (cleared per step; the payload is discarded).
    sink: Vec<u8>,
}

/// Upper bound on request-body bytes discarded to keep a connection
/// alive after an early error; a larger remainder closes instead (the
/// teardown is cheaper than sinking megabytes).
const DRAIN_MAX_BYTES: u64 = 256 * 1024;

/// Content type of plain-text (error/health) responses.
const TEXT_PLAIN: &str = "text/plain; charset=utf-8";

/// Log target for server events (`GCX_LOG=gcx_net=debug`).
const LOG_TARGET: &str = "gcx_net::server";

/// Whether a body with this framing is worth discarding to keep the
/// connection: bounded `Content-Length` or chunked (capped while
/// draining); EOF-framed bodies only end with the connection.
fn drainable(framing: &BodyFraming) -> bool {
    match framing {
        BodyFraming::Length(n) => *n <= DRAIN_MAX_BYTES,
        BodyFraming::Chunked(_) => true,
        BodyFraming::Eof => false,
    }
}

struct Conn {
    stream: TcpStream,
    peer: String,
    recv: Vec<u8>,
    send: Vec<u8>,
    send_pos: usize,
    /// Reusable socket-read scratch (sized lazily to `io_chunk_bytes`).
    scratch: Vec<u8>,
    state: ConnState,
    last_progress: Instant,
    /// Requests answered on this connection so far.
    requests_served: u64,
    /// When the acceptor queued this connection; the accept→first-drive
    /// delta is the connection's queue wait.
    accepted: Instant,
    /// Queue wait already recorded (first worker drive happened).
    queue_wait_recorded: bool,
    /// When the in-flight request's head was parsed; taken when the
    /// response is fully flushed (total latency) — requests that die
    /// mid-flight (teardown, timeouts) are not recorded.
    req_start: Option<Instant>,
    /// Endpoint class of the in-flight request.
    req_class: ReqClass,
    /// First response byte not yet on the wire (TTFB pending).
    ttfb_pending: bool,
    /// Trace ID of the in-flight request (minted at head parse; 0 when
    /// no request is in flight).
    trace_id: u64,
    /// Head-sampling verdict: keep this request's trace at completion.
    trace_keep: bool,
    /// Label for the kept trace (query name / preview, else the path).
    req_label: Option<String>,
    /// Just finished a response: the client's next request is likely
    /// already in flight, so parked workers poll this connection at
    /// [`HOT_PARK_TIMEOUT`] instead of the regular poll fallback until
    /// the window expires. Socket readability has no notification
    /// source without epoll; this keeps sequential keep-alive requests
    /// from paying the full poll interval as latency.
    hot_until: Option<Instant>,
    /// Slot in the server's `open_conns` count (released on drop).
    _open: OpenGuard,
}

/// How long after a completed response the connection is polled hot.
const HOT_WINDOW: Duration = Duration::from_millis(2);
/// Poll interval inside the hot window.
const HOT_PARK_TIMEOUT: Duration = Duration::from_micros(30);

/// Above this much un-flushed response data, stop pulling more output
/// from the session: the socket's backpressure propagates to the engine
/// by letting output sit in the session's buffer.
const SEND_HIGH_WATER: usize = 256 * 1024;

/// Above this much decoded-but-unfed body data, stop reading the socket:
/// a client uploading faster than its session evaluates must not make
/// the server buffer the document.
const RECV_HIGH_WATER: usize = 256 * 1024;

impl Conn {
    fn new(stream: TcpStream, peer: String, open: OpenGuard) -> Self {
        Conn {
            stream,
            peer,
            _open: open,
            recv: Vec::new(),
            send: Vec::new(),
            send_pos: 0,
            scratch: Vec::new(),
            state: ConnState::Head,
            last_progress: Instant::now(),
            requests_served: 0,
            accepted: Instant::now(),
            queue_wait_recorded: false,
            req_start: None,
            req_class: ReqClass::Other,
            ttfb_pending: false,
            trace_id: 0,
            trace_keep: false,
            req_label: None,
            hot_until: None,
        }
    }

    /// A keep-alive connection parked between requests with nothing
    /// buffered in either direction — safe to close during a drain.
    fn is_idle_keep_alive(&self) -> bool {
        self.requests_served > 0
            && self.recv.is_empty()
            && self.send_pos >= self.send.len()
            && matches!(self.state, ConnState::Head)
    }

    /// Sheds this connection (queue-wait deadline exceeded): a fast 503
    /// + `Retry-After`, best-effort flushed, then close.
    fn shed_overloaded(&mut self, shared: &Arc<ServerShared>) {
        shared
            .counters
            .connections_shed
            .fetch_add(1, Ordering::Relaxed);
        self.send.extend_from_slice(&overload_response());
        if self.send_pos < self.send.len() {
            let _ = self.stream.write_all(&self.send[self.send_pos..]);
        }
        self.teardown(shared);
    }

    /// The park timeout for a worker holding this (blocked) connection.
    fn park_timeout(&self) -> Duration {
        match self.hot_until {
            Some(t) if Instant::now() < t => HOT_PARK_TIMEOUT,
            _ => Duration::from_micros(500),
        }
    }

    /// The no-progress budget for the connection's current state: a
    /// keep-alive connection parked *between* requests gets the (shorter)
    /// keep-alive timeout; anything mid-request gets the idle timeout.
    fn idle_budget(&self, shared: &Arc<ServerShared>) -> Duration {
        match &self.state {
            ConnState::Head if self.recv.is_empty() && self.requests_served > 0 => {
                shared.keep_alive_timeout
            }
            _ => shared.idle_timeout,
        }
    }

    /// One non-blocking step of the connection state machine.
    fn step(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        match self.state {
            ConnState::Closed => StepResult::Finished,
            ConnState::Flush { close } => match self.write_some(shared) {
                WriteOutcome::Progress => {
                    if self.send_pos >= self.send.len() {
                        return self.finish_response(shared, close);
                    }
                    StepResult::Progress
                }
                WriteOutcome::Idle => self.finish_response(shared, close),
                WriteOutcome::WouldBlock => StepResult::Blocked,
                WriteOutcome::Gone => StepResult::Finished,
            },
            ConnState::Head => self.step_head(shared),
            ConnState::Body(_) => self.step_body(shared),
            ConnState::Drain(_) => self.step_drain(shared),
        }
    }

    /// The response is fully on the wire: close, or loop back to parse
    /// the next request (whose bytes may already sit in `recv` —
    /// pipelined requests must not be dropped with the response).
    fn finish_response(&mut self, shared: &Arc<ServerShared>, close: bool) -> StepResult {
        if let Some(t0) = self.req_start.take() {
            let elapsed = t0.elapsed();
            shared.metrics.request_class(self.req_class).record(elapsed);
            if self.trace_id != 0 {
                self.finish_trace(shared, elapsed);
            }
        }
        self.trace_id = 0;
        self.ttfb_pending = false;
        // A drain that began mid-response still ends the connection at
        // this boundary, even if the response itself negotiated
        // keep-alive before the drain started.
        if close || shared.draining.load(Ordering::SeqCst) {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            self.state = ConnState::Closed;
            return StepResult::Finished;
        }
        self.state = ConnState::Head;
        self.hot_until = Some(Instant::now() + HOT_WINDOW);
        StepResult::Progress
    }

    /// Completes the in-flight request's trace: flush instant, the
    /// whole-request span, the keep decision (head-sampled or slow), and
    /// the slow-request log line with its per-stage breakdown.
    fn finish_trace(&mut self, shared: &Arc<ServerShared>, elapsed: Duration) {
        let rec = &shared.recorder;
        rec.record_instant(self.trace_id, SpanKind::Flush, 0, 0);
        let dur_ns = elapsed.as_nanos() as u64;
        let start = rec.now_ns().saturating_sub(dur_ns);
        rec.record_span(self.trace_id, SpanKind::Request, start, dur_ns, 0);
        let slow = shared.slow_threshold.is_some_and(|t| elapsed >= t);
        if self.trace_keep || slow {
            let label = self.req_label.as_deref().unwrap_or("");
            rec.keep(self.trace_id, label, dur_ns, slow);
        }
        if slow {
            // One structured warn line: trace ID + per-stage breakdown
            // (total recorded nanoseconds per stage, scanned from the
            // rings — diagnostics-path cost, never the hot path).
            let totals = rec.stage_totals(self.trace_id);
            let mut stages = String::new();
            for (kind, ns) in totals {
                if kind == SpanKind::Request || ns == 0 {
                    continue;
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut stages,
                    format_args!(" {}_us={}", kind.name(), ns / 1000),
                );
            }
            log_warn!(
                LOG_TARGET,
                "slow request: trace_id={} label={:?} class={:?} total_ms={}{}",
                self.trace_id,
                self.req_label.as_deref().unwrap_or(""),
                self.req_class,
                elapsed.as_millis(),
                stages
            );
        }
    }

    fn step_head(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        // Parse before reading: a pipelined request (or one that arrived
        // in the same segment as its predecessor) is already buffered,
        // and reading first would block on an empty socket despite a
        // complete head sitting in `recv`.
        if let Some(head_end) = http::find_head_end(&self.recv) {
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            self.requests_served += 1;
            // Request clock starts at head parse; `dispatch` refines the
            // class, `finish_response` stops the clock.
            self.req_start = Some(Instant::now());
            self.req_class = ReqClass::Other;
            self.ttfb_pending = true;
            // Every request gets a trace ID; whether the trace is *kept*
            // (exported by /trace) is decided at completion — head
            // sampling for queries, retroactive keep for slow requests.
            self.trace_id = shared.next_trace_id.fetch_add(1, Ordering::Relaxed);
            self.trace_keep = false;
            self.req_label = None;
            shared
                .recorder
                .record_instant(self.trace_id, SpanKind::HeadParse, 0, 0);
            let head = match http::parse_head(&self.recv[..head_end]) {
                Ok(h) => h,
                Err(e) => {
                    // Framing is untrustworthy after a malformed head;
                    // answer and close.
                    self.respond_simple(
                        400,
                        "Bad Request",
                        &format!("malformed request: {e}\n"),
                        false,
                    );
                    return StepResult::Progress;
                }
            };
            self.recv.drain(..head_end);
            self.dispatch(shared, &head);
            return StepResult::Progress;
        }
        match self.read_some(shared) {
            ReadOutcome::Data => {}
            ReadOutcome::WouldBlock => return StepResult::Blocked,
            ReadOutcome::Eof | ReadOutcome::Gone => return StepResult::Finished,
        }
        if http::find_head_end(&self.recv).is_none() && self.recv.len() > shared.max_head_bytes {
            // Body bytes may already be piling in behind a complete head;
            // only an actually-unterminated head this large is an error.
            self.respond_simple(
                431,
                "Request Header Fields Too Large",
                "head too large\n",
                false,
            );
        }
        StepResult::Progress // parse (or keep reading) on the next step
    }

    /// Whether the connection may serve another request after this one.
    /// A draining server answers `Connection: close` at every response
    /// boundary so keep-alive clients let go promptly.
    fn negotiate_keep_alive(&self, shared: &Arc<ServerShared>, head: &http::RequestHead) -> bool {
        head.wants_keep_alive()
            && self.requests_served < shared.max_requests_per_conn
            && !shared.draining.load(Ordering::SeqCst)
    }

    fn dispatch(&mut self, shared: &Arc<ServerShared>, head: &http::RequestHead) {
        // One classification point for the latency histograms: derived
        // from the same (method, path) pair the routing below matches on.
        self.req_class = metrics::classify(&head.method, &head.path);
        self.req_label = Some(head.path.clone());
        match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => self.respond_early(shared, head, 200, "OK", TEXT_PLAIN, "ok\n"),
            ("GET", "/stats") => {
                let json = stats_json::render(shared);
                self.respond_early(shared, head, 200, "OK", "application/json", &json);
            }
            ("GET", "/metrics") => {
                let text = metrics::render(shared);
                self.respond_early(
                    shared,
                    head,
                    200,
                    "OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &text,
                );
            }
            ("GET", "/trace") => {
                let json = shared.recorder.export_chrome_json();
                self.respond_early(shared, head, 200, "OK", "application/json", &json);
            }
            ("POST", "/query") => {
                self.dispatch_query(shared, head);
            }
            _ => self.respond_early(
                shared,
                head,
                404,
                "Not Found",
                TEXT_PLAIN,
                "unknown endpoint\n",
            ),
        }
    }

    /// Parses the request's body framing, if any.
    fn body_framing(head: &http::RequestHead) -> Result<Option<BodyFraming>, String> {
        if head.is_chunked() {
            return Ok(Some(BodyFraming::Chunked(http::ChunkedDecoder::new())));
        }
        match head.content_length()? {
            Some(0) | None => Ok(None),
            Some(n) => Ok(Some(BodyFraming::Length(n))),
        }
    }

    /// Answers a request *before* (or instead of) consuming its body —
    /// health/stats endpoints and early errors. A body the client is
    /// still sending must be discarded before the next head can be read
    /// off the socket, so framed bodies of tolerable size enter the
    /// drain state; anything else closes after the response.
    fn respond_early(
        &mut self,
        shared: &Arc<ServerShared>,
        head: &http::RequestHead,
        status: u16,
        reason: &str,
        content_type: &str,
        body: &str,
    ) {
        let keep = self.negotiate_keep_alive(shared, head);
        let framing = match Self::body_framing(head) {
            Ok(f) => f,
            Err(_) => {
                // Unparseable Content-Length: the body's extent is
                // unknowable, so the connection cannot be reused —
                // answer and close.
                self.respond_simple_typed(status, reason, content_type, body, false);
                return;
            }
        };
        match framing {
            None if keep => {
                self.respond_simple_typed(status, reason, content_type, body, true);
            }
            // A client waiting for `100 Continue` never sends the body —
            // draining would stall until the timeout; close instead.
            Some(f) if keep && !head.expects_continue() && drainable(&f) => {
                self.send.extend_from_slice(&http::simple_response(
                    status,
                    reason,
                    content_type,
                    body.as_bytes(),
                    true,
                ));
                self.state = ConnState::Drain(Box::new(DrainState {
                    framing: f,
                    drained: 0,
                    saw_eof: false,
                    sink: Vec::new(),
                }));
            }
            _ => self.respond_simple_typed(status, reason, content_type, body, false),
        }
    }

    fn dispatch_query(&mut self, shared: &Arc<ServerShared>, head: &http::RequestHead) {
        let query_text = match (head.param("xq"), head.param("name")) {
            (Some(xq), _) => xq.to_string(),
            (None, Some(name)) => match shared.queries.get(name) {
                Some(q) => q.clone(),
                None => {
                    self.respond_early(
                        shared,
                        head,
                        404,
                        "Not Found",
                        TEXT_PLAIN,
                        &format!("no registered query named {name:?}\n"),
                    );
                    return;
                }
            },
            (None, None) => {
                self.respond_early(
                    shared,
                    head,
                    400,
                    "Bad Request",
                    TEXT_PLAIN,
                    "POST /query needs ?xq=<urlencoded query> or ?name=<registered query>\n",
                );
                return;
            }
        };
        let framing = if head.is_chunked() {
            BodyFraming::Chunked(http::ChunkedDecoder::new())
        } else {
            match head.content_length() {
                Err(e) => {
                    self.respond_simple(400, "Bad Request", &format!("{e}\n"), false);
                    return;
                }
                Ok(Some(n)) => BodyFraming::Length(n),
                Ok(None) => BodyFraming::Eof,
            }
        };
        // An EOF-framed request body consumes the rest of the stream;
        // the connection cannot carry another request, and the chunked
        // response coding is unavailable to HTTP/1.0 clients.
        let keep = self.negotiate_keep_alive(shared, head)
            && !matches!(framing, BodyFraming::Eof)
            && !head.is_http10();
        let chunked_response = !head.is_http10();
        let live = Arc::new(LiveBufferStats::default());
        let label = head
            .param("name")
            .map_or_else(|| preview(&query_text), str::to_string);
        // Head-based sampling over *query* requests (counted separately
        // from trace IDs, which every request class mints): the first
        // query is always kept, then every `trace_sample_every`th. Slow
        // requests are kept retroactively in `finish_trace` regardless.
        let queries_seen = shared.queries_seen.fetch_add(1, Ordering::Relaxed);
        self.trace_keep =
            shared.trace_sample_every > 0 && queries_seen.is_multiple_of(shared.trace_sample_every);
        self.req_label = Some(label.clone());
        let session = {
            let live = live.clone();
            let pool = shared.pool.clone();
            let charge = shared.charge_engine_buffer;
            let signal = shared.progress.clone();
            let output_high_water = shared.output_high_water;
            let output_max_bytes = shared.output_max_bytes;
            let session_metrics = shared.metrics.sessions.clone();
            let stage_metrics = shared.metrics.engine_stages.clone();
            let recorder = shared.recorder.clone();
            let trace_id = self.trace_id;
            let label = label.clone();
            shared.service.open_session_with(&query_text, move |cfg| {
                cfg.live_stats = Some(live);
                cfg.pool = Some(pool);
                cfg.charge_engine_buffer = charge;
                cfg.output_high_water = output_high_water;
                cfg.output_max_bytes = output_max_bytes;
                cfg.progress_waker = Some(Arc::new(move || signal.bump()));
                cfg.metrics = Some(session_metrics);
                cfg.stage_metrics = Some(stage_metrics);
                cfg.label = Some(label);
                cfg.flight_recorder = Some(recorder);
                cfg.trace_id = trace_id;
            })
        };
        let session = match session {
            Ok(s) => s,
            Err(e) => {
                self.respond_early(
                    shared,
                    head,
                    400,
                    "Bad Request",
                    TEXT_PLAIN,
                    &format!("{e}\n"),
                );
                return;
            }
        };
        let session_id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        shared.sessions.lock().expect("registry lock").insert(
            session_id,
            SessionEntry {
                query_label: label,
                peer: self.peer.clone(),
                started: Instant::now(),
                live,
            },
        );
        if head.expects_continue() {
            self.send
                .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        self.state = ConnState::Body(Box::new(BodyState {
            session,
            session_id,
            framing,
            sent_head: false,
            pending: Vec::new(),
            pending_pos: 0,
            input_closed: false,
            held: Vec::new(),
            saw_eof: false,
            keep,
            chunked_response,
        }));
    }

    /// Discards the remainder of an early-answered request's body; once
    /// the framing completes, the buffered response flushes and the
    /// connection loops back to the next request.
    fn step_drain(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        let mut progress = false;
        match self.write_some(shared) {
            WriteOutcome::Progress => progress = true,
            WriteOutcome::WouldBlock | WriteOutcome::Idle => {}
            WriteOutcome::Gone => return StepResult::Finished,
        }
        let ConnState::Drain(mut drain) = std::mem::replace(&mut self.state, ConnState::Closed)
        else {
            unreachable!("step_drain outside Drain state");
        };
        if !drain.saw_eof && !drain.framing.complete() && self.recv.is_empty() {
            match self.read_some(shared) {
                ReadOutcome::Data => progress = true,
                ReadOutcome::WouldBlock => {}
                ReadOutcome::Eof => {
                    drain.saw_eof = true;
                    progress = true;
                }
                ReadOutcome::Gone => return StepResult::Finished,
            }
        }
        if !self.recv.is_empty() {
            drain.sink.clear();
            let DrainState { framing, sink, .. } = &mut *drain;
            let consumed = match framing.decode_into(&self.recv, sink) {
                Ok(n) => n,
                Err(_) => return StepResult::Finished, // framing lost
            };
            drain.drained += consumed as u64;
            if consumed > 0 {
                self.recv.drain(..consumed);
                progress = true;
            }
            if drain.drained > DRAIN_MAX_BYTES {
                // The client keeps pushing; closing is cheaper than
                // sinking an unbounded body.
                return StepResult::Finished;
            }
        }
        if drain.framing.complete() {
            self.state = ConnState::Flush { close: false };
            return StepResult::Progress;
        }
        if drain.saw_eof {
            return StepResult::Finished;
        }
        self.state = ConnState::Drain(drain);
        if progress {
            StepResult::Progress
        } else {
            StepResult::Blocked
        }
    }

    fn step_body(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        let mut progress = false;

        // 1. Flush the response buffer first — it bounds everything else.
        match self.write_some(shared) {
            WriteOutcome::Progress => progress = true,
            WriteOutcome::WouldBlock | WriteOutcome::Idle => {}
            WriteOutcome::Gone => return StepResult::Finished,
        }

        // Work on the body state outside `self.state` so socket methods
        // on `self` stay callable.
        let ConnState::Body(mut body) = std::mem::replace(&mut self.state, ConnState::Closed)
        else {
            unreachable!("step_body outside Body state");
        };

        // 2. Read more body bytes unless the upload already completed —
        //    or the session is not keeping up (backlog cap: TCP pushes
        //    back on the client instead of us buffering the document).
        let backlog = body.pending.len() - body.pending_pos + self.recv.len();
        if !body.saw_eof && !body.framing.complete() && backlog < RECV_HIGH_WATER {
            match self.read_some(shared) {
                ReadOutcome::Data => progress = true,
                ReadOutcome::WouldBlock => {}
                ReadOutcome::Eof => {
                    body.saw_eof = true;
                    progress = true;
                }
                ReadOutcome::Gone => {
                    self.state = ConnState::Body(body);
                    return StepResult::Finished;
                }
            }
        }

        // EOF before a framed body completed: the client went away;
        // teardown cancels the session.
        if body.saw_eof && !matches!(body.framing, BodyFraming::Eof) && !body.framing.complete() {
            self.state = ConnState::Body(body);
            return StepResult::Finished;
        }

        // 3. Decode raw socket bytes into body payload.
        if !self.recv.is_empty() {
            let consumed = match body.framing.decode_into(&self.recv, &mut body.pending) {
                Ok(n) => n,
                Err(e) => {
                    finish_registry(shared, body.session_id, None);
                    // Framing is lost mid-stream: answer (when the
                    // head is still unsent) and close.
                    if body.sent_head {
                        self.state = ConnState::Flush { close: true };
                    } else {
                        self.respond_simple(
                            400,
                            "Bad Request",
                            &format!("malformed chunked body: {e}\n"),
                            false,
                        );
                    }
                    return StepResult::Progress; // body (and session) dropped here
                }
            };
            if consumed > 0 {
                self.recv.drain(..consumed);
                progress = true;
            }
        }

        // 4. Feed decoded payload into the session. Non-blocking: a full
        //    queue parks the connection, not the worker thread. Slices
        //    are bounded so one offer can always fit the memory budget.
        //    While our own send buffer is backed up (client not reading),
        //    feeding continues but *undrained*: `try_feed` would move the
        //    unread response into `send` without bound, whereas leaving
        //    it in the session engages the per-session output
        //    high-water/hard-cap machinery — the never-draining client
        //    fails its session instead of growing the server.
        let mut output = Vec::new();
        let send_ok = self.send.len() - self.send_pos < SEND_HIGH_WATER;
        while body.pending_pos < body.pending.len() {
            let chunk_end = (body.pending_pos + shared.feed_chunk_bytes).min(body.pending.len());
            let chunk = &body.pending[body.pending_pos..chunk_end];
            let fed = if send_ok {
                body.session.try_feed(chunk).map(|r| match r {
                    TryFeed::Fed(out) => (true, out),
                    TryFeed::Busy(out) => (false, out),
                })
            } else {
                body.session
                    .try_feed_undrained(chunk)
                    .map(|a| (a, Vec::new()))
            };
            match fed {
                Ok((admitted, out)) => {
                    if !out.is_empty() {
                        output.extend_from_slice(&out);
                        progress = true;
                    }
                    if !admitted {
                        break;
                    }
                    body.pending_pos = chunk_end;
                    progress = true;
                }
                Err(e) => {
                    self.session_failed(shared, &mut body, &e.to_string());
                    return StepResult::Progress; // body (and session) dropped here
                }
            }
        }
        if body.pending_pos == body.pending.len() && !body.pending.is_empty() {
            body.pending.clear();
            body.pending_pos = 0;
        }

        // 5. Close the session's input once the whole body was fed.
        let upload_done =
            body.framing.complete() || (matches!(body.framing, BodyFraming::Eof) && body.saw_eof);
        if upload_done && body.pending_pos >= body.pending.len() && !body.input_closed {
            body.session.close_input();
            body.input_closed = true;
            progress = true;
        }

        // 6. Pull output the engine has produced meanwhile — unless our
        //    own send buffer is already backed up.
        if self.send.len() - self.send_pos < SEND_HIGH_WATER {
            let drained = body.session.drain();
            if !drained.is_empty() {
                output.extend_from_slice(&drained);
                progress = true;
            }
            // 7. Completed? With the input freshly closed the verdict is
            //    usually microseconds away (small requests evaluate in
            //    one burst) — a bounded yield-spin saves the full
            //    park/bump/wake round trip per request, which dominates
            //    small-request keep-alive latency. Only spun when this
            //    step made progress, so a genuinely slow evaluation
            //    parks as before.
            if body.input_closed {
                let mut outcome = body.session.take_outcome();
                if outcome.is_none() && progress {
                    for _ in 0..32 {
                        std::thread::yield_now();
                        outcome = body.session.take_outcome();
                        if outcome.is_some() {
                            break;
                        }
                    }
                }
                if let Some(outcome) = outcome {
                    match outcome {
                        Ok(ok) => {
                            let mut full = std::mem::take(&mut body.held);
                            full.extend_from_slice(&output);
                            full.extend_from_slice(&ok.output);
                            self.emit_output(&mut body, &full);
                            if body.chunked_response {
                                self.send.extend_from_slice(http::FINAL_CHUNK);
                            }
                            finish_registry(shared, body.session_id, Some(&ok.report));
                            // A close-delimited (HTTP/1.0) body is only
                            // terminated by the close itself.
                            let close = !body.keep || !body.chunked_response;
                            self.state = ConnState::Flush { close };
                            return StepResult::Progress; // body dropped (already finished)
                        }
                        Err(e) => {
                            self.session_failed(shared, &mut body, &e.to_string());
                            return StepResult::Progress;
                        }
                    }
                }
            }
        }
        if !output.is_empty() {
            if body.input_closed {
                // Upload complete, verdict pending: hold (see `held`).
                body.held.extend_from_slice(&output);
            } else {
                self.emit_output(&mut body, &output);
            }
            progress = true;
        }

        self.state = ConnState::Body(body);
        if progress {
            StepResult::Progress
        } else {
            StepResult::Blocked
        }
    }

    /// Appends engine output to the response, sending the lazy 200 head
    /// first when needed (always called at completion, even with empty
    /// output, so the terminating chunk never goes out headless).
    fn emit_output(&mut self, body: &mut BodyState, output: &[u8]) {
        if !body.sent_head {
            body.sent_head = true;
            if body.chunked_response {
                self.send.extend_from_slice(&http::response_head(
                    200,
                    "OK",
                    &[
                        ("Content-Type", "application/xml"),
                        ("Transfer-Encoding", "chunked"),
                    ],
                    body.keep,
                ));
            } else {
                // HTTP/1.0: close-delimited body, no transfer coding.
                self.send.extend_from_slice(&http::response_head(
                    200,
                    "OK",
                    &[("Content-Type", "application/xml")],
                    false,
                ));
            }
        }
        if body.chunked_response {
            http::encode_chunk(output, &mut self.send);
        } else {
            self.send.extend_from_slice(output);
        }
    }

    /// Terminates a failed session: a clean 422 if the head is still
    /// unsent, otherwise an aborted (truncated) chunked body — the only
    /// honest signal once a 200 is on the wire (and the connection must
    /// close; the next request would be indistinguishable from body
    /// bytes otherwise).
    fn session_failed(&mut self, shared: &Arc<ServerShared>, body: &mut BodyState, msg: &str) {
        log_debug!(
            LOG_TARGET,
            "session {} ({}) failed: {msg}",
            body.session_id,
            self.peer
        );
        finish_registry(shared, body.session_id, None);
        if msg.contains(gcx_service::OUTPUT_CAP_ERROR) {
            shared
                .counters
                .sessions_output_capped
                .fetch_add(1, Ordering::Relaxed);
        }
        if body.sent_head {
            self.state = ConnState::Flush { close: true };
        } else {
            // Reuse is only sound when the request body was consumed in
            // full; a session that died mid-upload leaves the rest of
            // the body in the pipe.
            let keep =
                body.keep && body.framing.complete() && body.pending_pos >= body.pending.len();
            self.respond_simple(
                422,
                "Unprocessable Entity",
                &format!("query failed: {msg}\n"),
                keep,
            );
        }
    }

    fn fail_idle(&mut self, shared: &Arc<ServerShared>) {
        let info = match &self.state {
            ConnState::Body(b) => Some((b.session_id, b.sent_head)),
            _ => None,
        };
        if let Some((session_id, sent_head)) = info {
            log_debug!(
                LOG_TARGET,
                "dropping idle connection from {} (session {session_id})",
                self.peer
            );
            finish_registry(shared, session_id, None);
            if !sent_head {
                self.respond_simple(408, "Request Timeout", "connection idle too long\n", false);
            }
        }
        // Best-effort farewell; teardown closes regardless. (An idle
        // keep-alive connection between requests has nothing buffered
        // and closes silently — no request is in flight to answer.)
        if self.send_pos < self.send.len() {
            let _ = self.stream.write_all(&self.send[self.send_pos..]);
            self.send_pos = self.send.len();
        }
    }

    /// Replaces the connection's future with a fixed response; `keep`
    /// loops back to the next request after the flush.
    fn respond_simple(&mut self, status: u16, reason: &str, body: &str, keep: bool) {
        self.respond_simple_typed(status, reason, TEXT_PLAIN, body, keep);
    }

    fn respond_simple_typed(
        &mut self,
        status: u16,
        reason: &str,
        content_type: &str,
        body: &str,
        keep: bool,
    ) {
        self.send.extend_from_slice(&http::simple_response(
            status,
            reason,
            content_type,
            body.as_bytes(),
            keep,
        ));
        self.state = ConnState::Flush { close: !keep };
    }

    fn read_some(&mut self, shared: &Arc<ServerShared>) -> ReadOutcome {
        // Reuse one scratch buffer per connection — this runs on every
        // step of every connection, and a fresh zeroed 64 KiB Vec per
        // read would dominate the allocation profile.
        if self.scratch.len() < shared.io_chunk_bytes {
            self.scratch.resize(shared.io_chunk_bytes, 0);
        }
        if gcx_faults::fire("net.read.err") {
            return ReadOutcome::Gone;
        }
        if gcx_faults::fire("net.read.eof") {
            return ReadOutcome::Eof;
        }
        // A short read truncates the *request*, never loses bytes: the
        // cap is applied before asking the socket.
        let cap = if gcx_faults::fire("net.read.short") {
            1
        } else {
            self.scratch.len()
        };
        match self.stream.read(&mut self.scratch[..cap]) {
            Ok(0) => ReadOutcome::Eof,
            Ok(n) => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                self.recv.extend_from_slice(&self.scratch[..n]);
                ReadOutcome::Data
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => ReadOutcome::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => ReadOutcome::WouldBlock,
            Err(_) => ReadOutcome::Gone,
        }
    }

    fn write_some(&mut self, shared: &Arc<ServerShared>) -> WriteOutcome {
        if self.send_pos >= self.send.len() {
            if self.send_pos > 0 {
                self.send.clear();
                self.send_pos = 0;
            }
            return WriteOutcome::Idle;
        }
        if gcx_faults::fire("net.write.err") {
            return WriteOutcome::Gone;
        }
        let cap = if gcx_faults::fire("net.write.short") {
            1
        } else {
            self.send.len() - self.send_pos
        };
        match self
            .stream
            .write(&self.send[self.send_pos..self.send_pos + cap])
        {
            Ok(0) => WriteOutcome::Gone,
            Ok(n) => {
                shared
                    .counters
                    .bytes_out
                    .fetch_add(n as u64, Ordering::Relaxed);
                if self.ttfb_pending {
                    self.ttfb_pending = false;
                    if let Some(t0) = self.req_start {
                        shared.metrics.ttfb.record(t0.elapsed());
                    }
                    shared
                        .recorder
                        .record_instant(self.trace_id, SpanKind::FirstByte, 0, n as u64);
                }
                self.send_pos += n;
                if self.send_pos >= self.send.len() {
                    self.send.clear();
                    self.send_pos = 0;
                }
                WriteOutcome::Progress
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => WriteOutcome::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => WriteOutcome::WouldBlock,
            Err(_) => WriteOutcome::Gone,
        }
    }

    /// Unregisters any in-flight session and closes the connection. The
    /// session itself is cancelled when the state drops.
    fn teardown(&mut self, shared: &Arc<ServerShared>) {
        if let ConnState::Body(body) = &self.state {
            finish_registry(shared, body.session_id, None);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.state = ConnState::Closed;
    }
}

enum ReadOutcome {
    Data,
    WouldBlock,
    Eof,
    Gone,
}

enum WriteOutcome {
    Progress,
    /// Send buffer empty — nothing to write (not progress, not an error).
    Idle,
    WouldBlock,
    Gone,
}

/// Removes a session from the registry and records completion counters.
/// Passing `Some(report)` marks success; `None` marks failure/abort.
/// Idempotent per session id.
fn finish_registry(
    shared: &Arc<ServerShared>,
    session_id: u64,
    report: Option<&gcx_core::RunReport>,
) {
    let removed = shared
        .sessions
        .lock()
        .expect("registry lock")
        .remove(&session_id);
    if removed.is_none() {
        return;
    }
    match report {
        Some(r) => {
            shared
                .counters
                .sessions_completed
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .tokens_read_total
                .fetch_add(r.tokens_read + r.tokens_skipped, Ordering::Relaxed);
            shared
                .counters
                .peak_nodes_max
                .fetch_max(r.stats.peak_nodes as u64, Ordering::Relaxed);
        }
        None => {
            shared
                .counters
                .sessions_failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// First ~40 chars of a query for registry labels.
fn preview(query: &str) -> String {
    let flat: String = query.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.len() <= 40 {
        flat
    } else {
        let mut cut = 40;
        while !flat.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &flat[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bump lands a parked waiter well before the poll timeout.
    #[test]
    fn progress_signal_wakes_early() {
        let signal = Arc::new(ProgressSignal::new());
        let observed = signal.current();
        let bumper = {
            let signal = signal.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                signal.bump();
            })
        };
        let start = Instant::now();
        signal.wait_past(observed, Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "bump must cut the wait short, waited {:?}",
            start.elapsed()
        );
        bumper.join().unwrap();
    }

    /// Progress recorded before the wait starts is never slept on.
    #[test]
    fn progress_signal_no_lost_wakeup() {
        let signal = ProgressSignal::new();
        let observed = signal.current();
        signal.bump(); // progress between observing and waiting
        let start = Instant::now();
        signal.wait_past(observed, Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    /// Without progress the wait falls back to the poll timeout.
    #[test]
    fn progress_signal_times_out() {
        let signal = ProgressSignal::new();
        let observed = signal.current();
        let start = Instant::now();
        signal.wait_past(observed, Duration::from_millis(10));
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(5), "waited {waited:?}");
    }
}
