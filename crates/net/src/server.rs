//! The streaming HTTP front-end: acceptor, connection run-queue, bounded
//! worker pool, session registry.
//!
//! ## Thread topology (fixed at bind time)
//!
//! ```text
//!   acceptor ──► run-queue of connections ──► N connection workers
//!                     ▲        │                  │ try_feed / drain
//!                     └────────┘ (parked conns)   ▼
//!                                         M evaluator-pool threads
//!                                         (gcx-service EvaluatorPool)
//! ```
//!
//! `1 + N + M` threads total, **independent of how many sessions are
//! open**: connection workers never block — sockets are non-blocking and
//! sessions are driven through [`StreamSession::try_feed`], so a
//! backpressured or slow connection is parked back on the run-queue and
//! the worker picks up another. Evaluators run on the shared
//! [`EvaluatorPool`]; sessions beyond its size queue (their input simply
//! buffers until a pool thread frees up). This replaces the
//! one-thread-per-session model `StreamSession` started with.
//!
//! ## Endpoints
//!
//! * `POST /query?xq=<urlencoded XQ>` (or `?name=<registered query>`) —
//!   the request body is the XML document, `Content-Length` or chunked;
//!   the response streams the result as a chunked body while the
//!   document is still being uploaded. Constant memory end to end.
//! * `GET /stats` — JSON: server counters, service cache stats, memory
//!   budget, and **live per-session buffer statistics** sampled from the
//!   engines mid-run.
//! * `GET /healthz` — liveness probe.

use crate::http;
use crate::stats_json;
use gcx_buffer::LiveBufferStats;
use gcx_service::{EvaluatorPool, QueryService, ServiceConfig, StreamSession, TryFeed};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Eventcount for session-progress wakeups. Connection workers that find
/// a connection unable to move (socket and session both blocked) used to
/// sleep a flat 500 µs before re-polling; now each session's evaluator
/// bumps this signal whenever it consumes input, produces output or
/// terminates (via [`gcx_service::SessionConfig::progress_waker`]), and a
/// worker waits on it instead — waking immediately on evaluator progress
/// while keeping the same bounded timeout as a poll fallback for socket
/// readability (which has no notification source without epoll).
///
/// `bump` is wait-free when nobody is parked: one atomic increment plus
/// one atomic load. The lock is only taken to publish the notify when a
/// waiter is registered — evaluator hot paths (one bump per output tag
/// batch) stay cheap.
pub(crate) struct ProgressSignal {
    seq: AtomicU64,
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ProgressSignal {
    fn new() -> Self {
        ProgressSignal {
            seq: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Records progress and wakes parked workers, if any.
    ///
    /// Orderings are `SeqCst` on both the seq bump and the waiters
    /// check: with anything weaker the store→load pairs here and in
    /// [`Self::wait_past`] may reorder (store buffering), letting a bump
    /// see `waiters == 0` while the racing parker still sees the old
    /// seq — a lost wakeup, the one failure mode this type exists to
    /// prevent. The single total order makes one side always observe
    /// the other.
    pub(crate) fn bump(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders the notify after a racing waiter's
            // seq check: the waiter holds it between checking and waiting.
            let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            // One waiter per bump: workers share one run-queue, so any
            // woken worker can drive the progressed connection; waking
            // the whole park ring on every output batch of one fast
            // session would burn idle-path CPU re-polling unrelated
            // blocked sockets. Concurrent bumps wake additional workers,
            // and the poll timeout still bounds worst-case staleness.
            self.cv.notify_one();
        }
    }

    /// The current sequence number; read before driving a connection so
    /// progress made during the attempt is never missed by `wait_past`.
    fn current(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Parks until the sequence moves past `observed` or `timeout`
    /// elapses, whichever is first.
    fn wait_past(&self, observed: u64, timeout: Duration) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        if self.seq.load(Ordering::SeqCst) == observed {
            let _ = self
                .cv
                .wait_timeout(guard, timeout)
                .unwrap_or_else(|p| p.into_inner());
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Front-end configuration.
pub struct NetConfig {
    /// Connection workers (socket I/O + session driving). Default 4.
    pub workers: usize,
    /// Evaluator-pool threads (concurrent evaluations). Default 8.
    pub evaluators: usize,
    /// The underlying query service (cache, budget, engine options).
    pub service: ServiceConfig,
    /// Named queries addressable as `POST /query?name=<name>`.
    pub queries: Vec<(String, String)>,
    /// Charge each session's engine buffer against the service's memory
    /// budget (hard per-session failure instead of unbounded growth).
    /// Only effective when `service.memory_budget` is set. Default true.
    pub charge_engine_buffer: bool,
    /// Maximum request-head size. Default 16 KiB.
    pub max_head_bytes: usize,
    /// Socket read size per step. Default 64 KiB.
    pub io_chunk_bytes: usize,
    /// Connections making no progress for this long are dropped (slow
    /// clients must not pin evaluator threads forever). Default 30 s.
    pub idle_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            evaluators: 8,
            service: ServiceConfig::default(),
            queries: Vec::new(),
            charge_engine_buffer: true,
            max_head_bytes: 16 * 1024,
            io_chunk_bytes: 64 * 1024,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Server-level counters (monotonic; `active_sessions` is derived from
/// the registry instead).
#[derive(Debug, Default)]
pub struct ServerCounters {
    pub requests: AtomicU64,
    pub sessions_completed: AtomicU64,
    pub sessions_failed: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Sum of `tokens_read + tokens_skipped` over completed sessions.
    pub tokens_read_total: AtomicU64,
    /// Max `peak_nodes` over completed sessions.
    pub peak_nodes_max: AtomicU64,
}

/// One live session as seen by `/stats`.
pub struct SessionEntry {
    pub query_label: String,
    pub peer: String,
    pub started: Instant,
    pub live: Arc<LiveBufferStats>,
}

pub(crate) struct ServerShared {
    pub(crate) service: QueryService,
    pub(crate) queries: HashMap<String, String>,
    run_queue: Mutex<VecDeque<Conn>>,
    work: Condvar,
    /// Session-progress wakeups for parked connections (own `Arc` so the
    /// per-session waker closures hold no cycle back to `ServerShared`).
    progress: Arc<ProgressSignal>,
    stop: AtomicBool,
    pub(crate) counters: ServerCounters,
    pub(crate) sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_session_id: AtomicU64,
    pool: EvaluatorPool,
    charge_engine_buffer: bool,
    max_head_bytes: usize,
    io_chunk_bytes: usize,
    /// Largest slice offered to `try_feed` at once — `io_chunk_bytes`
    /// clamped to the memory budget, so a single offer can never be
    /// rejected as permanently unfittable.
    feed_chunk_bytes: usize,
    idle_timeout: Duration,
    pub(crate) workers: usize,
    pub(crate) evaluators: usize,
}

/// The running server. Bound threads live until [`GcxServer::shutdown`]
/// (or drop).
pub struct GcxServer {
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl GcxServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawns
    /// the fixed thread set: one acceptor, `workers` connection workers,
    /// `evaluators` pool threads.
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> std::io::Result<GcxServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.workers.max(1);
        let evaluators = config.evaluators.max(1);
        let io_chunk_bytes = config.io_chunk_bytes.max(512);
        let feed_chunk_bytes = config
            .service
            .memory_budget
            .map_or(io_chunk_bytes, |b| io_chunk_bytes.min(b.max(1)));
        let shared = Arc::new(ServerShared {
            service: QueryService::new(config.service),
            queries: config.queries.into_iter().collect(),
            run_queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            progress: Arc::new(ProgressSignal::new()),
            stop: AtomicBool::new(false),
            counters: ServerCounters::default(),
            sessions: Mutex::new(HashMap::new()),
            next_session_id: AtomicU64::new(1),
            pool: EvaluatorPool::new(evaluators),
            charge_engine_buffer: config.charge_engine_buffer,
            max_head_bytes: config.max_head_bytes.max(512),
            io_chunk_bytes,
            feed_chunk_bytes,
            idle_timeout: config.idle_timeout,
            workers,
            evaluators,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("gcx-net-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))
                    .expect("spawn acceptor"),
            );
        }
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gcx-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn connection worker"),
            );
        }
        Ok(GcxServer {
            shared,
            threads,
            addr: local,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fixed thread count: acceptor + connection workers + evaluators.
    /// Does **not** grow with open sessions — that is the point.
    pub fn thread_count(&self) -> usize {
        1 + self.shared.workers + self.shared.evaluators
    }

    /// The underlying service (stats, cache introspection).
    pub fn service(&self) -> &QueryService {
        &self.shared.service
    }

    /// Server counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.shared.counters
    }

    /// Sessions currently registered (mid-stream).
    pub fn active_sessions(&self) -> usize {
        self.shared.sessions.lock().expect("registry lock").len()
    }

    /// Renders the `/stats` JSON document (also served over HTTP).
    pub fn stats_json(&self) -> String {
        stats_json::render(&self.shared)
    }

    /// Blocks the calling thread until the server shuts down (CLI
    /// foreground mode).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Stops accepting, drops queued connections (cancelling their
    /// sessions), and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.work.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Connections (and their sessions) are gone; now the evaluator
        // pool can drain and stop.
        self.shared.pool.shutdown();
    }
}

impl Drop for GcxServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let conn = Conn::new(stream, peer.to_string());
                let mut q = shared.run_queue.lock().expect("run queue lock");
                q.push_back(conn);
                drop(q);
                shared.work.notify_one();
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE under fd exhaustion,
                // ECONNABORTED storms) must not busy-spin a core.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(shared: &Arc<ServerShared>) {
    loop {
        let mut conn = {
            let mut q = shared.run_queue.lock().expect("run queue lock");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    // Dropping connections cancels their sessions; the
                    // evaluator pool is still alive to observe it.
                    q.clear();
                    return;
                }
                if let Some(c) = q.pop_front() {
                    break c;
                }
                let (guard, _) = shared
                    .work
                    .wait_timeout(q, Duration::from_millis(5))
                    .expect("run queue lock poisoned");
                q = guard;
            }
        };
        // Observe the progress sequence *before* driving: progress made
        // by an evaluator during the attempt bumps it, so a subsequent
        // `wait_past` returns immediately instead of losing the wakeup.
        let observed = shared.progress.current();
        let mut made_progress = false;
        // Drive this connection as far as it goes without blocking.
        let finished = loop {
            match conn.step(shared) {
                StepResult::Progress => made_progress = true,
                StepResult::Blocked => break false,
                StepResult::Finished => break true,
            }
        };
        if finished {
            conn.teardown(shared);
            continue;
        }
        if made_progress {
            conn.last_progress = Instant::now();
        } else if conn.last_progress.elapsed() > shared.idle_timeout {
            conn.fail_idle(shared);
            conn.teardown(shared);
            continue;
        }
        let mut q = shared.run_queue.lock().expect("run queue lock");
        q.push_back(conn);
        drop(q);
        if made_progress {
            shared.work.notify_one();
        } else {
            // Nothing moved anywhere on this connection. Park on the
            // progress signal: an evaluator draining input, producing
            // output or finishing wakes us immediately; the timeout is
            // only the poll fallback for socket readability.
            shared
                .progress
                .wait_past(observed, Duration::from_micros(500));
        }
    }
}

enum StepResult {
    /// State advanced (bytes moved, session fed, response emitted …).
    Progress,
    /// Nothing can move right now (socket or session would block).
    Blocked,
    /// The connection is done (cleanly or not) and must be torn down.
    Finished,
}

enum ConnState {
    /// Accumulating the request head.
    Head,
    /// Streaming a request body through a session.
    Body(Box<BodyState>),
    /// Writing out the remaining `send` buffer, then closing.
    Flush,
    Closed,
}

enum BodyFraming {
    /// `Content-Length`: remaining body bytes.
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked(http::ChunkedDecoder),
    /// No framing given: body runs until EOF (HTTP/1.0 style).
    Eof,
}

impl BodyFraming {
    fn complete(&self) -> bool {
        match self {
            BodyFraming::Length(n) => *n == 0,
            BodyFraming::Chunked(d) => d.is_done(),
            BodyFraming::Eof => false, // completion signalled by EOF
        }
    }
}

struct BodyState {
    session: StreamSession,
    session_id: u64,
    framing: BodyFraming,
    /// Response head already sent. It goes out lazily, with the first
    /// output byte, so pre-output failures can still return a clean 4xx.
    sent_head: bool,
    /// Decoded body bytes not yet accepted by `try_feed`.
    pending: Vec<u8>,
    pending_pos: usize,
    /// All input fed and `close_input` called.
    input_closed: bool,
    /// Output produced after the upload completed, held back until the
    /// session's verdict: emitting it would commit us to a 200, and with
    /// the input already closed the verdict is at most one evaluation
    /// away — so completed uploads that fail get a clean 4xx instead of
    /// a racy truncated 200. (Mid-upload output streams immediately;
    /// that is the whole point of the engine.)
    held: Vec<u8>,
    /// Socket saw EOF.
    saw_eof: bool,
}

struct Conn {
    stream: TcpStream,
    peer: String,
    recv: Vec<u8>,
    send: Vec<u8>,
    send_pos: usize,
    /// Reusable socket-read scratch (sized lazily to `io_chunk_bytes`).
    scratch: Vec<u8>,
    state: ConnState,
    last_progress: Instant,
}

/// Above this much un-flushed response data, stop pulling more output
/// from the session: the socket's backpressure propagates to the engine
/// by letting output sit in the session's buffer.
const SEND_HIGH_WATER: usize = 256 * 1024;

/// Above this much decoded-but-unfed body data, stop reading the socket:
/// a client uploading faster than its session evaluates must not make
/// the server buffer the document.
const RECV_HIGH_WATER: usize = 256 * 1024;

impl Conn {
    fn new(stream: TcpStream, peer: String) -> Self {
        Conn {
            stream,
            peer,
            recv: Vec::new(),
            send: Vec::new(),
            send_pos: 0,
            scratch: Vec::new(),
            state: ConnState::Head,
            last_progress: Instant::now(),
        }
    }

    /// One non-blocking step of the connection state machine.
    fn step(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        match self.state {
            ConnState::Closed => StepResult::Finished,
            ConnState::Flush => match self.write_some(shared) {
                WriteOutcome::Progress => {
                    if self.send_pos >= self.send.len() {
                        let _ = self.stream.shutdown(std::net::Shutdown::Both);
                        self.state = ConnState::Closed;
                        return StepResult::Finished;
                    }
                    StepResult::Progress
                }
                WriteOutcome::Idle => {
                    // Nothing left to write at all: we are done.
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                    self.state = ConnState::Closed;
                    StepResult::Finished
                }
                WriteOutcome::WouldBlock => StepResult::Blocked,
                WriteOutcome::Gone => StepResult::Finished,
            },
            ConnState::Head => self.step_head(shared),
            ConnState::Body(_) => self.step_body(shared),
        }
    }

    fn step_head(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        match self.read_some(shared) {
            ReadOutcome::Data => {}
            ReadOutcome::WouldBlock => return StepResult::Blocked,
            ReadOutcome::Eof | ReadOutcome::Gone => return StepResult::Finished,
        }
        let Some(head_end) = http::find_head_end(&self.recv) else {
            // Body bytes may already be piling in behind a complete head;
            // only an actually-unterminated head this large is an error.
            if self.recv.len() > shared.max_head_bytes {
                self.respond_simple(431, "Request Header Fields Too Large", "head too large\n");
            }
            return StepResult::Progress; // keep reading
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let head = match http::parse_head(&self.recv[..head_end]) {
            Ok(h) => h,
            Err(e) => {
                self.respond_simple(400, "Bad Request", &format!("malformed request: {e}\n"));
                return StepResult::Progress;
            }
        };
        self.recv.drain(..head_end);
        self.dispatch(shared, &head);
        StepResult::Progress
    }

    fn dispatch(&mut self, shared: &Arc<ServerShared>, head: &http::RequestHead) {
        match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => self.respond_simple(200, "OK", "ok\n"),
            ("GET", "/stats") => {
                let json = stats_json::render(shared);
                self.send.extend_from_slice(&http::simple_response(
                    200,
                    "OK",
                    "application/json",
                    json.as_bytes(),
                ));
                self.state = ConnState::Flush;
            }
            ("POST", "/query") => self.dispatch_query(shared, head),
            _ => self.respond_simple(404, "Not Found", "unknown endpoint\n"),
        }
    }

    fn dispatch_query(&mut self, shared: &Arc<ServerShared>, head: &http::RequestHead) {
        let query_text = match (head.param("xq"), head.param("name")) {
            (Some(xq), _) => xq.to_string(),
            (None, Some(name)) => match shared.queries.get(name) {
                Some(q) => q.clone(),
                None => {
                    self.respond_simple(
                        404,
                        "Not Found",
                        &format!("no registered query named {name:?}\n"),
                    );
                    return;
                }
            },
            (None, None) => {
                self.respond_simple(
                    400,
                    "Bad Request",
                    "POST /query needs ?xq=<urlencoded query> or ?name=<registered query>\n",
                );
                return;
            }
        };
        let framing = if head.is_chunked() {
            BodyFraming::Chunked(http::ChunkedDecoder::new())
        } else {
            match head.content_length() {
                Err(e) => {
                    self.respond_simple(400, "Bad Request", &format!("{e}\n"));
                    return;
                }
                Ok(Some(n)) => BodyFraming::Length(n),
                Ok(None) => BodyFraming::Eof,
            }
        };
        let live = Arc::new(LiveBufferStats::default());
        let session = {
            let live = live.clone();
            let pool = shared.pool.clone();
            let charge = shared.charge_engine_buffer;
            let signal = shared.progress.clone();
            shared.service.open_session_with(&query_text, move |cfg| {
                cfg.live_stats = Some(live);
                cfg.pool = Some(pool);
                cfg.charge_engine_buffer = charge;
                cfg.progress_waker = Some(Arc::new(move || signal.bump()));
            })
        };
        let session = match session {
            Ok(s) => s,
            Err(e) => {
                self.respond_simple(400, "Bad Request", &format!("{e}\n"));
                return;
            }
        };
        let session_id = shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        let label = head
            .param("name")
            .map_or_else(|| preview(&query_text), str::to_string);
        shared.sessions.lock().expect("registry lock").insert(
            session_id,
            SessionEntry {
                query_label: label,
                peer: self.peer.clone(),
                started: Instant::now(),
                live,
            },
        );
        if head.expects_continue() {
            self.send
                .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        self.state = ConnState::Body(Box::new(BodyState {
            session,
            session_id,
            framing,
            sent_head: false,
            pending: Vec::new(),
            pending_pos: 0,
            input_closed: false,
            held: Vec::new(),
            saw_eof: false,
        }));
    }

    fn step_body(&mut self, shared: &Arc<ServerShared>) -> StepResult {
        let mut progress = false;

        // 1. Flush the response buffer first — it bounds everything else.
        match self.write_some(shared) {
            WriteOutcome::Progress => progress = true,
            WriteOutcome::WouldBlock | WriteOutcome::Idle => {}
            WriteOutcome::Gone => return StepResult::Finished,
        }

        // Work on the body state outside `self.state` so socket methods
        // on `self` stay callable.
        let ConnState::Body(mut body) = std::mem::replace(&mut self.state, ConnState::Closed)
        else {
            unreachable!("step_body outside Body state");
        };

        // 2. Read more body bytes unless the upload already completed —
        //    or the session is not keeping up (backlog cap: TCP pushes
        //    back on the client instead of us buffering the document).
        let backlog = body.pending.len() - body.pending_pos + self.recv.len();
        if !body.saw_eof && !body.framing.complete() && backlog < RECV_HIGH_WATER {
            match self.read_some(shared) {
                ReadOutcome::Data => progress = true,
                ReadOutcome::WouldBlock => {}
                ReadOutcome::Eof => {
                    body.saw_eof = true;
                    progress = true;
                }
                ReadOutcome::Gone => {
                    self.state = ConnState::Body(body);
                    return StepResult::Finished;
                }
            }
        }

        // EOF before a framed body completed: the client went away;
        // teardown cancels the session.
        if body.saw_eof && !matches!(body.framing, BodyFraming::Eof) && !body.framing.complete() {
            self.state = ConnState::Body(body);
            return StepResult::Finished;
        }

        // 3. Decode raw socket bytes into body payload.
        if !self.recv.is_empty() {
            let consumed = match &mut body.framing {
                BodyFraming::Length(remaining) => {
                    let take = (*remaining).min(self.recv.len() as u64) as usize;
                    body.pending.extend_from_slice(&self.recv[..take]);
                    *remaining -= take as u64;
                    take
                }
                BodyFraming::Chunked(dec) => match dec.decode(&self.recv, &mut body.pending) {
                    Ok(n) => n,
                    Err(e) => {
                        finish_registry(shared, body.session_id, None);
                        self.respond_simple(
                            400,
                            "Bad Request",
                            &format!("malformed chunked body: {e}\n"),
                        );
                        return StepResult::Progress; // body (and session) dropped here
                    }
                },
                BodyFraming::Eof => {
                    let n = self.recv.len();
                    body.pending.extend_from_slice(&self.recv);
                    n
                }
            };
            if consumed > 0 {
                self.recv.drain(..consumed);
                progress = true;
            }
        }

        // 4. Feed decoded payload into the session. Non-blocking: a full
        //    queue parks the connection, not the worker thread. Slices
        //    are bounded so one offer can always fit the memory budget.
        let mut output = Vec::new();
        while body.pending_pos < body.pending.len() {
            let chunk_end = (body.pending_pos + shared.feed_chunk_bytes).min(body.pending.len());
            match body
                .session
                .try_feed(&body.pending[body.pending_pos..chunk_end])
            {
                Ok(TryFeed::Fed(out)) => {
                    output.extend_from_slice(&out);
                    body.pending_pos = chunk_end;
                    progress = true;
                }
                Ok(TryFeed::Busy(out)) => {
                    if !out.is_empty() {
                        output.extend_from_slice(&out);
                        progress = true;
                    }
                    break;
                }
                Err(e) => {
                    self.session_failed(shared, &mut body, &e.to_string());
                    return StepResult::Progress; // body (and session) dropped here
                }
            }
        }
        if body.pending_pos == body.pending.len() && !body.pending.is_empty() {
            body.pending.clear();
            body.pending_pos = 0;
        }

        // 5. Close the session's input once the whole body was fed.
        let upload_done =
            body.framing.complete() || (matches!(body.framing, BodyFraming::Eof) && body.saw_eof);
        if upload_done && body.pending_pos >= body.pending.len() && !body.input_closed {
            body.session.close_input();
            body.input_closed = true;
            progress = true;
        }

        // 6. Pull output the engine has produced meanwhile — unless our
        //    own send buffer is already backed up.
        if self.send.len() - self.send_pos < SEND_HIGH_WATER {
            let drained = body.session.drain();
            if !drained.is_empty() {
                output.extend_from_slice(&drained);
                progress = true;
            }
            // 7. Completed?
            if body.input_closed {
                if let Some(outcome) = body.session.take_outcome() {
                    match outcome {
                        Ok(ok) => {
                            let mut full = std::mem::take(&mut body.held);
                            full.extend_from_slice(&output);
                            full.extend_from_slice(&ok.output);
                            self.emit_output(&mut body, &full);
                            self.send.extend_from_slice(http::FINAL_CHUNK);
                            finish_registry(shared, body.session_id, Some(&ok.report));
                            self.state = ConnState::Flush;
                            return StepResult::Progress; // body dropped (already finished)
                        }
                        Err(e) => {
                            self.session_failed(shared, &mut body, &e.to_string());
                            return StepResult::Progress;
                        }
                    }
                }
            }
        }
        if !output.is_empty() {
            if body.input_closed {
                // Upload complete, verdict pending: hold (see `held`).
                body.held.extend_from_slice(&output);
            } else {
                self.emit_output(&mut body, &output);
            }
            progress = true;
        }

        self.state = ConnState::Body(body);
        if progress {
            StepResult::Progress
        } else {
            StepResult::Blocked
        }
    }

    /// Appends engine output to the response, sending the lazy 200 head
    /// first when needed (always called at completion, even with empty
    /// output, so the terminating chunk never goes out headless).
    fn emit_output(&mut self, body: &mut BodyState, output: &[u8]) {
        if !body.sent_head {
            body.sent_head = true;
            self.send.extend_from_slice(&http::response_head(
                200,
                "OK",
                &[
                    ("Content-Type", "application/xml"),
                    ("Transfer-Encoding", "chunked"),
                ],
            ));
        }
        http::encode_chunk(output, &mut self.send);
    }

    /// Terminates a failed session: a clean 422 if the head is still
    /// unsent, otherwise an aborted (truncated) chunked body — the only
    /// honest signal once a 200 is on the wire.
    fn session_failed(&mut self, shared: &Arc<ServerShared>, body: &mut BodyState, msg: &str) {
        finish_registry(shared, body.session_id, None);
        if body.sent_head {
            self.state = ConnState::Flush;
        } else {
            self.respond_simple(
                422,
                "Unprocessable Entity",
                &format!("query failed: {msg}\n"),
            );
        }
    }

    fn fail_idle(&mut self, shared: &Arc<ServerShared>) {
        let info = match &self.state {
            ConnState::Body(b) => Some((b.session_id, b.sent_head)),
            _ => None,
        };
        if let Some((session_id, sent_head)) = info {
            finish_registry(shared, session_id, None);
            if !sent_head {
                self.respond_simple(408, "Request Timeout", "connection idle too long\n");
            }
        }
        // Best-effort farewell; teardown closes regardless.
        if self.send_pos < self.send.len() {
            let _ = self.stream.write_all(&self.send[self.send_pos..]);
            self.send_pos = self.send.len();
        }
    }

    /// Replaces the connection's future with a fixed response.
    fn respond_simple(&mut self, status: u16, reason: &str, body: &str) {
        self.send.extend_from_slice(&http::simple_response(
            status,
            reason,
            "text/plain; charset=utf-8",
            body.as_bytes(),
        ));
        self.state = ConnState::Flush;
    }

    fn read_some(&mut self, shared: &Arc<ServerShared>) -> ReadOutcome {
        // Reuse one scratch buffer per connection — this runs on every
        // step of every connection, and a fresh zeroed 64 KiB Vec per
        // read would dominate the allocation profile.
        if self.scratch.len() < shared.io_chunk_bytes {
            self.scratch.resize(shared.io_chunk_bytes, 0);
        }
        match self.stream.read(&mut self.scratch) {
            Ok(0) => ReadOutcome::Eof,
            Ok(n) => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                self.recv.extend_from_slice(&self.scratch[..n]);
                ReadOutcome::Data
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => ReadOutcome::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => ReadOutcome::WouldBlock,
            Err(_) => ReadOutcome::Gone,
        }
    }

    fn write_some(&mut self, shared: &Arc<ServerShared>) -> WriteOutcome {
        if self.send_pos >= self.send.len() {
            if self.send_pos > 0 {
                self.send.clear();
                self.send_pos = 0;
            }
            return WriteOutcome::Idle;
        }
        match self.stream.write(&self.send[self.send_pos..]) {
            Ok(0) => WriteOutcome::Gone,
            Ok(n) => {
                shared
                    .counters
                    .bytes_out
                    .fetch_add(n as u64, Ordering::Relaxed);
                self.send_pos += n;
                if self.send_pos >= self.send.len() {
                    self.send.clear();
                    self.send_pos = 0;
                }
                WriteOutcome::Progress
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => WriteOutcome::WouldBlock,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => WriteOutcome::WouldBlock,
            Err(_) => WriteOutcome::Gone,
        }
    }

    /// Unregisters any in-flight session and closes the connection. The
    /// session itself is cancelled when the state drops.
    fn teardown(&mut self, shared: &Arc<ServerShared>) {
        if let ConnState::Body(body) = &self.state {
            finish_registry(shared, body.session_id, None);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.state = ConnState::Closed;
    }
}

enum ReadOutcome {
    Data,
    WouldBlock,
    Eof,
    Gone,
}

enum WriteOutcome {
    Progress,
    /// Send buffer empty — nothing to write (not progress, not an error).
    Idle,
    WouldBlock,
    Gone,
}

/// Removes a session from the registry and records completion counters.
/// Passing `Some(report)` marks success; `None` marks failure/abort.
/// Idempotent per session id.
fn finish_registry(
    shared: &Arc<ServerShared>,
    session_id: u64,
    report: Option<&gcx_core::RunReport>,
) {
    let removed = shared
        .sessions
        .lock()
        .expect("registry lock")
        .remove(&session_id);
    if removed.is_none() {
        return;
    }
    match report {
        Some(r) => {
            shared
                .counters
                .sessions_completed
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .tokens_read_total
                .fetch_add(r.tokens_read + r.tokens_skipped, Ordering::Relaxed);
            shared
                .counters
                .peak_nodes_max
                .fetch_max(r.stats.peak_nodes as u64, Ordering::Relaxed);
        }
        None => {
            shared
                .counters
                .sessions_failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// First ~40 chars of a query for registry labels.
fn preview(query: &str) -> String {
    let flat: String = query.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.len() <= 40 {
        flat
    } else {
        let mut cut = 40;
        while !flat.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &flat[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bump lands a parked waiter well before the poll timeout.
    #[test]
    fn progress_signal_wakes_early() {
        let signal = Arc::new(ProgressSignal::new());
        let observed = signal.current();
        let bumper = {
            let signal = signal.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                signal.bump();
            })
        };
        let start = Instant::now();
        signal.wait_past(observed, Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "bump must cut the wait short, waited {:?}",
            start.elapsed()
        );
        bumper.join().unwrap();
    }

    /// Progress recorded before the wait starts is never slept on.
    #[test]
    fn progress_signal_no_lost_wakeup() {
        let signal = ProgressSignal::new();
        let observed = signal.current();
        signal.bump(); // progress between observing and waiting
        let start = Instant::now();
        signal.wait_past(observed, Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    /// Without progress the wait falls back to the poll timeout.
    #[test]
    fn progress_signal_times_out() {
        let signal = ProgressSignal::new();
        let observed = signal.current();
        let start = Instant::now();
        signal.wait_past(observed, Duration::from_millis(10));
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(5), "waited {waited:?}");
    }
}
