//! # gcx-net — a dependency-free HTTP/1.1 streaming front-end for GCX
//!
//! Exposes the gcx-service session runtime over the wire so the
//! buffer-minimized streaming evaluator (the paper's whole point: a
//! single node handling documents and client counts far beyond DOM
//! engines) can actually be pointed at with load:
//!
//! * **`POST /query`** streams an XML document through a compiled query
//!   and streams the result back, chunked both ways — a 200 MB document
//!   flows end to end at constant memory.
//! * **`GET /stats`** samples *live* per-session buffer statistics
//!   (current/peak buffered nodes, text-arena bytes) from engines
//!   mid-run, plus cache/budget/server counters.
//! * A **fixed thread topology** (acceptor + epoll-driven connection
//!   workers + a bounded [`gcx_service::EvaluatorPool`]) replaces
//!   one-thread-per-session: each worker multiplexes its non-blocking
//!   sockets over an `epoll(7)` readiness loop and drives sessions with
//!   the non-blocking `try_feed` API. Blocked connections sleep until a
//!   socket event or a session-progress eventfd wakeup — no polling
//!   anywhere, so an idle server uses no CPU.
//!
//! Hand-rolled over `std::net` — the build environment is offline (no
//! hyper/tokio), the same constraint that produced `crates/compat`; even
//! epoll/eventfd are raw syscalls (`crate::epoll`) since there is no
//! libc crate either.
//!
//! ```no_run
//! use gcx_net::{GcxServer, NetConfig};
//!
//! let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let doc = b"<bib><book><title>Streams</title></book></bib>";
//! let resp = gcx_net::client::post(
//!     addr,
//!     &format!(
//!         "/query?xq={}",
//!         gcx_net::http::percent_encode("<r>{ for $b in /bib/book return $b/title }</r>")
//!     ),
//!     doc,
//! )
//! .unwrap();
//! assert_eq!(resp.text(), "<r><title>Streams</title></r>");
//! server.shutdown();
//! ```

pub mod client;
mod epoll;
pub mod http;
mod metrics;
pub mod server;
pub mod shutdown;
mod stats_json;

pub use client::HttpClient;
pub use server::{GcxServer, NetConfig, ServerCounters, SessionEntry};
