//! Minimal HTTP/1.1 wire protocol: request heads, percent decoding,
//! incremental chunked transfer coding, response building.
//!
//! Hand-rolled over `std` by design — the build environment is offline
//! (no hyper/tokio), and the server only needs the subset a streaming
//! query endpoint uses: `POST` with `Content-Length` or
//! `Transfer-Encoding: chunked` bodies, `GET` for observability, and
//! chunked responses so results flow while the document is still
//! arriving.

use std::fmt::Write as _;

/// A parsed request head (request line + headers).
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/query`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub params: Vec<(String, String)>,
    /// Headers with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// Minor HTTP version: `1` for HTTP/1.1, `0` for HTTP/1.0.
    pub minor_version: u8,
}

impl RequestHead {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed `Content-Length`, if present.
    pub fn content_length(&self) -> Result<Option<u64>, String> {
        match self.header("content-length") {
            None => Ok(None),
            Some(v) => v
                .trim()
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("invalid Content-Length: {v:?}")),
        }
    }

    /// True when the body uses chunked transfer coding.
    pub fn is_chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    }

    /// True when the client asked for `100 Continue` before sending the
    /// body (curl does for large uploads).
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"))
    }

    /// True when this request was made with HTTP/1.0 (which cannot take
    /// chunked responses and defaults to one request per connection).
    pub fn is_http10(&self) -> bool {
        self.minor_version == 0
    }

    /// Connection persistence the client asked for: HTTP/1.1 defaults to
    /// keep-alive unless `Connection: close`; HTTP/1.0 defaults to close
    /// unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let conn = self.header("connection").map(str::to_ascii_lowercase);
        match conn.as_deref() {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => !self.is_http10(),
        }
    }
}

/// Index just past the `\r\n\r\n` terminating the head, if complete.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses the head bytes (everything up to and including `\r\n\r\n`).
pub fn parse_head(bytes: &[u8]) -> Result<RequestHead, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "head is not UTF-8".to_string())?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty head")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    let Some(minor) = version.strip_prefix("HTTP/1.") else {
        return Err(format!("unsupported version {version:?}"));
    };
    let minor_version: u8 = minor
        .parse()
        .map_err(|_| format!("unsupported version {version:?}"))?;
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let params = raw_query.map_or_else(Vec::new, parse_query);
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(RequestHead {
        method,
        path: percent_decode(raw_path),
        params,
        headers,
        minor_version,
    })
}

/// Splits and decodes an `application/x-www-form-urlencoded` query
/// string.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// verbatim (lenient, like most servers).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push((h << 4) | l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes everything outside the unreserved set (for building
/// request targets in the client).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        c @ b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// Chunked transfer coding (incremental decoder)
// ----------------------------------------------------------------------

#[derive(Debug)]
enum ChunkState {
    /// Reading the hex size line (bytes accumulated so far).
    Size(Vec<u8>),
    /// Reading `remaining` payload bytes.
    Data(u64),
    /// Expecting the `\r\n` after a chunk's payload (bytes still due).
    DataEnd(u8),
    /// Reading trailer lines after the last chunk (current line so far).
    Trailer(Vec<u8>),
    Done,
}

/// Incremental decoder for `Transfer-Encoding: chunked` bodies. Feed it
/// raw bytes in arbitrary splits; decoded payload is appended to the
/// caller's buffer.
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: ChunkState,
}

impl Default for ChunkedDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkedDecoder {
    /// A decoder positioned at the first chunk-size line.
    pub fn new() -> Self {
        ChunkedDecoder {
            state: ChunkState::Size(Vec::new()),
        }
    }

    /// True after the terminating 0-chunk (and its trailers) was seen.
    pub fn is_done(&self) -> bool {
        matches!(self.state, ChunkState::Done)
    }

    /// Consumes as much of `input` as possible, appending decoded payload
    /// to `out`. Returns the number of input bytes consumed (always the
    /// full input unless the decoder finished mid-buffer).
    pub fn decode(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<usize, String> {
        let mut i = 0;
        while i < input.len() {
            match &mut self.state {
                ChunkState::Done => break,
                ChunkState::Size(line) => {
                    let b = input[i];
                    i += 1;
                    if b == b'\n' {
                        let text = std::str::from_utf8(line)
                            .map_err(|_| "chunk size is not UTF-8".to_string())?;
                        let size_part = text
                            .trim_end_matches('\r')
                            .split(';')
                            .next()
                            .unwrap_or("")
                            .trim();
                        let size = u64::from_str_radix(size_part, 16)
                            .map_err(|_| format!("invalid chunk size {size_part:?}"))?;
                        self.state = if size == 0 {
                            ChunkState::Trailer(Vec::new())
                        } else {
                            ChunkState::Data(size)
                        };
                    } else {
                        if line.len() > 32 {
                            return Err("chunk size line too long".into());
                        }
                        line.push(b);
                    }
                }
                ChunkState::Data(remaining) => {
                    let take = (*remaining).min((input.len() - i) as u64) as usize;
                    out.extend_from_slice(&input[i..i + take]);
                    i += take;
                    *remaining -= take as u64;
                    if *remaining == 0 {
                        self.state = ChunkState::DataEnd(2);
                    }
                }
                ChunkState::DataEnd(due) => {
                    // Tolerate bare LF line endings: skip up to `due`
                    // bytes of CR/LF.
                    let b = input[i];
                    if b == b'\r' || b == b'\n' {
                        i += 1;
                        let done_line = b == b'\n';
                        *due -= 1;
                        if done_line || *due == 0 {
                            self.state = ChunkState::Size(Vec::new());
                        }
                    } else {
                        return Err("missing CRLF after chunk data".into());
                    }
                }
                ChunkState::Trailer(line) => {
                    let b = input[i];
                    i += 1;
                    if b == b'\n' {
                        let empty = line.iter().all(|&c| c == b'\r');
                        if empty {
                            self.state = ChunkState::Done;
                        } else {
                            line.clear();
                        }
                    } else {
                        if line.len() > 1024 {
                            return Err("trailer line too long".into());
                        }
                        line.push(b);
                    }
                }
            }
        }
        Ok(i)
    }
}

// ----------------------------------------------------------------------
// Response building
// ----------------------------------------------------------------------

/// Renders a response head. The connection disposition is explicit:
/// `keep_alive` emits `Connection: keep-alive` (the response is framed
/// per request — `Content-Length` or chunked — and the socket stays
/// open), `false` emits `Connection: close`.
pub fn response_head(
    status: u16,
    reason: &str,
    headers: &[(&str, &str)],
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = format!("HTTP/1.1 {status} {reason}\r\n");
    for (name, value) in headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    out.into_bytes()
}

/// A complete small response with a body (`Content-Length` framing, so it
/// is keep-alive-safe whenever `keep_alive` is set).
pub fn simple_response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let len = body.len().to_string();
    let mut out = response_head(
        status,
        reason,
        &[("Content-Type", content_type), ("Content-Length", &len)],
        keep_alive,
    );
    out.extend_from_slice(body);
    out
}

/// Appends one chunk of a chunked response body.
pub fn encode_chunk(payload: &[u8], out: &mut Vec<u8>) {
    if payload.is_empty() {
        return; // a 0-size chunk would terminate the body
    }
    let mut size = String::with_capacity(10);
    let _ = write!(size, "{:x}\r\n", payload.len());
    out.extend_from_slice(size.as_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
}

/// The chunked-body terminator.
pub const FINAL_CHUNK: &[u8] = b"0\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_head_with_params() {
        let raw = b"POST /query?xq=%3Cr%2F%3E&name=Q1 HTTP/1.1\r\n\
                    Host: localhost\r\n\
                    Content-Length: 42\r\n\
                    Transfer-Encoding: chunked\r\n\r\n";
        let head = parse_head(&raw[..find_head_end(raw).unwrap()]).unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/query");
        assert_eq!(head.param("xq"), Some("<r/>"));
        assert_eq!(head.param("name"), Some("Q1"));
        assert_eq!(head.content_length().unwrap(), Some(42));
        assert!(head.is_chunked());
        assert!(!head.expects_continue());
        assert!(!head.is_http10());
        assert!(head.wants_keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn keep_alive_negotiation() {
        let parse = |raw: &[u8]| parse_head(&raw[..find_head_end(raw).unwrap()]).unwrap();
        let h11_close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!h11_close.wants_keep_alive());
        let h10 = parse(b"GET / HTTP/1.0\r\n\r\n");
        assert!(h10.is_http10());
        assert!(!h10.wants_keep_alive(), "HTTP/1.0 defaults to close");
        let h10_ka = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(h10_ka.wants_keep_alive(), "explicit 1.0 keep-alive honored");
    }

    #[test]
    fn percent_roundtrip() {
        let original = "<r>{ for $x in /a return $x }</r> +%";
        assert_eq!(percent_decode(&percent_encode(original)), original);
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("bad%zz"), "bad%zz", "lenient on junk");
    }

    #[test]
    fn chunked_decoder_handles_arbitrary_splits() {
        let encoded = b"4\r\nWiki\r\n5\r\npedia\r\nE\r\n in\r\n\r\nchunks.\r\n0\r\n\r\n";
        for split in 1..encoded.len() {
            let mut dec = ChunkedDecoder::new();
            let mut out = Vec::new();
            for part in encoded.chunks(split) {
                let used = dec.decode(part, &mut out).unwrap();
                assert_eq!(used, part.len());
            }
            assert!(dec.is_done(), "split {split}");
            assert_eq!(out, b"Wikipedia in\r\n\r\nchunks.");
        }
    }

    #[test]
    fn chunked_decoder_trailers_and_extensions() {
        let encoded = b"5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n";
        let mut dec = ChunkedDecoder::new();
        let mut out = Vec::new();
        dec.decode(encoded, &mut out).unwrap();
        assert!(dec.is_done());
        assert_eq!(out, b"hello");
    }

    #[test]
    fn chunked_decoder_rejects_garbage_size() {
        let mut dec = ChunkedDecoder::new();
        let mut out = Vec::new();
        assert!(dec.decode(b"zz\r\n", &mut out).is_err());
    }

    #[test]
    fn encode_then_decode_roundtrip() {
        let mut wire = Vec::new();
        encode_chunk(b"hello ", &mut wire);
        encode_chunk(b"", &mut wire); // no-op, must not terminate
        encode_chunk(b"world", &mut wire);
        wire.extend_from_slice(FINAL_CHUNK);
        let mut dec = ChunkedDecoder::new();
        let mut out = Vec::new();
        dec.decode(&wire, &mut out).unwrap();
        assert!(dec.is_done());
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn response_builders() {
        let head = response_head(200, "OK", &[("Content-Type", "application/xml")], false);
        let text = String::from_utf8(head).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n"));
        let keep = response_head(200, "OK", &[], true);
        assert!(String::from_utf8(keep)
            .unwrap()
            .contains("Connection: keep-alive"));
        let full = simple_response(404, "Not Found", "text/plain", b"nope", false);
        let text = String::from_utf8(full).unwrap();
        assert!(text.contains("Content-Length: 4"));
        assert!(text.ends_with("nope"));
    }
}
