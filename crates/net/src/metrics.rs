//! Request-level metrics and the `GET /metrics` Prometheus exposition.
//!
//! One [`NetMetrics`] lives in the server's shared state; every layer
//! below hangs its histograms off it:
//!
//! * **net** — per-request total latency by endpoint class
//!   (`query`/`stats`/`other`), time-to-first-byte, and the
//!   accept→first-drive queue wait of each connection;
//! * **service** — session lifecycle phases
//!   ([`gcx_service::SessionMetrics`]: pool queue wait, run, total);
//! * **core** — sampled per-stage engine timers
//!   ([`gcx_core::EngineStageMetrics`]: lex/skip/match/buffer/emit).
//!
//! Recording is wait-free (relaxed atomics on fixed log₂ buckets —
//! `gcx-obs`), so the histograms are shared by every connection worker
//! and evaluator thread without locks.
//!
//! [`render`] emits the classic Prometheus text format (v0.0.4):
//! counters and gauges from the server's live state, histograms as
//! cumulative `_bucket{le="…"}` series with `le` in seconds at the
//! log₂-bucket upper bounds, truncated after the highest non-empty
//! bucket (`+Inf` always closes the series).

use crate::server::ServerShared;
use crate::stats_json::esc_into;
use gcx_core::EngineStageMetrics;
use gcx_obs::{HistogramSnapshot, LatencyHistogram};
use gcx_service::SessionMetrics;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Endpoint classes for request-latency attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqClass {
    /// `POST /query` — streaming evaluation.
    Query,
    /// `GET /stats` and `GET /metrics` — observability planes.
    Stats,
    /// `GET /trace` — flight-recorder export.
    Trace,
    /// Everything else (healthz, 404s, malformed requests).
    Other,
}

/// Maps a request head to its latency class. The single classification
/// point: the dispatcher derives its class from the same `(method,
/// path)` pair it routes on, so every endpoint lands in exactly one
/// class (tested below).
pub(crate) fn classify(method: &str, path: &str) -> ReqClass {
    match (method, path) {
        ("POST", "/query") => ReqClass::Query,
        ("GET", "/stats") | ("GET", "/metrics") => ReqClass::Stats,
        ("GET", "/trace") => ReqClass::Trace,
        _ => ReqClass::Other,
    }
}

/// All metrics the front-end records or re-exports. See module docs.
pub(crate) struct NetMetrics {
    /// Total request latency (head parsed → response flushed), per class.
    pub(crate) query: LatencyHistogram,
    pub(crate) stats: LatencyHistogram,
    pub(crate) trace: LatencyHistogram,
    pub(crate) other: LatencyHistogram,
    /// Head parsed → first response byte on the wire (all classes).
    pub(crate) ttfb: LatencyHistogram,
    /// Connection accepted → first worker drive.
    pub(crate) queue_wait: LatencyHistogram,
    /// Sampled per-stage engine timing, installed into every session.
    pub(crate) engine_stages: Arc<EngineStageMetrics>,
    /// Session lifecycle phases, installed into every session.
    pub(crate) sessions: Arc<SessionMetrics>,
}

impl NetMetrics {
    pub(crate) fn new() -> Self {
        NetMetrics {
            query: LatencyHistogram::new(),
            stats: LatencyHistogram::new(),
            trace: LatencyHistogram::new(),
            other: LatencyHistogram::new(),
            ttfb: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            engine_stages: Arc::new(EngineStageMetrics::new()),
            sessions: Arc::new(SessionMetrics::new()),
        }
    }

    /// The total-latency histogram for one endpoint class.
    pub(crate) fn request_class(&self, class: ReqClass) -> &LatencyHistogram {
        match class {
            ReqClass::Query => &self.query,
            ReqClass::Stats => &self.stats,
            ReqClass::Trace => &self.trace,
            ReqClass::Other => &self.other,
        }
    }

    /// `(class label, histogram)` pairs for renderers.
    pub(crate) fn request_classes(&self) -> [(&'static str, &LatencyHistogram); 4] {
        [
            ("query", &self.query),
            ("stats", &self.stats),
            ("trace", &self.trace),
            ("other", &self.other),
        ]
    }
}

/// Appends one `name{label="value"}` (or bare `name`) series prefix.
fn series(out: &mut String, name: &str, label: Option<(&str, &str)>) {
    out.push_str(name);
    if let Some((k, v)) = label {
        out.push('{');
        out.push_str(k);
        out.push_str("=\"");
        esc_into(out, v);
        out.push_str("\"}");
    }
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// The `le` bound of log₂ bucket `i`, in seconds. The last bucket is
/// unbounded and rendered as `+Inf` by the caller instead.
fn le_seconds(i: usize) -> f64 {
    gcx_obs::hist::bucket_upper_nanos(i) as f64 / 1e9
}

/// Appends one histogram family member: cumulative buckets (truncated
/// after the highest non-empty one), `+Inf`, `_sum` (seconds), `_count`.
fn histogram(out: &mut String, name: &str, label: Option<(&str, &str)>, snap: &HistogramSnapshot) {
    let last = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i.min(snap.buckets.len() - 2));
    let mut cum = 0u64;
    for (i, &count) in snap.buckets.iter().enumerate().take(last + 1) {
        cum += count;
        out.push_str(name);
        out.push_str("_bucket{");
        if let Some((k, v)) = label {
            out.push_str(k);
            out.push_str("=\"");
            esc_into(out, v);
            out.push_str("\",");
        }
        let _ = writeln!(out, "le=\"{}\"}} {cum}", le_seconds(i));
    }
    out.push_str(name);
    out.push_str("_bucket{");
    if let Some((k, v)) = label {
        out.push_str(k);
        out.push_str("=\"");
        esc_into(out, v);
        out.push_str("\",");
    }
    let _ = writeln!(out, "le=\"+Inf\"}} {}", snap.count);
    series(out, &format!("{name}_sum"), label);
    let _ = writeln!(out, " {}", snap.sum_nanos as f64 / 1e9);
    series(out, &format!("{name}_count"), label);
    let _ = writeln!(out, " {}", snap.count);
}

fn histogram_family<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    label_key: &str,
    members: impl IntoIterator<Item = (&'a str, &'a LatencyHistogram)>,
) {
    let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} histogram");
    for (value, hist) in members {
        histogram(out, name, Some((label_key, value)), &hist.snapshot());
    }
}

/// Renders the full `/metrics` document (Prometheus text format).
pub(crate) fn render(shared: &ServerShared) -> String {
    let c = &shared.counters;
    let m = &shared.metrics;
    let mut out = String::with_capacity(8 * 1024);

    // Build identity and process uptime: which build answers the scrape,
    // and when it restarted.
    let _ = writeln!(
        out,
        "# HELP gcx_build_info Build identity (always 1; read the labels).\n\
         # TYPE gcx_build_info gauge"
    );
    out.push_str("gcx_build_info{version=\"");
    esc_into(&mut out, env!("CARGO_PKG_VERSION"));
    out.push_str("\",git=\"");
    esc_into(&mut out, option_env!("GCX_GIT_HASH").unwrap_or("unknown"));
    out.push_str("\"} 1\n");
    gauge(
        &mut out,
        "gcx_process_uptime_seconds",
        "Seconds since this server started.",
        shared.started.elapsed().as_secs(),
    );

    counter(
        &mut out,
        "gcx_connections_total",
        "TCP connections accepted.",
        c.connections.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_requests_total",
        "HTTP requests parsed.",
        c.requests.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_sessions_completed_total",
        "Query sessions completed successfully.",
        c.sessions_completed.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_sessions_failed_total",
        "Query sessions failed or aborted.",
        c.sessions_failed.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_sessions_output_capped_total",
        "Sessions failed by the output-side hard cap (client not draining).",
        c.sessions_output_capped.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_bytes_in_total",
        "Bytes read from client sockets.",
        c.bytes_in.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_bytes_out_total",
        "Bytes written to client sockets.",
        c.bytes_out.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_requests_shed_total",
        "Connections answered 503 by overload shedding (admission cap or queue-wait deadline).",
        c.connections_shed.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_accept_errors_total",
        "accept(2) failures; the acceptor backs off exponentially while they persist.",
        c.accept_errors.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_evaluator_panics_total",
        "Evaluator panics caught and converted into failed sessions.",
        shared.pool.panics(),
    );
    counter(
        &mut out,
        "gcx_evaluator_steps_total",
        "Evaluation slices run by the evaluator pool's ready-queue scheduler.",
        shared.pool.steps(),
    );
    counter(
        &mut out,
        "gcx_session_yields_total",
        "Times a session parked mid-evaluation (input starved, output backpressure, or budget yield).",
        shared.pool.yields(),
    );
    counter(
        &mut out,
        "gcx_epoll_wakeups_total",
        "epoll_wait returns that delivered events to a connection worker (idle workers sleep, so this only advances under load).",
        c.epoll_wakeups.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "gcx_traces_captured_total",
        "Request traces kept by the flight recorder (sampled or slow).",
        shared.recorder.traces_captured.get(),
    );
    counter(
        &mut out,
        "gcx_trace_spans_dropped_total",
        "Flight-recorder ring overwrites (oldest spans evicted).",
        shared.recorder.spans_dropped.get(),
    );
    counter(
        &mut out,
        "gcx_slow_requests_total",
        "Requests that exceeded the slow-request threshold (GCX_SLOW_MS).",
        shared.recorder.slow_requests.get(),
    );

    let active = shared.sessions.lock().expect("registry lock").len();
    gauge(
        &mut out,
        "gcx_active_sessions",
        "Sessions currently registered (mid-stream).",
        active as u64,
    );
    gauge(
        &mut out,
        "gcx_open_connections",
        "Connections currently open (queued, driven, or parked).",
        shared.open_connections() as u64,
    );
    gauge(
        &mut out,
        "gcx_evaluator_pool_size",
        "Evaluator pool worker threads.",
        shared.pool.size() as u64,
    );
    gauge(
        &mut out,
        "gcx_evaluator_pool_active",
        "Evaluator jobs currently executing.",
        shared.pool.active() as u64,
    );
    gauge(
        &mut out,
        "gcx_evaluator_pool_queued",
        "Evaluator jobs waiting for a pool thread.",
        shared.pool.queued() as u64,
    );
    if let Some(b) = shared.service.budget() {
        gauge(
            &mut out,
            "gcx_budget_limit_bytes",
            "Configured memory budget.",
            b.limit() as u64,
        );
        gauge(
            &mut out,
            "gcx_budget_used_bytes",
            "Memory budget bytes in use (queued input + undrained output).",
            b.used() as u64,
        );
    }

    histogram_family(
        &mut out,
        "gcx_request_duration_seconds",
        "Request latency, head parsed to response flushed.",
        "class",
        m.request_classes(),
    );
    histogram_family(
        &mut out,
        "gcx_request_ttfb_seconds",
        "Head parsed to first response byte on the wire.",
        "class",
        [("all", &m.ttfb)],
    );
    histogram_family(
        &mut out,
        "gcx_conn_queue_wait_seconds",
        "Connection accepted to first worker drive.",
        "class",
        [("all", &m.queue_wait)],
    );
    histogram_family(
        &mut out,
        "gcx_engine_stage_duration_seconds",
        "Sampled per-stage engine time (one pump step / skip / emit).",
        "stage",
        m.engine_stages.stages(),
    );
    histogram_family(
        &mut out,
        "gcx_session_phase_duration_seconds",
        "Session lifecycle phases (pool queue wait, engine run, total).",
        "phase",
        m.sessions.phases(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn render_one(h: &LatencyHistogram, label: Option<(&str, &str)>) -> String {
        let mut out = String::new();
        histogram(&mut out, "t_seconds", label, &h.snapshot());
        out
    }

    #[test]
    fn every_endpoint_lands_in_exactly_one_class() {
        // The served endpoints, as the dispatcher routes them.
        assert_eq!(classify("POST", "/query"), ReqClass::Query);
        assert_eq!(classify("GET", "/stats"), ReqClass::Stats);
        assert_eq!(classify("GET", "/metrics"), ReqClass::Stats);
        assert_eq!(classify("GET", "/trace"), ReqClass::Trace);
        assert_eq!(classify("GET", "/healthz"), ReqClass::Other);
        // Wrong-method and unknown paths fall through to Other.
        assert_eq!(classify("GET", "/query"), ReqClass::Other);
        assert_eq!(classify("POST", "/stats"), ReqClass::Other);
        assert_eq!(classify("POST", "/trace"), ReqClass::Other);
        assert_eq!(classify("GET", "/nope"), ReqClass::Other);
        // Each class has a distinct histogram and label.
        let m = NetMetrics::new();
        let labels: Vec<&str> = m.request_classes().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["query", "stats", "trace", "other"]);
        for class in [
            ReqClass::Query,
            ReqClass::Stats,
            ReqClass::Trace,
            ReqClass::Other,
        ] {
            m.request_class(class).record(Duration::from_micros(1));
        }
        for (_, h) in m.request_classes() {
            assert_eq!(h.snapshot().count, 1, "one record per class histogram");
        }
    }

    #[test]
    fn empty_histogram_is_valid_exposition() {
        let h = LatencyHistogram::new();
        let text = render_one(&h, None);
        assert!(text.contains("t_seconds_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("t_seconds_sum 0"), "{text}");
        assert!(text.contains("t_seconds_count 0"), "{text}");
    }

    #[test]
    fn buckets_are_cumulative_and_truncated() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1)); // bucket 0 (le 1ns)
        h.record(Duration::from_nanos(3)); // bucket 1 (le 3ns)
        h.record(Duration::from_nanos(3));
        let text = render_one(&h, Some(("class", "query")));
        // Bucket 0 holds 1; bucket 1 is cumulative (3); nothing beyond
        // the highest non-empty bucket except +Inf.
        assert!(
            text.contains("t_seconds_bucket{class=\"query\",le=\"0.000000001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("t_seconds_bucket{class=\"query\",le=\"0.000000003\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("t_seconds_bucket{class=\"query\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert_eq!(
            text.matches("t_seconds_bucket").count(),
            3,
            "two real buckets + +Inf only: {text}"
        );
        assert!(
            text.contains("t_seconds_count{class=\"query\"} 3"),
            "{text}"
        );
    }
}
