//! Process-signal wiring for graceful drain.
//!
//! `gcx serve` installs a handler for `SIGTERM`/`SIGINT` that sets a
//! flag; the serve loop polls [`terminate_requested`] and calls
//! [`crate::GcxServer::shutdown_graceful`] when it flips. The handler
//! itself does nothing but an atomic store — the only thing that is
//! async-signal-safe here.
//!
//! The workspace is dependency-free (no `libc` crate), so the two libc
//! symbols needed are declared directly; `std` already links libc on
//! every unix target.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// `true` once a termination signal (or [`request_terminate`]) arrived.
pub fn terminate_requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Flips the flag by hand — what the signal handler does, callable from
/// tests and non-unix fallbacks.
pub fn request_terminate() {
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Installs the `SIGTERM`/`SIGINT` handler. Returns `false` on targets
/// without unix signals (callers should fall back to blocking forever).
#[cfg(unix)]
pub fn install_terminate_handler() -> bool {
    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_terminate);
        signal(SIGTERM, on_terminate);
    }
    true
}

/// Installs the `SIGTERM`/`SIGINT` handler. Returns `false` on targets
/// without unix signals (callers should fall back to blocking forever).
#[cfg(not(unix))]
pub fn install_terminate_handler() -> bool {
    false
}

#[cfg(test)]
mod tests {
    #[test]
    fn manual_request_flips_the_flag() {
        // Not asserting the initial state: another test (or a stray
        // signal) may have flipped the process-global flag already.
        super::request_terminate();
        assert!(super::terminate_requested());
    }
}
