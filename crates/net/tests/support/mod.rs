//! Shared helpers for gcx-net integration tests.
//!
//! Holds the minimal recursive-descent JSON validator used by the
//! chaos, e2e, and trace suites (the workspace has no serde; this
//! checks structure, not meaning). Each test file pulls it in with
//! `mod support;`.
#![allow(dead_code)] // each test binary uses a subset

/// Validates that `s` is one complete JSON value with nothing trailing.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {c:?} at offset {i}", i = *i)),
        None => Err("unexpected end of input".into()),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at offset {i}", i = *i));
        }
        *i += 1;
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {i}", i = *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {i}", i = *i)),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {i}", i = *i));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {i}", i = *i));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at offset {i}", i = *i)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at offset {i}", i = *i)),
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if *i == start || (*i == start + 1 && b[start] == b'-') {
        return Err(format!("bad number at offset {start}"));
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}", i = *i))
    }
}
