//! End-to-end wire tests: a real server on an ephemeral port, real
//! sockets, concurrent clients, disconnects — asserting byte-identical
//! output vs the in-process engine, clean cancellation, live `/stats`
//! sampling, and a worker pool that does not leak threads.

use gcx_net::{client, http, GcxServer, NetConfig};
use gcx_xml::TagInterner;
use std::time::Duration;

const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
const QUERY2: &str =
    "<r>{ for $b in /bib/book return if (exists($b/price)) then $b/title else () }</r>";

fn reference_output(query: &str, doc: &[u8]) -> Vec<u8> {
    let mut tags = TagInterner::new();
    let compiled = gcx_query::compile_default(query, &mut tags).expect("compile");
    let mut out = Vec::new();
    gcx_core::run_gcx(&compiled, &mut tags, doc, &mut out).expect("run");
    out
}

fn make_doc(books: usize) -> Vec<u8> {
    let mut doc = String::from("<bib>");
    for i in 0..books {
        doc.push_str(&format!(
            "<book><title>Title {i}</title>{}</book>",
            if i % 2 == 0 { "<price>9</price>" } else { "" }
        ));
    }
    doc.push_str("</bib>");
    doc.into_bytes()
}

fn query_path(query: &str) -> String {
    format!("/query?xq={}", http::percent_encode(query))
}

#[cfg(target_os = "linux")]
fn process_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
}

#[test]
fn single_request_matches_in_process_engine() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(50);
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    assert_eq!(resp.body, reference_output(QUERY, &doc));
    assert_eq!(server.active_sessions(), 0, "registry drained");
    server.shutdown();
}

#[test]
fn named_query_and_health_endpoints() {
    let config = NetConfig {
        queries: vec![("titles".to_string(), QUERY.to_string())],
        ..Default::default()
    };
    let server = GcxServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(3);
    let resp = client::post(addr, "/query?name=titles", &doc).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, reference_output(QUERY, &doc));
    let missing = client::post(addr, "/query?name=nope", &doc).unwrap();
    assert_eq!(missing.status, 404);
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let nowhere = client::get(addr, "/nowhere").unwrap();
    assert_eq!(nowhere.status, 404);
    server.shutdown();
}

#[test]
fn compile_error_yields_400_and_stream_error_yields_422() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let bad_query = client::post(addr, &query_path("<r>{ $undefined }</r>"), b"<a/>").unwrap();
    assert_eq!(bad_query.status, 400);
    assert!(bad_query.text().contains("compile"), "{}", bad_query.text());
    // Malformed XML whose error surfaces before any output byte.
    let bad_doc = client::post(addr, &query_path(QUERY), b"</nope>").unwrap();
    assert_eq!(bad_doc.status, 422, "body: {}", bad_doc.text());
    assert_eq!(server.active_sessions(), 0);
    server.shutdown();
}

#[test]
fn eight_concurrent_clients_mixed_queries_and_chunked_uploads() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 4,
            evaluators: 8,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    #[cfg(target_os = "linux")]
    let threads_before = process_threads();
    #[cfg(not(target_os = "linux"))]
    let threads_before = 0usize;

    let doc = make_doc(400);
    let expected_q1 = reference_output(QUERY, &doc);
    let expected_q2 = reference_output(QUERY2, &doc);
    let (results, threads_during): (Vec<_>, usize) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let doc = &doc;
                scope.spawn(move || {
                    let query = if i % 2 == 0 { QUERY } else { QUERY2 };
                    if i % 3 == 0 {
                        // Streamed chunked upload in small pieces.
                        let mut ps = client::PostStream::open(addr, &query_path(query)).unwrap();
                        for chunk in doc.chunks(1024) {
                            ps.send_chunk(chunk).unwrap();
                        }
                        (i, ps.finish().unwrap())
                    } else {
                        (i, client::post(addr, &query_path(query), doc).unwrap())
                    }
                })
            })
            .collect();
        // Sample the process thread count while clients are in flight.
        #[cfg(target_os = "linux")]
        let sampled = process_threads();
        #[cfg(not(target_os = "linux"))]
        let sampled = 0usize;
        (
            handles.into_iter().map(|h| h.join().unwrap()).collect(),
            sampled,
        )
    });
    for (i, resp) in results {
        assert_eq!(resp.status, 200, "client {i}");
        let expected = if i % 2 == 0 {
            &expected_q1
        } else {
            &expected_q2
        };
        assert_eq!(
            resp.body, *expected,
            "client {i}: wire output must be byte-identical to run_gcx"
        );
    }
    // No worker-pool leak: the server's thread count is fixed; the only
    // extra threads during the burst are the 8 client threads this test
    // spawned itself.
    #[cfg(target_os = "linux")]
    assert!(
        threads_during <= threads_before + 8,
        "server must not spawn per-session threads: {threads_before} before, \
         {threads_during} during"
    );
    #[cfg(not(target_os = "linux"))]
    let _ = (threads_before, threads_during);
    assert_eq!(server.active_sessions(), 0, "all sessions unregistered");
    assert_eq!(
        server
            .counters()
            .sessions_completed
            .load(std::sync::atomic::Ordering::Relaxed),
        8
    );
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_cancels_session_cleanly() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(100);
    {
        let mut ps = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
        ps.send_chunk(&doc[..doc.len() / 2]).unwrap();
        // Give the server time to open the session and start evaluating.
        for _ in 0..200 {
            if server.active_sessions() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(server.active_sessions(), 1, "session is live mid-stream");
        // Drop without finishing: mid-stream client disconnect.
    }
    for _ in 0..500 {
        if server.active_sessions() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        server.active_sessions(),
        0,
        "disconnect cancels the session"
    );
    assert_eq!(
        server
            .counters()
            .sessions_failed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // The server still serves new requests afterwards.
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, reference_output(QUERY, &doc));
    server.shutdown();
}

#[test]
fn stats_report_live_mid_stream_buffer_figures() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(100);
    let mut ps = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    // Feed only part of the document — the session stays open.
    ps.send_chunk(&doc[..doc.len() / 2]).unwrap();
    let mut saw_live_session = false;
    for _ in 0..500 {
        let stats = client::get(addr, "/stats").unwrap();
        assert_eq!(stats.status, 200);
        let json = stats.text();
        assert!(json.contains("\"schema\": \"gcx-net-stats/5\""));
        // A live (mid-stream!) session whose engine has already created
        // buffer nodes — the sampling the finish()-only reports could
        // never give us.
        if json.contains("\"active_sessions\": 1") && has_positive_field(&json, "nodes_created") {
            assert!(json.contains("\"peak_nodes\""));
            assert!(json.contains("\"text_arena_bytes\""));
            saw_live_session = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_live_session, "live session stats never appeared");
    ps.send_chunk(&doc[doc.len() / 2..]).unwrap();
    let resp = ps.finish().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, reference_output(QUERY, &doc));
    // After completion the registry is empty again and counters moved.
    let stats = client::get(addr, "/stats").unwrap().text();
    assert!(stats.contains("\"active_sessions\": 0"), "{stats}");
    assert!(stats.contains("\"sessions_completed\": 1"), "{stats}");
    server.shutdown();
}

#[test]
fn metrics_exposition_covers_requests_stages_and_sessions() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    // Large enough that the sampled stage timers (1 in 512 pump steps)
    // fire several times per request.
    let doc = make_doc(200);
    for _ in 0..3 {
        let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
        assert_eq!(resp.status, 200);
    }
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    // Exposition format: TYPE lines, counters, histogram series.
    assert!(text.contains("# TYPE gcx_requests_total counter"), "{text}");
    assert!(
        text.contains("# TYPE gcx_request_duration_seconds histogram"),
        "{text}"
    );
    assert!(text.contains("gcx_sessions_completed_total 3"), "{text}");
    assert!(
        metric_value(&text, "gcx_request_duration_seconds_count{class=\"query\"}") >= 1,
        "query latency series non-empty after traffic: {text}"
    );
    assert!(
        metric_value(&text, "gcx_request_ttfb_seconds_count{class=\"all\"}") >= 1,
        "{text}"
    );
    assert!(
        metric_value(&text, "gcx_conn_queue_wait_seconds_count{class=\"all\"}") >= 1,
        "{text}"
    );
    assert!(
        metric_value(
            &text,
            "gcx_engine_stage_duration_seconds_count{stage=\"lex\"}"
        ) >= 1,
        "sampled engine stages populated: {text}"
    );
    assert!(
        metric_value(
            &text,
            "gcx_session_phase_duration_seconds_count{phase=\"run\"}"
        ) >= 1,
        "{text}"
    );
    assert!(
        text.contains("gcx_request_duration_seconds_bucket{class=\"query\",le=\"+Inf\"}"),
        "{text}"
    );
    // Every non-comment line is `name[{labels}] value`.
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("series and value");
        assert!(!series.is_empty(), "bad line: {line}");
        assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
    }
    // /stats serves the same quantiles in the schema-3 latency section.
    let stats = client::get(addr, "/stats").unwrap().text();
    assert!(stats.contains("\"schema\": \"gcx-net-stats/5\""), "{stats}");
    assert!(stats.contains("\"latency\""), "{stats}");
    assert!(stats.contains("\"engine_stages\""), "{stats}");
    assert!(stats.contains("\"p99_us\""), "{stats}");
    assert!(stats.contains("\"queue_wait\""), "{stats}");
    server.shutdown();
}

/// The integer value of one exposition series, 0 when absent.
fn metric_value(text: &str, series: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(series))
        .and_then(|rest| rest.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// True when the JSON text contains `"name": <positive integer>`.
fn has_positive_field(json: &str, name: &str) -> bool {
    let needle = format!("\"{name}\": ");
    json.match_indices(&needle).any(|(i, _)| {
        let rest = &json[i + needle.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse::<u64>().map(|v| v > 0).unwrap_or(false)
    })
}

#[test]
fn document_larger_than_memory_budget_streams_through() {
    // The acceptance shape: a document far larger than the global memory
    // budget flows end to end because the engine buffer stays minimized
    // and I/O is bounded — the budget only trips if buffering actually
    // grows, which GCX prevents.
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            service: gcx_service::ServiceConfig {
                memory_budget: Some(256 * 1024),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(40_000); // ~1.8 MB, 7× the budget
    assert!(doc.len() > 4 * 256 * 1024);
    let ps = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    let chunks: Vec<Vec<u8>> = doc.chunks(32 * 1024).map(<[u8]>::to_vec).collect();
    let resp = ps.stream_and_finish(chunks).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, reference_output(QUERY, &doc));
    let stats = client::get(addr, "/stats").unwrap().text();
    assert!(stats.contains("\"budget\": { \"limit\": 262144"), "{stats}");
    server.shutdown();
}

#[test]
fn shutdown_with_connection_in_flight_does_not_hang() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(50);
    let mut ps = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    ps.send_chunk(&doc[..100]).unwrap();
    for _ in 0..200 {
        if server.active_sessions() > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown(); // must cancel the in-flight session and join
    drop(ps);
}
