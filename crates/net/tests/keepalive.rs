//! Keep-alive / pipelining end-to-end tests: one real connection serving
//! many requests with byte-identical results, error responses that leave
//! the connection reusable, pipelined requests answered in order,
//! HTTP/1.0 and `Connection: close` clients, the per-connection request
//! cap, and the output-side session hard cap for never-draining clients.

use gcx_net::{client, http, GcxServer, NetConfig};
use gcx_xml::TagInterner;
use std::io::{Read, Write};
use std::sync::atomic::Ordering;
use std::time::Duration;

const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
const QUERY2: &str =
    "<r>{ for $b in /bib/book return if (exists($b/price)) then $b/title else () }</r>";

fn reference_output(query: &str, doc: &[u8]) -> Vec<u8> {
    let mut tags = TagInterner::new();
    let compiled = gcx_query::compile_default(query, &mut tags).expect("compile");
    let mut out = Vec::new();
    gcx_core::run_gcx(&compiled, &mut tags, doc, &mut out).expect("run");
    out
}

fn make_doc(books: usize) -> Vec<u8> {
    let mut doc = String::from("<bib>");
    for i in 0..books {
        doc.push_str(&format!(
            "<book><title>Title {i}</title>{}</book>",
            if i % 2 == 0 { "<price>9</price>" } else { "" }
        ));
    }
    doc.push_str("</bib>");
    doc.into_bytes()
}

fn query_path(query: &str) -> String {
    format!("/query?xq={}", http::percent_encode(query))
}

#[test]
fn sequential_requests_on_one_connection_byte_identical() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(60);
    let expected_q1 = reference_output(QUERY, &doc);
    let expected_q2 = reference_output(QUERY2, &doc);
    let mut client = client::HttpClient::connect(addr).unwrap();
    for i in 0..6 {
        let (path, expected) = if i % 2 == 0 {
            (query_path(QUERY), &expected_q1)
        } else {
            (query_path(QUERY2), &expected_q2)
        };
        let resp = client.post(&path, &doc).unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.text());
        assert_eq!(
            resp.header("connection"),
            Some("keep-alive"),
            "request {i} keeps the connection"
        );
        assert_eq!(
            resp.body, *expected,
            "request {i}: wire output must be byte-identical to run_gcx"
        );
    }
    // GET endpoints ride the same connection too.
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let json = stats.text();
    // The whole point: one connection, many requests.
    let connections = server.counters().connections.load(Ordering::Relaxed);
    let requests = server.counters().requests.load(Ordering::Relaxed);
    assert_eq!(connections, 1, "single TCP connection accepted");
    assert_eq!(requests, 8, "eight requests over it");
    assert!(json.contains("\"connections\": 1"), "{json}");
    assert!(json.contains("\"requests\": 8"), "{json}");
    assert_eq!(
        server.active_sessions(),
        0,
        "per-request sessions torn down"
    );
    server.shutdown();
}

#[test]
fn xmark_suite_on_one_connection_byte_identical() {
    // The acceptance shape: the real benchmark queries (Q1/Q6/Q13/Q20)
    // over a real XMark document, all on a single keep-alive
    // connection, each response byte-identical to the offline engine.
    let mut doc = Vec::new();
    gcx_xmark::generate(
        gcx_xmark::XmarkConfig {
            seed: 42,
            scale: 0.25,
        },
        &mut doc,
    )
    .expect("xmark generation");
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = client::HttpClient::connect(addr).unwrap();
    for qname in ["Q1", "Q6", "Q13", "Q20"] {
        let query = gcx_xmark::by_name(qname).expect("benchmark query");
        let expected = reference_output(query, &doc);
        let resp = client.post(&query_path(query), &doc).unwrap();
        assert_eq!(resp.status, 200, "{qname}: {}", resp.text());
        assert_eq!(
            resp.body, expected,
            "{qname}: wire output differs from run_gcx"
        );
    }
    assert_eq!(server.counters().connections.load(Ordering::Relaxed), 1);
    assert_eq!(server.counters().requests.load(Ordering::Relaxed), 4);
    server.shutdown();
}

#[test]
fn error_response_leaves_connection_reusable() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(20);
    let expected = reference_output(QUERY, &doc);
    let mut client = client::HttpClient::connect(addr).unwrap();
    // 1. Unknown registered query: early 404 while the body is still on
    //    the wire — the server must drain it and keep the connection.
    let resp = client.post("/query?name=missing", &doc).unwrap();
    assert_eq!(resp.status, 404);
    // 2. Compile error: early 400, same drain-and-keep path.
    let resp = client
        .post(&query_path("<r>{ $undefined }</r>"), &doc)
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    // 3. Malformed document: the session fails *after* the full upload
    //    was consumed, so the 422 can keep the connection too.
    let resp = client.post(&query_path(QUERY), b"</nope>").unwrap();
    assert_eq!(resp.status, 422, "{}", resp.text());
    // 4. The same connection still serves a correct result.
    let resp = client.post(&query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.body, expected);
    assert_eq!(
        server.counters().connections.load(Ordering::Relaxed),
        1,
        "every request (including the failed ones) shared one connection"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_answered_in_order() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(30);
    let expected_q1 = reference_output(QUERY, &doc);
    let expected_q2 = reference_output(QUERY2, &doc);
    let mut client = client::HttpClient::connect(addr).unwrap();
    // Write both requests back to back before reading any response —
    // the second request's bytes land in the server's buffer while it
    // is still answering the first, and must not be dropped.
    client.send_post(&query_path(QUERY), &doc).unwrap();
    client.send_post(&query_path(QUERY2), &doc).unwrap();
    let first = client.read_response().unwrap();
    let second = client.read_response().unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(second.status, 200, "{}", second.text());
    assert_eq!(first.body, expected_q1, "responses arrive in request order");
    assert_eq!(second.body, expected_q2);
    assert_eq!(server.counters().connections.load(Ordering::Relaxed), 1);
    assert_eq!(server.counters().requests.load(Ordering::Relaxed), 2);
    server.shutdown();
}

#[test]
fn http10_and_connection_close_clients_still_served() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(25);
    let expected = reference_output(QUERY, &doc);

    // HTTP/1.0: no chunked coding — the response body is close-delimited.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "POST {} HTTP/1.0\r\nHost: gcx\r\nContent-Length: {}\r\n\r\n",
        query_path(QUERY),
        doc.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(&doc).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(
        text.to_ascii_lowercase().contains("connection: close"),
        "HTTP/1.0 responses must close: {text}"
    );
    assert!(
        !text.to_ascii_lowercase().contains("transfer-encoding"),
        "HTTP/1.0 cannot take chunked responses: {text}"
    );
    let body_start = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head terminator")
        + 4;
    assert_eq!(&raw[body_start..], &expected[..], "close-delimited body");

    // HTTP/1.1 + `Connection: close`: framed as usual, socket closed
    // after the response.
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    assert_eq!(resp.body, expected);
    server.shutdown();
}

#[test]
fn max_requests_per_connection_enforced() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_requests_per_conn: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(10);
    let mut client = client::HttpClient::connect(addr).unwrap();
    let first = client.post(&query_path(QUERY), &doc).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = client.post(&query_path(QUERY), &doc).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(
        second.header("connection"),
        Some("close"),
        "the request hitting the cap is answered with Connection: close"
    );
    // The socket is gone afterwards; a third request fails.
    let third = client.post(&query_path(QUERY), &doc);
    assert!(third.is_err(), "connection must be closed after the cap");
    server.shutdown();
}

#[test]
fn keep_alive_idle_timeout_closes_parked_connection() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            keep_alive_timeout: Duration::from_millis(150),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(10);
    let mut client = client::HttpClient::connect(addr).unwrap();
    let resp = client.post(&query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    // Park well past the keep-alive timeout; the server reclaims the
    // idle connection (mid-request idleness keeps the long timeout).
    std::thread::sleep(Duration::from_millis(800));
    let reused = client.post(&query_path(QUERY), &doc);
    assert!(
        reused.is_err(),
        "idle keep-alive connection must have been closed"
    );
    // Fresh connections are unaffected.
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn never_draining_client_hits_output_cap_without_hurting_others() {
    // Amplifying query: each book is emitted 64 times, so a modest
    // upload produces tens of megabytes the client refuses to read —
    // far beyond what loopback TCP buffering can absorb, so the
    // backpressure genuinely reaches the session.
    let amplify = format!(
        "<r>{{ for $b in /bib/book return ({}) }}</r>",
        vec!["$b"; 64].join(", ")
    );
    let amplify = amplify.as_str();
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            output_high_water: 16 * 1024,
            // The evaluator parks at the high-water mark, so undrained
            // output never grows toward `output_max_bytes`; the dead
            // client is instead detected at the connection level once it
            // makes no progress for `idle_timeout` with response bytes
            // stuck in the send buffer. Short timeout so the test is
            // quick.
            idle_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(10_000); // ~460 KB upload, ~3.6 MB potential output
    let expected = reference_output(QUERY, &doc);

    // The never-draining client: upload the document, then stop reading.
    let mut stuck = std::net::TcpStream::connect(addr).unwrap();
    let head = format!(
        "POST {} HTTP/1.1\r\nHost: gcx\r\nContent-Length: {}\r\n\r\n",
        query_path(amplify),
        doc.len()
    );
    stuck.write_all(head.as_bytes()).unwrap();
    stuck.write_all(&doc).unwrap();
    // Never read. The server's send path backs up, the session parks on
    // its output high-water mark, and after `idle_timeout` without
    // progress the connection is dropped with the failure attributed to
    // the output cap.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let capped = server
            .counters()
            .sessions_output_capped
            .load(Ordering::Relaxed);
        if capped >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "output cap never tripped; stats={}",
            server.stats_json()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Concurrent sessions on other connections are unaffected.
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, expected);
    // And /stats attributes the failure.
    let stats = client::get(addr, "/stats").unwrap().text();
    assert!(stats.contains("\"sessions_output_capped\": 1"), "{stats}");
    drop(stuck);
    server.shutdown();
}
