//! Robustness e2e: malformed chunked uploads, overload shedding, and
//! graceful drain — all against a real server on an ephemeral port.
//!
//! These run in the default (fault-free) build; the seeded
//! fault-injection storm lives in `tests/chaos.rs` behind the `chaos`
//! feature.

use gcx_net::{client, http, GcxServer, NetConfig};
use gcx_service::ServiceConfig;
use gcx_xml::TagInterner;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";

fn reference_output(query: &str, doc: &[u8]) -> Vec<u8> {
    let mut tags = TagInterner::new();
    let compiled = gcx_query::compile_default(query, &mut tags).expect("compile");
    let mut out = Vec::new();
    gcx_core::run_gcx(&compiled, &mut tags, doc, &mut out).expect("run");
    out
}

fn make_doc(books: usize) -> Vec<u8> {
    let mut doc = String::from("<bib>");
    for i in 0..books {
        doc.push_str(&format!("<book><title>Title {i}</title></book>"));
    }
    doc.push_str("</bib>");
    doc.into_bytes()
}

fn query_path(query: &str) -> String {
    format!("/query?xq={}", http::percent_encode(query))
}

/// Polls `cond` every 5 ms until it holds or `timeout` elapses.
fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Reads whatever the server sends until it closes the connection (or
/// `timeout` elapses, which fails the no-hang assertion at the caller).
fn read_until_close(stream: &mut TcpStream, timeout: Duration) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = Instant::now() + timeout;
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut tmp) {
            Ok(0) => return buf,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return buf,
        }
    }
    panic!("server neither answered nor closed within {timeout:?}");
}

/// Opens a raw connection and writes a chunked-POST head; the test then
/// follows with a (deliberately broken) body.
fn open_chunked_post(server: &GcxServer) -> TcpStream {
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    let head = format!(
        "POST {} HTTP/1.1\r\nHost: gcx\r\nTransfer-Encoding: chunked\r\n\r\n",
        query_path(QUERY)
    );
    s.write_all(head.as_bytes()).unwrap();
    s
}

fn budgeted_server() -> GcxServer {
    GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            service: ServiceConfig {
                memory_budget: Some(1 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap()
}

/// After the broken upload, the server must have answered 400 (framing
/// error caught before any output) and released every resource.
fn assert_rejected_cleanly(server: &GcxServer, bytes: &[u8], expect_msg: &str) {
    let text = String::from_utf8_lossy(bytes);
    assert!(
        text.starts_with("HTTP/1.1 400"),
        "expected a 400, got: {text:?}"
    );
    assert!(text.contains(expect_msg), "body mismatch: {text:?}");
    assert!(
        wait_for(|| server.active_sessions() == 0, Duration::from_secs(5)),
        "session registry did not drain"
    );
    let budget = server.service().budget().expect("budget configured");
    assert!(
        wait_for(
            || budget.used() == 0 && budget.engine_used() == 0,
            Duration::from_secs(5)
        ),
        "budget leaked: used={} engine_used={}",
        budget.used(),
        budget.engine_used()
    );
    // The worker that handled the broken connection is still serving.
    let health = client::get(server.local_addr(), "/healthz").unwrap();
    assert_eq!(health.status, 200);
}

#[test]
fn non_hex_chunk_size_line_yields_400() {
    let server = budgeted_server();
    let mut s = open_chunked_post(&server);
    s.write_all(b"ZZZ\r\nwhatever\r\n0\r\n\r\n").unwrap();
    let bytes = read_until_close(&mut s, Duration::from_secs(10));
    assert_rejected_cleanly(&server, &bytes, "malformed chunked body");
    server.shutdown();
}

#[test]
fn missing_crlf_after_chunk_data_yields_400() {
    let server = budgeted_server();
    let mut s = open_chunked_post(&server);
    // 4-byte chunk followed by garbage where CRLF must be.
    s.write_all(b"4\r\n<bibXX0\r\n\r\n").unwrap();
    let bytes = read_until_close(&mut s, Duration::from_secs(10));
    assert_rejected_cleanly(&server, &bytes, "malformed chunked body");
    server.shutdown();
}

#[test]
fn eof_mid_chunk_closes_cleanly_without_leaking() {
    let server = budgeted_server();
    let mut s = open_chunked_post(&server);
    // Promise 255 bytes, deliver 20, hang up.
    s.write_all(b"ff\r\n<bib><book><title>A").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let bytes = read_until_close(&mut s, Duration::from_secs(10));
    // The upload can never complete; the server cancels the session and
    // closes without inventing a response for a half-framed request.
    let text = String::from_utf8_lossy(&bytes);
    assert!(
        bytes.is_empty() || text.starts_with("HTTP/1.1 4"),
        "unexpected reply to truncated upload: {text:?}"
    );
    assert!(
        wait_for(|| server.active_sessions() == 0, Duration::from_secs(5)),
        "session registry did not drain"
    );
    let budget = server.service().budget().expect("budget configured");
    assert!(
        wait_for(
            || budget.used() == 0 && budget.engine_used() == 0,
            Duration::from_secs(5)
        ),
        "budget leaked after truncated upload"
    );
    let health = client::get(server.local_addr(), "/healthz").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn saturated_server_sheds_with_503_while_inflight_streams_complete() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            max_connections: 2,
            workers: 2,
            evaluators: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(200);
    let expected = reference_output(QUERY, &doc);
    let half = doc.len() / 2;

    // Two in-flight uploads occupy both connection slots.
    let mut ps1 = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    ps1.send_chunk(&doc[..half]).unwrap();
    let mut ps2 = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    ps2.send_chunk(&doc[..half]).unwrap();
    assert!(
        wait_for(|| server.open_connections() >= 2, Duration::from_secs(5)),
        "connections not admitted"
    );

    // The third connection is shed at the acceptor: fast, explicit, and
    // with a retry hint — not a stalled socket.
    let start = Instant::now();
    let shed = client::get(addr, "/healthz").unwrap();
    let elapsed = start.elapsed();
    assert_eq!(shed.status, 503, "body: {}", shed.text());
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(
        elapsed < Duration::from_millis(50),
        "shed took {elapsed:?}, want < 50ms"
    );
    assert!(
        server
            .counters()
            .connections_shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    // Shedding must not disturb the admitted streams.
    ps1.send_chunk(&doc[half..]).unwrap();
    let r1 = ps1.finish().unwrap();
    assert_eq!(r1.status, 200, "body: {}", r1.text());
    assert_eq!(r1.body, expected);
    ps2.send_chunk(&doc[half..]).unwrap();
    let r2 = ps2.finish().unwrap();
    assert_eq!(r2.status, 200);
    assert_eq!(r2.body, expected);
    drop(r1);

    // Slots free up once those connections close; service resumes.
    assert!(
        wait_for(|| server.open_connections() < 2, Duration::from_secs(5)),
        "connection slots not released"
    );
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn queue_wait_deadline_sheds_stale_connections() {
    // A zero deadline means every connection is considered to have
    // waited too long by the time a worker first picks it up — the
    // degenerate config exercises the shed path deterministically.
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            queue_wait_deadline: Duration::ZERO,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/healthz").unwrap();
    assert_eq!(resp.status, 503, "body: {}", resp.text());
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(
        server
            .counters()
            .connections_shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

#[test]
fn graceful_drain_completes_inflight_request_then_stops() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(300);
    let expected = reference_output(QUERY, &doc);
    let half = doc.len() / 2;

    let mut ps = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    ps.send_chunk(&doc[..half]).unwrap();
    assert!(
        wait_for(|| server.active_sessions() == 1, Duration::from_secs(5)),
        "session not registered"
    );

    let drainer = std::thread::spawn(move || {
        server.shutdown_graceful(Duration::from_secs(30));
    });
    // Give the drain a moment to stop the acceptor.
    std::thread::sleep(Duration::from_millis(200));

    // The in-flight upload still completes, byte-identical.
    ps.send_chunk(&doc[half..]).unwrap();
    let resp = ps.finish().unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    assert_eq!(resp.body, expected);

    drainer.join().unwrap();
    // Fully stopped: the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting after drain"
    );
}

#[test]
fn drain_closes_keep_alive_connections_at_a_response_boundary() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(50);
    let expected = reference_output(QUERY, &doc);

    let mut conn = client::HttpClient::connect(addr).unwrap();
    let first = conn.post(&query_path(QUERY), &doc).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.body, expected);

    let drainer = std::thread::spawn(move || {
        server.shutdown_graceful(Duration::from_secs(30));
    });
    std::thread::sleep(Duration::from_millis(100));

    // The parked keep-alive connection is either told to close at the
    // next response boundary (request raced in ahead of teardown) or
    // already closed by the drain — both are clean endings; what drain
    // must never do is leave the client hanging or cut a response short.
    // An Err means the idle connection was torn down first — also fine.
    if let Ok(resp) = conn.post(&query_path(QUERY), &doc) {
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, expected);
        assert_eq!(
            resp.header("connection").map(str::to_ascii_lowercase),
            Some("close".to_string()),
            "response during drain must announce the close"
        );
    }

    drainer.join().unwrap();
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn drain_deadline_hard_cancels_a_stuck_upload() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let doc = make_doc(100);

    // An upload that will never finish holds a connection open.
    let mut ps = client::PostStream::open(addr, &query_path(QUERY)).unwrap();
    ps.send_chunk(&doc[..doc.len() / 2]).unwrap();
    assert!(
        wait_for(|| server.active_sessions() == 1, Duration::from_secs(5)),
        "session not registered"
    );

    let start = Instant::now();
    server.shutdown_graceful(Duration::from_millis(300));
    let elapsed = start.elapsed();
    // The deadline degrades into the hard shutdown instead of waiting
    // on the stuck client forever.
    assert!(
        elapsed < Duration::from_secs(10),
        "drain with a stuck client took {elapsed:?}"
    );
    assert!(TcpStream::connect(addr).is_err());
    drop(ps);
}

/// Scheduler fairness: with only two evaluator threads, a storm of slow
/// clients — each trickling a megabyte-scale chunked upload and never
/// reading a byte of its response — must not starve a fast keep-alive
/// client. The ready-queue scheduler's step budget forces every session
/// to yield, so the fast client's small requests interleave with the
/// storm and complete with bounded latency.
#[test]
fn fast_client_latency_bounded_under_slow_client_storm() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const SLOW_CLIENTS: usize = 6;
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            evaluators: 2,
            // The fairness claim is about *evaluator* scheduling; don't
            // let the admission-side queue-wait shed muddy the signal.
            queue_wait_deadline: Duration::from_secs(10),
            keep_alive_timeout: Duration::from_secs(60),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let small = make_doc(50);
    let expected = reference_output(QUERY, &small);
    let stop = AtomicBool::new(false);

    let (total, worst) = std::thread::scope(|scope| {
        for _ in 0..SLOW_CLIENTS {
            let server = &server;
            let stop = &stop;
            scope.spawn(move || {
                // Hand-rolled chunked upload so a write timeout keeps the
                // thread responsive to `stop` even under backpressure.
                let big = make_doc(30_000);
                let mut s = open_chunked_post(server);
                s.set_write_timeout(Some(Duration::from_millis(50)))
                    .unwrap();
                'feed: for chunk in big.chunks(4096) {
                    let mut frame = format!("{:x}\r\n", chunk.len()).into_bytes();
                    frame.extend_from_slice(chunk);
                    frame.extend_from_slice(b"\r\n");
                    let mut rest: &[u8] = &frame;
                    while !rest.is_empty() {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        match s.write(rest) {
                            Ok(n) => rest = &rest[n..],
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                continue;
                            }
                            Err(_) => break 'feed,
                        }
                    }
                }
                // Fully uploaded (or reset); either way never send the
                // terminating chunk and never read: the session stays
                // parked until the test releases it.
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }

        let fast = scope.spawn(|| {
            // Let the storm establish before measuring.
            std::thread::sleep(Duration::from_millis(300));
            let mut conn = client::HttpClient::connect(addr).unwrap();
            let start = Instant::now();
            let mut worst = Duration::ZERO;
            for i in 0..5 {
                let t0 = Instant::now();
                let resp = conn.post(&query_path(QUERY), &small).unwrap();
                worst = worst.max(t0.elapsed());
                assert_eq!(resp.status, 200, "fast request {i}: {}", resp.text());
                assert_eq!(resp.body, expected, "fast request {i} corrupted");
            }
            (start.elapsed(), worst)
        });
        let measured = fast.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        measured
    });

    eprintln!("fast client under storm: total {total:?}, worst request {worst:?}");
    assert!(
        worst < Duration::from_secs(5),
        "fast request took {worst:?} behind {SLOW_CLIENTS} slow clients on 2 evaluators"
    );
    assert!(
        total < Duration::from_secs(10),
        "fast client needed {total:?} for 5 small requests"
    );
    server.shutdown();
}

/// The epoll readiness loop holds 1000 concurrent keep-alive
/// connections on two workers and two evaluators, and every response —
/// two rounds per connection, so reuse is proven — is byte-identical to
/// the in-process engine.
#[test]
fn thousand_keep_alive_connections_byte_identical_with_two_evaluators() {
    const CONNS: usize = 1000;
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            evaluators: 2,
            // Parked connections must survive the sequential sweep of
            // the other 999 on a single-core runner.
            keep_alive_timeout: Duration::from_secs(120),
            idle_timeout: Duration::from_secs(120),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(20);
    let expected = reference_output(QUERY, &doc);

    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        conns.push(
            client::HttpClient::connect(addr).unwrap_or_else(|e| panic!("connect {i} failed: {e}")),
        );
    }
    assert!(
        wait_for(
            || server.open_connections() >= CONNS,
            Duration::from_secs(10)
        ),
        "only {} of {CONNS} connections admitted",
        server.open_connections()
    );

    for round in 0..2 {
        for (i, conn) in conns.iter_mut().enumerate() {
            let resp = conn
                .post(&query_path(QUERY), &doc)
                .unwrap_or_else(|e| panic!("conn {i} round {round}: {e}"));
            assert_eq!(resp.status, 200, "conn {i} round {round}");
            assert_eq!(resp.body, expected, "conn {i} round {round} corrupted");
        }
    }

    // The readiness loop, not a poll, served all of it.
    assert!(
        server
            .counters()
            .epoll_wakeups
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "epoll wakeup counter never moved"
    );
    drop(conns);
    server.shutdown();
}

#[test]
fn stats_expose_resilience_counters() {
    let server = GcxServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
    let resp = client::get(server.local_addr(), "/stats").unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.text();
    for key in [
        "\"schema\": \"gcx-net-stats/5\"",
        "\"open_connections\"",
        "\"connections_shed\"",
        "\"accept_errors\"",
        "\"evaluator_panics\"",
    ] {
        assert!(text.contains(key), "missing {key} in stats: {text}");
    }
    server.shutdown();
}
