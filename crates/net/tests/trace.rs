//! End-to-end tests for request-scoped tracing: the `/trace` endpoint,
//! head-based sampling, retroactive slow-request keeps, and the
//! `tracing` section of `/stats` (schema `gcx-net-stats/5`).

mod support;
use support::validate_json;

use gcx_net::{client, http, GcxServer, NetConfig};
use std::time::Duration;

const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";

fn make_doc(books: usize) -> Vec<u8> {
    let mut doc = String::from("<bib>");
    for i in 0..books {
        doc.push_str(&format!("<book><title>Title {i}</title></book>"));
    }
    doc.push_str("</bib>");
    doc.into_bytes()
}

fn query_path(query: &str) -> String {
    format!("/query?xq={}", http::percent_encode(query))
}

/// With `trace_sample_every = 1` every query is kept, and a single
/// request leaves a Perfetto-loadable export holding engine-stage spans
/// and buffer events stamped with input byte offsets.
#[test]
fn trace_export_holds_stage_spans_and_buffer_events() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            trace_sample_every: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(400);
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());

    let trace = client::get(addr, "/trace").unwrap();
    assert_eq!(trace.status, 200);
    assert_eq!(
        trace.header("content-type").map(str::trim),
        Some("application/json")
    );
    let text = trace.text();
    validate_json(&text).unwrap_or_else(|e| panic!("/trace not JSON: {e}\n{text}"));
    assert!(text.contains("\"traceEvents\":["), "{text}");
    // Request lifecycle spans from gcx-net.
    assert!(text.contains("\"name\":\"request\""), "{text}");
    assert!(text.contains("\"name\":\"head-parse\""), "{text}");
    assert!(text.contains("\"name\":\"first-byte\""), "{text}");
    assert!(text.contains("\"name\":\"flush\""), "{text}");
    // At least one sampled engine-stage span made it into the ring.
    let stages = ["lex", "skip", "match", "buffer", "emit", "queue-wait"];
    assert!(
        stages
            .iter()
            .any(|s| text.contains(&format!("\"name\":\"{s}\""))),
        "no engine-stage span in: {text}"
    );
    // Buffer events are unsampled: every buffered node records one, with
    // the input-stream byte offset in args.
    assert!(text.contains("\"name\":\"node-buffered\""), "{text}");
    assert!(text.contains("\"offset\":"), "{text}");

    // /stats reports the capture under the additive `tracing` section.
    let stats = client::get(addr, "/stats").unwrap().text();
    validate_json(&stats).unwrap_or_else(|e| panic!("/stats not JSON: {e}\n{stats}"));
    assert!(stats.contains("\"schema\": \"gcx-net-stats/5\""), "{stats}");
    assert!(stats.contains("\"tracing\": {"), "{stats}");
    assert!(stats.contains("\"sample_every\": 1"), "{stats}");
    assert!(!stats.contains("\"traces_captured\": 0,"), "{stats}");
    server.shutdown();
}

/// The first query is always kept (sampling counts queries, not
/// requests), no matter how many non-query requests precede it.
#[test]
fn first_query_is_kept_despite_interleaved_requests() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            trace_sample_every: 1000,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    for _ in 0..3 {
        assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
        assert_eq!(client::get(addr, "/stats").unwrap().status, 200);
    }
    let doc = make_doc(50);
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    let text = client::get(addr, "/trace").unwrap().text();
    assert!(
        text.contains("\"name\":\"request\""),
        "first query not kept at sample_every=1000: {text}"
    );
    server.shutdown();
}

/// With sampling disabled entirely, a request over the slow threshold
/// is still kept retroactively and counted in `/stats`.
#[test]
fn slow_requests_are_kept_even_when_sampling_is_off() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            trace_sample_every: 0,
            slow_request_threshold: Some(Duration::ZERO),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(50);
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);

    // The keep decision lands right *after* the last response byte is on
    // the wire, so an immediate scrape (different connection, possibly a
    // different worker) can race it — poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let text = client::get(addr, "/trace").unwrap().text();
        validate_json(&text).unwrap_or_else(|e| panic!("/trace not JSON: {e}\n{text}"));
        if text.contains("[slow]") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slow trace not kept: {text}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = client::get(addr, "/stats").unwrap().text();
    assert!(stats.contains("\"sample_every\": 0"), "{stats}");
    assert!(!stats.contains("\"slow_requests\": 0,"), "{stats}");
    server.shutdown();
}

/// Sampling off + fast requests: traces are minted but never kept, so
/// the export stays an empty shell (metadata-free, still valid JSON).
#[test]
fn unsampled_fast_requests_leave_no_kept_traces() {
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            trace_sample_every: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(20);
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200);
    let text = client::get(addr, "/trace").unwrap().text();
    validate_json(&text).unwrap_or_else(|e| panic!("/trace not JSON: {e}\n{text}"));
    assert!(!text.contains("\"name\":\"request\""), "{text}");
    let stats = client::get(addr, "/stats").unwrap().text();
    assert!(stats.contains("\"traces_captured\": 0,"), "{stats}");
    server.shutdown();
}
