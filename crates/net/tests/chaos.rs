//! Seeded fault-injection e2e ("chaos") suite — only built with the
//! `chaos` cargo feature, which compiles the `gcx-faults` sites in.
//!
//! A storm of concurrent clients runs against a server whose socket
//! reads/writes, accepts, evaluator scheduling, budget admissions, and
//! evaluator bodies all fail at seeded rates; afterwards the suite
//! asserts the invariants that make the faults survivable: the session
//! registry drains, the `MemoryBudget` returns to exactly zero, `/stats`
//! stays schema-valid JSON throughout, and a fault-free request is
//! byte-identical to the in-process engine.
//!
//! The seed comes from `GCX_CHAOS_SEED` (decimal or `0x`-hex) so a CI
//! failure replays locally:
//!
//! ```text
//! GCX_CHAOS_SEED=12345 cargo test -p gcx-net --features chaos --test chaos
//! ```
#![cfg(feature = "chaos")]

mod support;
use support::validate_json;

use gcx_net::{client, http, GcxServer, NetConfig};
use gcx_service::{EvaluatorPool, MemoryBudget, ServiceConfig, SessionConfig, StreamSession};
use gcx_xml::TagInterner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The fault registry is process-global; tests that reconfigure it must
/// not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

const QUERY: &str = "<r>{ for $b in /bib/book return $b/title }</r>";
const DEFAULT_SEED: u64 = 0xC0FF_EE42;

fn chaos_seed() -> u64 {
    let seed = match std::env::var("GCX_CHAOS_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = v
                .strip_prefix("0x")
                .map_or_else(|| v.parse(), |h| u64::from_str_radix(h, 16));
            parsed.unwrap_or_else(|_| panic!("GCX_CHAOS_SEED not a u64: {v:?}"))
        }
        Err(_) => DEFAULT_SEED,
    };
    eprintln!("chaos seed: {seed} (replay: GCX_CHAOS_SEED={seed})");
    seed
}

fn reference_output(query: &str, doc: &[u8]) -> Vec<u8> {
    let mut tags = TagInterner::new();
    let compiled = gcx_query::compile_default(query, &mut tags).expect("compile");
    let mut out = Vec::new();
    gcx_core::run_gcx(&compiled, &mut tags, doc, &mut out).expect("run");
    out
}

fn make_doc(books: usize) -> Vec<u8> {
    let mut doc = String::from("<bib>");
    for i in 0..books {
        doc.push_str(&format!("<book><title>Title {i}</title></book>"));
    }
    doc.push_str("</bib>");
    doc.into_bytes()
}

fn query_path(query: &str) -> String {
    format!("/query?xq={}", http::percent_encode(query))
}

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn seeded_fault_storm_preserves_core_invariants() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let seed = chaos_seed();
    let server = GcxServer::bind(
        "127.0.0.1:0",
        NetConfig {
            workers: 3,
            // Honors the `GCX_EVALUATORS` CI hook (constrained-scheduler
            // legs run this storm with a single evaluator thread).
            evaluators: NetConfig::default().evaluators.min(4),
            idle_timeout: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(2),
            service: ServiceConfig {
                memory_budget: Some(4 << 20),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let doc = make_doc(80);
    let expected = reference_output(QUERY, &doc);

    // Every site the harness exposes, at once.
    gcx_faults::configure(
        seed,
        "net.read.err=0.03,net.read.short=0.2,net.read.eof=0.02,\
         net.write.err=0.03,net.write.short=0.2,net.accept.err=0.05,\
         pool.delay=0.2,budget.reject=0.03,eval.panic=0.08",
    )
    .expect("valid schedule");

    let ok_requests = AtomicU64::new(0);
    let stats_polls_ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // A poller asserting /stats and /trace never emit broken JSON
        // mid-storm (the flight recorder is being written concurrently
        // by every worker and evaluator while /trace reads it).
        let polls = &stats_polls_ok;
        scope.spawn(move || {
            for _ in 0..20 {
                if let Ok(resp) = client::get(addr, "/stats") {
                    if resp.status == 200 {
                        let text = resp.text();
                        validate_json(&text)
                            .unwrap_or_else(|e| panic!("mid-storm /stats not JSON: {e}\n{text}"));
                        polls.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if let Ok(resp) = client::get(addr, "/trace") {
                    if resp.status == 200 {
                        let text = resp.text();
                        validate_json(&text)
                            .unwrap_or_else(|e| panic!("mid-storm /trace not JSON: {e}\n{text}"));
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        for t in 0..4 {
            let doc = &doc;
            let expected = &expected;
            let ok_requests = &ok_requests;
            scope.spawn(move || {
                for i in 0..8 {
                    // Mix one-shot posts and chunked streaming uploads.
                    let result = if (t + i) % 2 == 0 {
                        client::post(addr, &query_path(QUERY), doc)
                    } else {
                        client::PostStream::open(addr, &query_path(QUERY)).and_then(|ps| {
                            ps.stream_and_finish(doc.chunks(512).map(<[u8]>::to_vec))
                        })
                    };
                    // Faults make failures legitimate; what they must
                    // never produce is a *wrong* success.
                    if let Ok(resp) = result {
                        if resp.status == 200 {
                            assert_eq!(
                                &resp.body, expected,
                                "status-200 response corrupted under faults (seed {seed})"
                            );
                            ok_requests.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let fired: u64 = [
        "net.read.err",
        "net.read.short",
        "net.read.eof",
        "net.write.err",
        "net.write.short",
        "net.accept.err",
        "pool.delay",
        "budget.reject",
        "eval.panic",
    ]
    .iter()
    .map(|s| gcx_faults::fired_count(s))
    .sum();
    eprintln!(
        "storm done: {} / 32 requests succeeded, {} clean stats polls, {fired} faults fired",
        ok_requests.load(Ordering::Relaxed),
        stats_polls_ok.load(Ordering::Relaxed),
    );
    assert!(fired > 0, "schedule never fired — harness inert?");

    // Recovery: stop injecting and require full convalescence.
    gcx_faults::clear();
    assert!(
        wait_for(|| server.active_sessions() == 0, Duration::from_secs(30)),
        "session registry did not drain after the storm (seed {seed})"
    );
    let budget = server.service().budget().expect("budget configured");
    assert!(
        wait_for(
            || budget.used() == 0 && budget.engine_used() == 0,
            Duration::from_secs(30)
        ),
        "budget leaked after the storm (seed {seed}): used={} engine_used={}",
        budget.used(),
        budget.engine_used()
    );

    // A fault-free request on the recovered server is byte-identical.
    let resp = client::post(addr, &query_path(QUERY), &doc).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    assert_eq!(
        resp.body, expected,
        "post-storm output differs (seed {seed})"
    );

    // And /stats reports the storm in valid schema-4 JSON.
    let stats = client::get(addr, "/stats").unwrap();
    assert_eq!(stats.status, 200);
    let text = stats.text();
    validate_json(&text).unwrap_or_else(|e| panic!("final /stats not JSON: {e}\n{text}"));
    assert!(text.contains("\"schema\": \"gcx-net-stats/5\""), "{text}");

    // Joining every thread here is itself an assertion: a hung worker
    // or evaluator would hang the test instead of passing it.
    server.shutdown();
}

#[test]
fn budget_restitution_after_every_failure_mode() {
    let _guard = FAULT_LOCK.lock().unwrap();
    gcx_faults::clear();
    let seed = chaos_seed();
    let budget = Arc::new(MemoryBudget::new(1 << 20));
    let pool = EvaluatorPool::new(2);
    let session = |budget: &Arc<MemoryBudget>| {
        let mut tags = TagInterner::new();
        let compiled = Arc::new(gcx_query::compile_default(QUERY, &mut tags).expect("compile"));
        StreamSession::new(
            compiled,
            tags,
            SessionConfig {
                budget: Some(budget.clone()),
                charge_engine_buffer: true,
                pool: Some(pool.clone()),
                ..Default::default()
            },
        )
    };
    let doc = make_doc(300);

    // 1. Cancelled mid-stream.
    let mut s = session(&budget);
    let _ = s.feed(&doc[..doc.len() / 2]);
    s.cancel();

    // 2. Output hard cap: a consumer that never drains. Echoing whole
    //    books makes the result far outgrow the 8 KiB cap floor.
    let mut tags = TagInterner::new();
    let echo = Arc::new(
        gcx_query::compile_default("<r>{ for $b in /bib/book return $b }</r>", &mut tags)
            .expect("compile"),
    );
    let mut s = StreamSession::new(
        echo,
        tags,
        SessionConfig {
            budget: Some(budget.clone()),
            charge_engine_buffer: true,
            pool: Some(pool.clone()),
            output_high_water: 8 * 1024,
            output_max_bytes: 8 * 1024,
            ..Default::default()
        },
    );
    let big = make_doc(4000);
    let _ = s.feed(&big);
    s.close_input();
    let deadline = Instant::now() + Duration::from_secs(20);
    let outcome = loop {
        if let Some(r) = s.take_outcome() {
            break r;
        }
        assert!(Instant::now() < deadline, "output cap never tripped");
        std::thread::sleep(Duration::from_millis(10));
    };
    let err = outcome.expect_err("never-draining session must fail");
    assert!(
        err.to_string().contains(gcx_service::OUTPUT_CAP_ERROR),
        "got: {err}"
    );
    drop(s);

    // 3. Injected budget rejection: every hard reservation refused.
    gcx_faults::configure(seed, "budget.reject=1").unwrap();
    let mut s = session(&budget);
    let err = s.feed(&doc).expect_err("injected budget rejection");
    assert!(
        err.to_string().to_ascii_lowercase().contains("budget"),
        "got: {err}"
    );
    s.cancel();
    gcx_faults::clear();

    // 4. Injected evaluator panic, caught and converted to an error.
    let panics_before = pool.panics();
    gcx_faults::configure(seed, "eval.panic=1").unwrap();
    let mut s = session(&budget);
    let _ = s.feed(&doc);
    let err = s
        .finish()
        .expect_err("injected panic must fail the session");
    assert!(err.to_string().contains("panicked"), "got: {err}");
    gcx_faults::clear();
    assert!(pool.panics() > panics_before, "panic not counted");

    // Restitution: after all four failure modes, nothing is still
    // charged against the shared budget.
    assert!(
        wait_for(
            || budget.used() == 0 && budget.engine_used() == 0,
            Duration::from_secs(10)
        ),
        "budget leaked (seed {seed}): used={} engine_used={}",
        budget.used(),
        budget.engine_used()
    );
}
