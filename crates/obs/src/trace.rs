//! Request-scoped tracing: a lock-free flight recorder.
//!
//! The histograms in [`crate::hist`] say *that* p99 is what it is; this
//! module says *why one request* was slow. Every layer records spans
//! (engine stages, emits) and instant events (buffer events stamped with
//! the input byte offset) tagged with a per-request 64-bit **trace ID**
//! into a [`FlightRecorder`] — fixed-size per-thread ring buffers of
//! atomic slots, written with a seqlock protocol:
//!
//! * recording is **allocation-free and lock-free** (one `fetch_add` to
//!   claim a ticket, seven relaxed stores, same discipline as
//!   [`crate::LatencyHistogram`]);
//! * the rings hold the *recent past* regardless of sampling, so a
//!   request discovered slow at its end can be kept **retroactively** —
//!   its spans are still in the rings;
//! * readers ([`FlightRecorder::export_chrome_json`]) validate each slot
//!   against its sequence number, so concurrent overwrites drop the
//!   oldest spans without ever tearing a record.
//!
//! Keeping a trace ([`FlightRecorder::keep`]) is the only non-lock-free
//! operation: it harvests the trace's records *out of the rings* into a
//! heap snapshot under a mutex, so a kept trace survives any amount of
//! later ring traffic (later requests overwrite ring slots, not
//! snapshots). It runs once per *sampled or slow* request — a few times
//! a second at most — never per span; a snapshot is bounded by the ring
//! capacity (2 × [`LANES`] × [`LANE_SLOTS`] records), and at most
//! [`KEPT_TRACES`] snapshots are retained (oldest dropped).
//!
//! The export format is Chrome trace-event JSON (the `traceEvents`
//! array), loadable in Perfetto / `chrome://tracing`: one *process* per
//! recording lane (the thread that wrote the span — a connection worker
//! or evaluator), one *track* (thread) per trace ID.

use crate::Counter;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring lanes. Each recording thread is pinned to one lane (round-robin
/// at first use); more threads than lanes share lanes safely.
pub const LANES: usize = 8;
/// Slots per lane. Spans and buffer events ring separately (buffer
/// events arrive per allocation — orders of magnitude denser than
/// sampled stage spans, and would otherwise evict them all), so a
/// recorder holds 2 × 8 × 512 slots ≈ 450 KiB.
pub const LANE_SLOTS: usize = 512;
/// Kept-trace table size: the `/trace` endpoint exports at most this
/// many recent traces (older keeps are overwritten).
pub const KEPT_TRACES: usize = 32;
/// Kept-trace label bytes (query name / preview), truncated beyond.
const LABEL_BYTES: usize = 48;

/// What a span or instant event describes. The discriminants are stable
/// (they live in atomic slots); names appear in the Chrome JSON export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum SpanKind {
    /// Whole request: head parsed → response flushed (gcx-net).
    Request = 1,
    /// Request head parsed (instant).
    HeadParse = 2,
    /// Session waited for an evaluator-pool thread.
    QueueWait = 3,
    /// First response byte on the wire (instant).
    FirstByte = 4,
    /// Response fully flushed (instant).
    Flush = 5,
    /// Engine stage: lexing one token.
    Lex = 6,
    /// Engine stage: raw-skipping a dead subtree.
    Skip = 7,
    /// Engine stage: projection matching.
    Match = 8,
    /// Engine stage: copying a node into the buffer.
    Buffer = 9,
    /// Engine stage: writing an output subtree.
    Emit = 10,
    /// Buffer event: a node was buffered (instant, arg = input offset).
    NodeBuffered = 11,
    /// Buffer event: a signOff removed role instances (instant).
    SignOff = 12,
    /// Buffer event: a subtree was garbage-collected (instant).
    SubtreeDelete = 13,
    /// Buffer event: bytes reserved against the memory budget (instant).
    BudgetReserve = 14,
    /// Buffer event: a budget reservation was refused (instant).
    BudgetReject = 15,
    /// Buffer event: the buffer's peak footprint crossed a new 64 KiB
    /// boundary (instant, arg2 = new peak bytes).
    HighWater = 16,
    /// Step machine: one `Engine::step` slice that ended in a voluntary
    /// yield (arg = pump events consumed this slice).
    Yield = 17,
}

impl SpanKind {
    /// The event name in the Chrome JSON export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::HeadParse => "head-parse",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::FirstByte => "first-byte",
            SpanKind::Flush => "flush",
            SpanKind::Lex => "lex",
            SpanKind::Skip => "skip",
            SpanKind::Match => "match",
            SpanKind::Buffer => "buffer",
            SpanKind::Emit => "emit",
            SpanKind::NodeBuffered => "node-buffered",
            SpanKind::SignOff => "sign-off",
            SpanKind::SubtreeDelete => "subtree-delete",
            SpanKind::BudgetReserve => "budget-reserve",
            SpanKind::BudgetReject => "budget-reject",
            SpanKind::HighWater => "high-water",
            SpanKind::Yield => "yield",
        }
    }

    /// Instant events (`ph: "i"`) vs duration spans (`ph: "X"`).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            SpanKind::HeadParse
                | SpanKind::FirstByte
                | SpanKind::Flush
                | SpanKind::NodeBuffered
                | SpanKind::SignOff
                | SpanKind::SubtreeDelete
                | SpanKind::BudgetReserve
                | SpanKind::BudgetReject
                | SpanKind::HighWater
        )
    }

    /// Buffer events carry an input byte offset in `arg`.
    pub fn is_buffer_event(self) -> bool {
        matches!(
            self,
            SpanKind::NodeBuffered
                | SpanKind::SignOff
                | SpanKind::SubtreeDelete
                | SpanKind::BudgetReserve
                | SpanKind::BudgetReject
                | SpanKind::HighWater
        )
    }

    fn from_u64(v: u64) -> Option<SpanKind> {
        Some(match v {
            1 => SpanKind::Request,
            2 => SpanKind::HeadParse,
            3 => SpanKind::QueueWait,
            4 => SpanKind::FirstByte,
            5 => SpanKind::Flush,
            6 => SpanKind::Lex,
            7 => SpanKind::Skip,
            8 => SpanKind::Match,
            9 => SpanKind::Buffer,
            10 => SpanKind::Emit,
            11 => SpanKind::NodeBuffered,
            12 => SpanKind::SignOff,
            13 => SpanKind::SubtreeDelete,
            14 => SpanKind::BudgetReserve,
            15 => SpanKind::BudgetReject,
            16 => SpanKind::HighWater,
            17 => SpanKind::Yield,
            _ => return None,
        })
    }

    /// The duration-span kinds summarized by
    /// [`FlightRecorder::stage_totals`] (slow-request log breakdown).
    pub const STAGES: [SpanKind; 7] = [
        SpanKind::QueueWait,
        SpanKind::Lex,
        SpanKind::Skip,
        SpanKind::Match,
        SpanKind::Buffer,
        SpanKind::Emit,
        SpanKind::Request,
    ];
}

/// One recorded span, as read back out of a ring slot.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub kind: SpanKind,
    /// Nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// Span duration (0 for instants).
    pub dur_ns: u64,
    /// Kind-specific: input byte offset for engine stages and buffer
    /// events.
    pub arg: u64,
    /// Kind-specific second value (bytes reserved, new peak, node id…).
    pub arg2: u64,
}

/// One ring slot: a seqlock-guarded record. Writers claim a ticket from
/// the lane head, invalidate the slot (`seq = 0`), store the fields with
/// relaxed ordering, then publish `ticket + 1` with release ordering.
/// Readers load `seq` (acquire), read the fields, fence, and re-check
/// `seq` — a concurrent overwrite changes the (unique) sequence number,
/// so a torn read can never validate.
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    kind: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    arg: AtomicU64,
    arg2: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            arg2: AtomicU64::new(0),
        }
    }

    /// Seqlock-validated read; `None` for empty or mid-write slots.
    fn read(&self) -> Option<SpanRecord> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 {
            return None;
        }
        let rec = SpanRecord {
            trace_id: self.trace_id.load(Ordering::Relaxed),
            kind: SpanKind::from_u64(self.kind.load(Ordering::Relaxed))?,
            ts_ns: self.ts_ns.load(Ordering::Relaxed),
            dur_ns: self.dur_ns.load(Ordering::Relaxed),
            arg: self.arg.load(Ordering::Relaxed),
            arg2: self.arg2.load(Ordering::Relaxed),
        };
        fence(Ordering::Acquire);
        (self.seq.load(Ordering::Relaxed) == s1).then_some(rec)
    }
}

/// One per-thread ring: a ticket counter and a fixed slot array. The
/// ticket is the total number of writes ever made to the lane; slot
/// `ticket % LANE_SLOTS` is overwritten (oldest first).
struct Lane {
    head: AtomicU64,
    slots: [Slot; LANE_SLOTS],
}

impl Lane {
    const fn new() -> Self {
        Lane {
            head: AtomicU64::new(0),
            slots: [const { Slot::new() }; LANE_SLOTS],
        }
    }
}

/// One kept (exported) trace: identity plus the records harvested from
/// the rings at keep time, each tagged with the lane (= export pid) it
/// was recorded on. Lives under the kept-table mutex, off the hot path.
struct KeptTrace {
    trace_id: u64,
    dur_ns: u64,
    slow: bool,
    label: String,
    records: Vec<(u8, SpanRecord)>,
}

/// The flight recorder. One instance per server (shared via `Arc`); see
/// the module docs for the protocol. `const`-constructible like every
/// other gcx-obs primitive.
pub struct FlightRecorder {
    lanes: [Lane; LANES],
    /// Buffer events ring apart from spans: one query can buffer tens
    /// of thousands of nodes between two sampled stage spans, and a
    /// shared ring would keep only the flood.
    buffer_lanes: [Lane; LANES],
    /// Snapshots of kept traces, newest last; capped at [`KEPT_TRACES`].
    kept: Mutex<Vec<KeptTrace>>,
    /// Traces kept (sampled or slow) — exported by `/trace`.
    pub traces_captured: Counter,
    /// Ring-slot overwrites: spans of the *oldest* writes dropped to
    /// make room. Nonzero is normal under load; the rings are sized for
    /// the recent past, not the whole history.
    pub spans_dropped: Counter,
    /// Requests kept because they exceeded the slow threshold.
    pub slow_requests: Counter,
    /// Timestamp zero, fixed at first use.
    epoch: OnceLock<Instant>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Round-robin lane assignment, fixed per thread at first use. The
/// counter is global so lanes spread across recorders too; a lane shared
/// by two threads (more threads than lanes) is still safe — tickets are
/// claimed with `fetch_add`.
fn lane_index() -> usize {
    use std::cell::Cell;
    static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static LANE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    LANE.with(|l| {
        let mut v = l.get();
        if v == usize::MAX {
            v = NEXT_LANE.fetch_add(1, Ordering::Relaxed) % LANES;
            l.set(v);
        }
        v
    })
}

impl FlightRecorder {
    /// An empty recorder (usable in `static`s or fresh `Arc`s).
    pub const fn new() -> Self {
        FlightRecorder {
            lanes: [const { Lane::new() }; LANES],
            buffer_lanes: [const { Lane::new() }; LANES],
            kept: Mutex::new(Vec::new()),
            traces_captured: Counter::new(),
            spans_dropped: Counter::new(),
            slow_requests: Counter::new(),
            epoch: OnceLock::new(),
        }
    }

    /// Nanoseconds since this recorder's epoch (first call fixes zero).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Records a duration span. Allocation-free, lock-free; a zero
    /// `trace_id` (no trace minted) is a no-op.
    #[inline]
    pub fn record_span(&self, trace_id: u64, kind: SpanKind, ts_ns: u64, dur_ns: u64, arg: u64) {
        self.record_raw(trace_id, kind, ts_ns, dur_ns, arg, 0);
    }

    /// Records an instant event at "now". `arg` is the input byte offset
    /// for buffer events; `arg2` is kind-specific (bytes, node id…).
    #[inline]
    pub fn record_instant(&self, trace_id: u64, kind: SpanKind, arg: u64, arg2: u64) {
        self.record_raw(trace_id, kind, self.now_ns(), 0, arg, arg2);
    }

    fn record_raw(
        &self,
        trace_id: u64,
        kind: SpanKind,
        ts_ns: u64,
        dur_ns: u64,
        arg: u64,
        arg2: u64,
    ) {
        if trace_id == 0 {
            return;
        }
        let lanes = if kind.is_buffer_event() {
            &self.buffer_lanes
        } else {
            &self.lanes
        };
        let lane = &lanes[lane_index()];
        let ticket = lane.head.fetch_add(1, Ordering::Relaxed);
        if ticket >= LANE_SLOTS as u64 {
            // The ring wrapped: this write evicts the lane's oldest span.
            self.spans_dropped.inc();
        }
        let slot = &lane.slots[(ticket % LANE_SLOTS as u64) as usize];
        // Invalidate, fill, publish (seqlock; see Slot docs). The ticket
        // is unique per lane, so two writers colliding on a wrapped slot
        // publish distinct sequence numbers and readers reject the race.
        slot.seq.store(0, Ordering::Release);
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.arg2.store(arg2, Ordering::Relaxed);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Marks `trace_id` as kept: its records are harvested out of the
    /// rings into a snapshot that the `/trace` export serves, immune to
    /// later ring traffic. Called once per sampled-or-slow request (the
    /// retroactive half of head-based sampling: the rings still hold
    /// the recent past, whatever the sampling decision was). Takes the
    /// kept-table mutex and allocates — diagnostics path, not the span
    /// hot path.
    pub fn keep(&self, trace_id: u64, label: &str, dur_ns: u64, slow: bool) {
        if trace_id == 0 {
            return;
        }
        let mut records = Vec::new();
        self.for_each_span_lane(|lane, rec| {
            if rec.trace_id == trace_id {
                records.push((lane as u8, *rec));
            }
        });
        let entry = KeptTrace {
            trace_id,
            dur_ns,
            slow,
            label: label[..floor_char_boundary(label, LABEL_BYTES)].to_string(),
            records,
        };
        let mut kept = self.kept.lock().unwrap_or_else(|p| p.into_inner());
        if kept.len() >= KEPT_TRACES {
            kept.remove(0);
        }
        kept.push(entry);
        drop(kept);
        self.traces_captured.inc();
        if slow {
            self.slow_requests.inc();
        }
    }

    /// Total recorded duration per stage kind for one trace (slow-request
    /// log breakdown): `(kind, total_ns)` in [`SpanKind::STAGES`] order.
    /// Scans every ring slot — diagnostics-path cost, not hot-path.
    pub fn stage_totals(&self, trace_id: u64) -> [(SpanKind, u64); SpanKind::STAGES.len()] {
        let mut totals = SpanKind::STAGES.map(|k| (k, 0u64));
        self.for_each_span(|rec| {
            if rec.trace_id == trace_id {
                if let Some(t) = totals.iter_mut().find(|(k, _)| *k == rec.kind) {
                    t.1 += rec.dur_ns;
                }
            }
        });
        totals
    }

    /// Calls `f` for every validly readable slot in every lane (span
    /// and buffer-event rings both).
    fn for_each_span(&self, mut f: impl FnMut(&SpanRecord)) {
        self.for_each_span_lane(|_, rec| f(rec));
    }

    /// Like [`Self::for_each_span`], also passing the lane index (the
    /// buffer-event ring for lane `i` reports index `i` too — one
    /// export process per recording thread, whichever ring the record
    /// landed in).
    fn for_each_span_lane(&self, mut f: impl FnMut(usize, &SpanRecord)) {
        for (idx, lane) in self
            .lanes
            .iter()
            .enumerate()
            .chain(self.buffer_lanes.iter().enumerate())
        {
            for slot in &lane.slots {
                if let Some(rec) = slot.read() {
                    f(idx, &rec);
                }
            }
        }
    }

    /// Exports the kept-trace snapshots as Chrome trace-event JSON
    /// (Perfetto / `chrome://tracing`): `{"traceEvents": [...]}` with
    /// one process per recording lane and one thread (track) per trace
    /// ID. Reads only snapshots under the kept-table mutex — the rings
    /// themselves are never scanned here, so a kept trace exports
    /// identically no matter how much has been recorded since.
    pub fn export_chrome_json(&self) -> String {
        let kept = self.kept.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
        };
        // Metadata: process names (lanes) and thread names (kept traces).
        for lane in 0..LANES {
            sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{lane},\"tid\":0,\
                 \"args\":{{\"name\":\"gcx-lane-{lane}\"}}}}"
            ));
        }
        for entry in kept.iter() {
            let slow = if entry.slow { " [slow]" } else { "" };
            let ms = entry.dur_ns as f64 / 1e6;
            for lane in 0..LANES {
                sep(&mut out, &mut first);
                out.push_str(&format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{lane},\"tid\":{},\
                     \"args\":{{\"name\":\"trace-{} ",
                    entry.trace_id, entry.trace_id
                ));
                esc_into(&mut out, &entry.label);
                out.push_str(&format!("{slow} ({ms:.1} ms)\"}}}}"));
            }
        }
        // Spans and instants from each snapshot; pid = recording lane.
        for entry in kept.iter() {
            for &(lane_idx, ref rec) in &entry.records {
                sep(&mut out, &mut first);
                let ts_us = rec.ts_ns / 1000;
                let ts_frac = rec.ts_ns % 1000;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"gcx\",\"pid\":{lane_idx},\"tid\":{},\
                     \"ts\":{ts_us}.{ts_frac:03}",
                    rec.kind.name(),
                    rec.trace_id
                ));
                if rec.kind.is_instant() {
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                } else {
                    let dur_us = rec.dur_ns / 1000;
                    let dur_frac = rec.dur_ns % 1000;
                    out.push_str(&format!(",\"ph\":\"X\",\"dur\":{dur_us}.{dur_frac:03}"));
                }
                if rec.kind.is_buffer_event() {
                    out.push_str(&format!(
                        ",\"args\":{{\"offset\":{},\"value\":{}}}",
                        rec.arg, rec.arg2
                    ));
                } else {
                    out.push_str(&format!(",\"args\":{{\"offset\":{}}}", rec.arg));
                }
                out.push('}');
            }
        }
        out.push_str("]}");
        out
    }
}

/// Largest `n ≤ max` such that `s[..n]` is a char boundary (stable-Rust
/// stand-in for `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, max: usize) -> usize {
    let mut n = s.len().min(max);
    while n > 0 && !s.is_char_boundary(n) {
        n -= 1;
    }
    n
}

/// Minimal JSON string escaping (labels only; gcx-net has its own).
fn esc_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_round_trip_through_export() {
        let rec = FlightRecorder::new();
        let t0 = rec.now_ns();
        rec.record_span(7, SpanKind::Lex, t0, 1_500, 42);
        rec.record_instant(7, SpanKind::NodeBuffered, 42, 9);
        rec.keep(7, "q1", 2_000, false);
        let json = rec.export_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""), "{json}");
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"name\":\"lex\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"node-buffered\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"offset\":42"), "{json}");
        assert!(json.contains("\"tid\":7"), "{json}");
        assert!(json.contains("trace-7 q1"), "{json}");
        assert_eq!(rec.traces_captured.get(), 1);
    }

    #[test]
    fn unkept_traces_are_invisible() {
        let rec = FlightRecorder::new();
        rec.record_span(3, SpanKind::Match, 0, 10, 0);
        let json = rec.export_chrome_json();
        assert!(!json.contains("\"name\":\"match\""), "{json}");
    }

    #[test]
    fn zero_trace_id_is_a_noop() {
        let rec = FlightRecorder::new();
        rec.record_span(0, SpanKind::Lex, 0, 1, 0);
        rec.keep(0, "nope", 0, true);
        assert_eq!(rec.traces_captured.get(), 0);
        let mut any = false;
        rec.for_each_span(|_| any = true);
        assert!(!any);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let rec = FlightRecorder::new();
        // All writes from this one thread land in one lane; overflow it.
        let writes = (LANE_SLOTS as u64) * 3;
        for i in 0..writes {
            rec.record_span(1, SpanKind::Lex, i, 1, i);
        }
        assert_eq!(rec.spans_dropped.get(), writes - LANE_SLOTS as u64);
        // The surviving spans are exactly the newest LANE_SLOTS writes.
        let mut seen = Vec::new();
        rec.for_each_span(|r| seen.push(r.ts_ns));
        seen.sort_unstable();
        assert_eq!(seen.len(), LANE_SLOTS);
        assert_eq!(seen[0], writes - LANE_SLOTS as u64);
        assert_eq!(*seen.last().unwrap(), writes - 1);
    }

    /// Satellite: concurrent writers wrapping the rings never produce a
    /// torn record. Writers encode an invariant across the slot fields
    /// (arg == ts * 3, arg2 == ts ^ mask, dur == trace_id); readers scan
    /// continuously and every validated read must satisfy it.
    #[test]
    fn concurrent_overflow_never_tears() {
        let rec = Arc::new(FlightRecorder::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = rec.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let trace_id = w as u64 + 1;
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        rec.record_raw(
                            trace_id,
                            SpanKind::Buffer,
                            i,
                            trace_id,
                            i.wrapping_mul(3),
                            i ^ 0xdead_beef,
                        );
                        i += 1;
                    }
                })
            })
            .collect();
        let mut validated = 0u64;
        let t0 = Instant::now();
        while t0.elapsed() < std::time::Duration::from_millis(200) {
            rec.for_each_span(|r| {
                validated += 1;
                assert_eq!(r.arg, r.ts_ns.wrapping_mul(3), "torn arg");
                assert_eq!(r.arg2, r.ts_ns ^ 0xdead_beef, "torn arg2");
                assert_eq!(r.dur_ns, r.trace_id, "torn dur/trace pairing");
            });
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert!(validated > 0, "reader validated at least some slots");
        assert!(rec.spans_dropped.get() > 0, "rings wrapped during the run");
    }

    #[test]
    fn kept_table_wraps_to_recent() {
        let rec = FlightRecorder::new();
        rec.record_span(1, SpanKind::Lex, 0, 1, 0);
        rec.record_span(KEPT_TRACES as u64 + 5, SpanKind::Lex, 0, 1, 0);
        for id in 1..=(KEPT_TRACES as u64 + 5) {
            rec.keep(id, "x", 0, false);
        }
        let json = rec.export_chrome_json();
        // Trace 1 was evicted from the kept table; the newest survives
        // with its harvested span.
        assert!(!json.contains("\"tid\":1,"), "{json}");
        // The newest trace's harvested span is an event row (has "ts",
        // unlike the thread_name metadata). Lane pid varies per thread.
        assert!(
            json.contains(&format!(",\"tid\":{},\"ts\":", KEPT_TRACES + 5)),
            "{json}"
        );
        assert_eq!(rec.traces_captured.get(), KEPT_TRACES as u64 + 5);
    }

    /// The property that makes kept traces useful on a busy server:
    /// once kept, a trace's snapshot is immune to any amount of later
    /// ring traffic from other requests.
    #[test]
    fn kept_snapshots_survive_ring_overwrite() {
        let rec = FlightRecorder::new();
        rec.record_span(1, SpanKind::Lex, 10, 5, 77);
        rec.record_instant(1, SpanKind::NodeBuffered, 77, 1);
        rec.keep(1, "victim", 0, false);
        // Flood both rings far past capacity under another trace ID.
        for i in 0..(LANE_SLOTS as u64 * 3) {
            rec.record_span(2, SpanKind::Match, i, 1, i);
            rec.record_instant(2, SpanKind::SignOff, i, 1);
        }
        let json = rec.export_chrome_json();
        assert!(json.contains("\"name\":\"lex\""), "{json}");
        assert!(json.contains("\"offset\":77"), "{json}");
        // Trace 2 was never kept: its flood exports nothing.
        assert!(!json.contains("\"name\":\"match\""), "{json}");
    }

    #[test]
    fn stage_totals_sum_per_kind() {
        let rec = FlightRecorder::new();
        rec.record_span(9, SpanKind::Lex, 0, 100, 0);
        rec.record_span(9, SpanKind::Lex, 0, 50, 0);
        rec.record_span(9, SpanKind::Emit, 0, 25, 0);
        rec.record_span(8, SpanKind::Lex, 0, 999, 0); // other trace
        let totals = rec.stage_totals(9);
        let get = |k: SpanKind| totals.iter().find(|(x, _)| *x == k).unwrap().1;
        assert_eq!(get(SpanKind::Lex), 150);
        assert_eq!(get(SpanKind::Emit), 25);
        assert_eq!(get(SpanKind::Match), 0);
    }

    #[test]
    fn labels_truncate_on_char_boundaries() {
        let rec = FlightRecorder::new();
        let long = "é".repeat(LABEL_BYTES); // 2 bytes per char
        rec.record_span(5, SpanKind::Lex, 0, 1, 0);
        rec.keep(5, &long, 0, false);
        let json = rec.export_chrome_json();
        assert!(json.contains("trace-5 "), "{json}");
    }
}
