//! Leveled structured logging to stderr, configured via `GCX_LOG`.
//!
//! ```text
//! GCX_LOG=info                       # global level
//! GCX_LOG=warn,gcx_core=debug        # per-target override (prefix match)
//! GCX_LOG=off                        # silence everything
//! ```
//!
//! Targets are module-path-like strings (`gcx_net::server`); an override
//! applies to the most specific (longest) matching prefix. The default
//! level is `warn`. Setting the legacy `GCX_DEBUG` variable (the engine's
//! old ad-hoc probe) without `GCX_LOG` is honored as `GCX_LOG=debug`.
//!
//! Each record is one line, written atomically to stderr:
//!
//! ```text
//! 2026-08-08T12:34:56.789Z  WARN gcx_net::server: session 17 failed: …
//! ```
//!
//! Use the [`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info) and [`log_debug!`](crate::log_debug)
//! macros; they evaluate their format arguments only when the
//! target/level combination is enabled. Hot paths that cannot afford
//! even the filter lookup should hoist [`enabled`] into a `bool` once
//! (the engine does this for its per-binding debug trace).

use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and could not be handled locally.
    Error = 0,
    /// Something unexpected that the server survived (default threshold).
    Warn = 1,
    /// Lifecycle events (bind, shutdown, config).
    Info = 2,
    /// Per-request / per-binding tracing.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" | "trace" => Some(Some(Level::Debug)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

/// Parsed `GCX_LOG` configuration. `None` filters mean "off".
struct Config {
    default: Option<Level>,
    /// `(target prefix, level)` overrides; most specific prefix wins.
    targets: Vec<(String, Option<Level>)>,
}

impl Config {
    fn from_spec(spec: &str) -> Config {
        let mut cfg = Config {
            default: Some(Level::Warn),
            targets: Vec::new(),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(f) = Level::parse(level) {
                        cfg.targets.push((target.trim().to_string(), f));
                    }
                }
                None => {
                    if let Some(f) = Level::parse(part) {
                        cfg.default = f;
                    }
                }
            }
        }
        // Longest prefix first so lookup can take the first match.
        cfg.targets
            .sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
        cfg
    }

    fn level_for(&self, target: &str) -> Option<Level> {
        for (prefix, filter) in &self.targets {
            if target.starts_with(prefix.as_str()) {
                return *filter;
            }
        }
        self.default
    }
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| match std::env::var("GCX_LOG") {
        Ok(spec) => Config::from_spec(&spec),
        // Legacy escape hatch: GCX_DEBUG used to turn on the engine's
        // ad-hoc eprintln! tracing.
        Err(_) if std::env::var_os("GCX_DEBUG").is_some() => Config::from_spec("debug"),
        Err(_) => Config::from_spec(""),
    })
}

/// True when a record at `level` for `target` would be written. Cheap
/// (a prefix scan over the parsed config), but hot paths should hoist
/// the result.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    matches!(config().level_for(target), Some(max) if level <= max)
}

/// Formats and writes one record. Called by the macros after an
/// [`enabled`] check; the line is assembled first and written with a
/// single syscall so concurrent writers cannot interleave mid-line.
pub fn write_record(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    format_utc(&mut line, now.as_secs(), now.subsec_millis());
    let _ = writeln!(line, " {:5} {target}: {args}", level.as_str());
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// Appends `YYYY-MM-DDThh:mm:ss.mmmZ` for a Unix timestamp (proleptic
/// Gregorian; days-to-civil after Howard Hinnant's algorithm).
fn format_utc(out: &mut String, secs: u64, millis: u32) {
    use std::fmt::Write as _;
    let days = secs / 86_400;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3_600, (rem % 3_600) / 60, rem % 60);
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    let _ = write!(
        out,
        "{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z"
    );
}

/// Logs at [`Level::Error`]: `log_error!("gcx_net::server", "bind failed: {e}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Error, $target) {
            $crate::log::write_record($crate::log::Level::Error, $target, ::core::format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Warn, $target) {
            $crate::log::write_record($crate::log::Level::Warn, $target, ::core::format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Info, $target) {
            $crate::log::write_record($crate::log::Level::Info, $target, ::core::format_args!($($arg)+));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Debug, $target) {
            $crate::log::write_record($crate::log::Level::Debug, $target, ::core::format_args!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_prefix_matching() {
        let cfg = Config::from_spec("warn,gcx_core=debug,gcx_core::engine=error,gcx_net=off");
        assert_eq!(cfg.level_for("gcx_service"), Some(Level::Warn));
        assert_eq!(cfg.level_for("gcx_core::preproject"), Some(Level::Debug));
        assert_eq!(
            cfg.level_for("gcx_core::engine"),
            Some(Level::Error),
            "longest prefix wins"
        );
        assert_eq!(cfg.level_for("gcx_net::server"), None);
    }

    #[test]
    fn default_is_warn_and_junk_is_ignored() {
        let cfg = Config::from_spec("");
        assert_eq!(cfg.level_for("anything"), Some(Level::Warn));
        let cfg = Config::from_spec("bogus,alsobad=nope");
        assert_eq!(cfg.level_for("anything"), Some(Level::Warn));
        let cfg = Config::from_spec("off");
        assert_eq!(cfg.level_for("anything"), None);
    }

    #[test]
    fn level_ordering_gates_correctly() {
        let cfg = Config::from_spec("info");
        let max = cfg.level_for("t").unwrap();
        assert!(Level::Error <= max && Level::Warn <= max && Level::Info <= max);
        assert!(Level::Debug > max, "debug filtered at info");
    }

    #[test]
    fn utc_formatting_known_instants() {
        let mut s = String::new();
        format_utc(&mut s, 0, 0);
        assert_eq!(s, "1970-01-01T00:00:00.000Z");
        s.clear();
        // 2026-08-08T00:00:00Z
        format_utc(&mut s, 1_786_147_200, 123);
        assert_eq!(s, "2026-08-08T00:00:00.123Z");
        s.clear();
        // Leap-year day: 2024-02-29T23:59:59Z
        format_utc(&mut s, 1_709_251_199, 999);
        assert_eq!(s, "2024-02-29T23:59:59.999Z");
    }
}
