//! Fixed-bucket log₂ latency histograms.
//!
//! Bucket `i` counts values `v` (nanoseconds) with `floor(log2(v)) == i`
//! (value 0 lands in bucket 0), so the bucket index is one `leading_zeros`
//! instruction and recording is wait-free: three relaxed atomic RMWs into
//! a fixed array — no allocation, no locks, no resizing. 48 buckets cover
//! 1 ns to ~39 hours; anything above clamps into the last bucket.
//!
//! Quantiles are extracted from a [`HistogramSnapshot`]: the reported
//! value is the *inclusive upper bound* of the bucket containing the
//! requested rank (clamped to the observed maximum), i.e. a conservative
//! estimate with factor-2 resolution — plenty for p50/p90/p99 dashboards
//! and SLO gates, at a fraction of the cost of exact reservoirs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets (2⁰ … 2⁴⁷ ns ≈ 39 h).
pub const BUCKETS: usize = 48;

/// A lock-free, allocation-free latency histogram. See module docs.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A zeroed histogram (usable in `static`s).
    pub const fn new() -> Self {
        // A const block, not a named const: each array element gets its
        // own AtomicU64 (clippy: declare_interior_mutable_const).
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one duration. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one value in nanoseconds. Wait-free; callable from any
    /// thread.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded values (sum over the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy for quantile extraction and rendering.
    /// Individual loads are relaxed: concurrent recording may make
    /// `sum_nanos` drift a record or two from the bucket counts, which is
    /// harmless for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
            count += *out;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Bucket index for a value in nanoseconds: `floor(log2(v))`, clamped.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        (63 - nanos.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, in nanoseconds (the last bucket
/// is unbounded).
pub fn bucket_upper_nanos(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A consistent-enough copy of a histogram; see
/// [`LatencyHistogram::snapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts.
    pub buckets: [u64; BUCKETS],
    /// Total recorded values (sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values, nanoseconds.
    pub sum_nanos: u64,
    /// Largest recorded value, nanoseconds.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (0.0–1.0), nanoseconds: the upper bound
    /// of the bucket containing rank `ceil(q·count)`, clamped to the
    /// observed max. 0 when nothing was recorded.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_nanos(i).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Median, nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile_nanos(0.50)
    }

    /// 90th percentile, nanoseconds.
    pub fn p90(&self) -> u64 {
        self.quantile_nanos(0.90)
    }

    /// 99th percentile, nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile_nanos(0.99)
    }

    /// Arithmetic mean, nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 0..BUCKETS - 1 {
            let lo = 1u64 << i;
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo * 2 - 1), i, "upper bound of bucket {i}");
        }
        // Everything past the last boundary clamps.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_nanos(BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_upper_nanos(0), 1);
        assert_eq!(bucket_upper_nanos(3), 15);
    }

    #[test]
    fn quantiles_on_deterministic_values() {
        let h = LatencyHistogram::new();
        // 100 values: 1..=100 µs. p50 falls in the bucket of 50 µs
        // (bucket of 2^15..2^16-1 ns), p99 in the bucket of 99 µs.
        for us in 1..=100u64 {
            h.record_nanos(us * 1_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_nanos, 5_050_000);
        assert_eq!(s.max_nanos, 100_000);
        let p50 = s.p50();
        assert!(
            (50_000..=65_535).contains(&p50),
            "p50 {p50} must bracket the true median within its bucket"
        );
        let p99 = s.p99();
        assert!(
            (99_000..=100_000).contains(&p99),
            "p99 {p99} clamps to the observed max"
        );
        assert_eq!(s.quantile_nanos(1.0), 100_000, "p100 is the max");
        assert_eq!(s.mean_nanos(), 50_500);
    }

    #[test]
    fn quantiles_single_value_and_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().p99(), 0, "empty histogram reports 0");
        h.record_nanos(7_777);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50(), 7_777, "single value: every quantile is it");
        assert_eq!(s.p99(), 7_777);
        assert_eq!(s.max_nanos, 7_777);
    }

    #[test]
    fn concurrent_recording_keeps_invariants() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_nanos(t * 10_000 + i + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000, "no record lost");
        // Σ over threads of Σ_{i=1..10000} (t·10000 + i)
        let expected_sum: u64 = (0..8u64)
            .map(|t| (1..=10_000u64).map(|i| t * 10_000 + i).sum::<u64>())
            .sum();
        assert_eq!(s.sum_nanos, expected_sum);
        assert_eq!(s.max_nanos, 80_000);
        assert!(
            s.p50() >= 32_768,
            "median of 1..80000 sits in a high bucket"
        );
    }
}
