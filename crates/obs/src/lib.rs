//! # gcx-obs — allocation-free observability primitives
//!
//! Dependency-free building blocks for metrics and logging, shared by
//! every gcx layer (the workspace is offline: no prometheus/tracing
//! crates, and the engine hot path cannot afford them anyway):
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomic scalars.
//! * [`LatencyHistogram`] — a fixed array of log₂ buckets. Recording a
//!   duration is two-three relaxed atomic RMWs and **never allocates or
//!   locks**, so it is safe to call from the engine's per-event path,
//!   from evaluator threads and from connection workers concurrently.
//!   [`HistogramSnapshot`] extracts p50/p90/p99/max for `/stats`,
//!   `/metrics` and bench reports.
//! * [`log`] — a leveled structured logger configured once from
//!   `GCX_LOG` (`error|warn|info|debug`, with `target=level` overrides),
//!   writing complete lines to stderr. See the [`log_error!`],
//!   [`log_warn!`], [`log_info!`] and [`log_debug!`] macros.
//! * [`trace`] — a request-scoped [`FlightRecorder`]: lock-free span
//!   recording into fixed per-thread ring buffers, keyed by a 64-bit
//!   trace ID, exported as Chrome trace-event JSON for Perfetto.
//!
//! All types are `const`-constructible so they can live in `static`s or
//! inside `Arc`s shared across threads without initialization order
//! concerns.

pub mod hist;
pub mod log;
pub mod trace;

pub use hist::{HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use log::Level;
pub use trace::{FlightRecorder, SpanKind};

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static`s).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (pool occupancy, queue depth). Unlike
/// [`Counter`] it can move both ways; readers see the last value set.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (usable in `static`s).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating in practice: callers pair add/sub).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(4);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn counter_concurrent_sum() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
