//! Oracle tests for the stream matcher: compare the matcher's verdicts
//! against a naive, declarative enumeration of projection-path matches
//! over a DOM (the paper's definition of role assignment: "the
//! multiplicity of the projection tree node is the number of possible
//! path step assignments that lead to matches", §2).
//!
//! Random projection trees × random documents, checked per token:
//!
//! 1. the role multiset assigned by the matcher equals the naive one;
//! 2. every node with matches is buffered (preservation condition 1);
//! 3. nodes the matcher skips carry no roles.

use gcx_projection::{PAxis, PStep, PTest, Pred, ProjNodeId, ProjTree, Role, StreamMatcher};
use gcx_xml::{Document, NodeId, NodeKind, TagInterner, XmlLexer, XmlToken};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

// ----------------------------------------------------------------------
// Naive declarative semantics
// ----------------------------------------------------------------------

fn ptest_matches_dom(doc: &Document, n: NodeId, test: PTest) -> bool {
    match test {
        PTest::Tag(t) => doc.tag(n) == Some(t),
        PTest::Star => doc.tag(n).is_some(),
        PTest::Text => doc.is_text(n),
        PTest::AnyNode => n != Document::ROOT,
    }
}

/// All matches of one step from a single origin instance, in document
/// order, respecting `[position()=1]` (first witness per instance).
fn step_matches(doc: &Document, origin: NodeId, step: PStep) -> Vec<NodeId> {
    let candidates: Vec<NodeId> = match step.axis {
        PAxis::Child => doc.children(origin).to_vec(),
        PAxis::Descendant => doc.descendants(origin),
        PAxis::DescendantOrSelf => {
            let mut v = vec![origin];
            v.extend(doc.descendants(origin));
            v
        }
    };
    let mut out: Vec<NodeId> = candidates
        .into_iter()
        .filter(|&c| {
            // dos::node() self-matching of the virtual root is allowed
            // only through AnyNode; handled by ptest_matches_dom.
            if step.axis == PAxis::DescendantOrSelf && c == origin && origin == Document::ROOT {
                matches!(step.test, PTest::AnyNode)
            } else {
                ptest_matches_dom(doc, c, step.test)
            }
        })
        .collect();
    if step.pred == Pred::First {
        out.truncate(1);
    }
    out
}

/// Computes, for every document node, the naive role multiset.
fn naive_roles(doc: &Document, tree: &ProjTree) -> HashMap<NodeId, Vec<Role>> {
    let mut acc: HashMap<NodeId, Vec<Role>> = HashMap::new();
    // Instance = one way a projection node matches a document node.
    // Depth-first over the projection tree, carrying instance sets.
    fn rec(
        doc: &Document,
        tree: &ProjTree,
        v: ProjNodeId,
        instances: &[NodeId],
        acc: &mut HashMap<NodeId, Vec<Role>>,
    ) {
        for &child in tree.children(v) {
            let step = tree.step(child);
            let mut child_instances = Vec::new();
            for &origin in instances {
                for m in step_matches(doc, origin, step) {
                    if let Some(role) = tree.role(child) {
                        let aggregate = tree.node(child).aggregate;
                        // Aggregate roles only land on self matches.
                        let is_self = step.axis == PAxis::DescendantOrSelf && m == origin;
                        if !aggregate || is_self {
                            acc.entry(m).or_default().push(role);
                        }
                    }
                    child_instances.push(m);
                }
            }
            rec(doc, tree, child, &child_instances, acc);
        }
    }
    rec(doc, tree, ProjTree::ROOT, &[Document::ROOT], &mut acc);
    acc
}

// ----------------------------------------------------------------------
// Random workload generation
// ----------------------------------------------------------------------

const TAGS: &[&str] = &["a", "b", "c"];

fn random_tree(seed: u64, tags: &mut TagInterner) -> ProjTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let tag_ids: Vec<_> = TAGS.iter().map(|t| tags.intern(t)).collect();
    let mut tree = ProjTree::new();
    let mut role = 0u32;
    let mut frontier = vec![ProjTree::ROOT];
    for _depth in 0..rng.random_range(1..=3) {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..rng.random_range(0..=2usize) {
                let axis = match rng.random_range(0..5) {
                    0 | 1 => PAxis::Child,
                    2 | 3 => PAxis::Descendant,
                    _ => PAxis::DescendantOrSelf,
                };
                let test = match (axis, rng.random_range(0..6)) {
                    (PAxis::DescendantOrSelf, _) => PTest::AnyNode,
                    (_, 0) => PTest::Star,
                    (_, 1) => PTest::Text,
                    (_, i) => PTest::Tag(tag_ids[i % tag_ids.len()]),
                };
                let pred = if axis != PAxis::DescendantOrSelf
                    && !matches!(test, PTest::Text)
                    && rng.random_bool(0.25)
                {
                    Pred::First
                } else {
                    Pred::True
                };
                let node =
                    tree.add_child(parent, PStep::with_pred(axis, test, pred), Some(Role(role)));
                role += 1;
                // dos nodes stay leaves (as in derived trees).
                if axis != PAxis::DescendantOrSelf {
                    next.push(node);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    tree
}

fn random_doc(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::from("<a>");
    build(&mut rng, &mut s, 3, 3);
    s.push_str("</a>");
    return s;

    fn build(rng: &mut StdRng, s: &mut String, fanout: usize, depth: usize) {
        for _ in 0..rng.random_range(0..=fanout) {
            if depth == 0 || rng.random_bool(0.35) {
                if rng.random_bool(0.4) {
                    s.push_str("t x t");
                    // Followed by nothing — ensure single text run between
                    // elements for deterministic token counts.
                    s.push_str("<c></c>");
                } else {
                    let tag = TAGS[rng.random_range(0..TAGS.len())];
                    s.push_str(&format!("<{tag}/>"));
                }
            } else {
                let tag = TAGS[rng.random_range(0..TAGS.len())];
                s.push_str(&format!("<{tag}>"));
                build(rng, s, fanout, depth - 1);
                s.push_str(&format!("</{tag}>"));
            }
        }
    }
}

// ----------------------------------------------------------------------
// The comparison
// ----------------------------------------------------------------------

fn check_case(tree_seed: u64, doc_seed: u64) {
    let mut tags = TagInterner::new();
    let tree = random_tree(tree_seed, &mut tags);
    let doc_text = random_doc(doc_seed);

    // DOM + naive role enumeration.
    let doc = Document::parse_str(&doc_text, &mut tags).expect("doc parses");
    let expected = naive_roles(&doc, &tree);

    // Stream the same document through the matcher, pairing stream events
    // with DOM nodes by construction order (document order). Both the
    // mode-selecting matcher and the forced pooled-frame NFA must agree
    // with the naive semantics (and hence with each other).
    let dom_nodes: Vec<NodeId> = doc.descendants(Document::ROOT);
    let mut lexer = XmlLexer::new(doc_text.as_bytes(), &mut tags);
    let mut matcher = StreamMatcher::new(&tree);
    let mut forced = StreamMatcher::new_forced_nfa(&tree);
    let mut idx = 0usize;
    while let Some(tok) = lexer.next_token().expect("lex") {
        match tok {
            XmlToken::Open(tag) => {
                let node = dom_nodes[idx];
                idx += 1;
                assert!(
                    matches!(doc.node(node).kind, NodeKind::Element(t) if t == tag),
                    "event/node pairing broke"
                );
                let outcome = matcher.open(tag);
                compare(
                    &expected,
                    node,
                    outcome.roles,
                    outcome.buffer,
                    tree_seed,
                    doc_seed,
                );
                let outcome = forced.open(tag);
                compare(
                    &expected,
                    node,
                    outcome.roles,
                    outcome.buffer,
                    tree_seed,
                    doc_seed,
                );
            }
            XmlToken::Close(_) => {
                matcher.close();
                forced.close();
            }
            XmlToken::Text(_) => {
                let node = dom_nodes[idx];
                idx += 1;
                assert!(doc.is_text(node), "event/node pairing broke (text)");
                let outcome = matcher.text();
                compare(
                    &expected,
                    node,
                    outcome.roles,
                    outcome.buffer,
                    tree_seed,
                    doc_seed,
                );
                let outcome = forced.text();
                compare(
                    &expected,
                    node,
                    outcome.roles,
                    outcome.buffer,
                    tree_seed,
                    doc_seed,
                );
            }
        }
    }
    assert_eq!(idx, dom_nodes.len(), "all events paired");
}

fn compare(
    expected: &HashMap<NodeId, Vec<Role>>,
    node: NodeId,
    actual: &[Role],
    buffered: bool,
    ts: u64,
    ds: u64,
) {
    let mut want = expected.get(&node).cloned().unwrap_or_default();
    let mut got = actual.to_vec();
    want.sort();
    got.sort();
    assert_eq!(
        want, got,
        "role mismatch at node {node:?} (tree seed {ts}, doc seed {ds})"
    );
    if !want.is_empty() {
        assert!(buffered, "matched node must be buffered (condition 1)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn matcher_agrees_with_naive_semantics(ts in 0u64..100_000, ds in 0u64..100_000) {
        check_case(ts, ds);
    }
}

/// A couple of pinned regression seeds (fast, deterministic).
#[test]
fn pinned_seeds() {
    for (ts, ds) in [(0, 0), (1, 1), (17, 99), (12345, 54321), (7, 4242)] {
        check_case(ts, ds);
    }
}
