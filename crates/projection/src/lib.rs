//! # gcx-projection — projection trees, roles and the stream matcher
//!
//! This crate implements §2 of the GCX paper:
//!
//! * [`Role`]s and role multisets ([`RoleSet`]) — "roles serve as a metaphor
//!   for the future relevance of a node".
//! * Projection paths ([`path::PStep`], [`path::RelPath`]) with the paper's
//!   axes (`child`, `descendant`, `descendant-or-self`), node tests
//!   (tag, `*`, `text()`, `node()`) and the `[position() = 1]` predicate
//!   used for existence checks.
//! * [`ProjTree`] — the projection tree summarizing a set of projection
//!   paths (paper Fig. 1/5/12), with the `rπ` mapping from tree nodes to
//!   roles.
//! * [`matcher::StreamMatcher`] — matches an XML token stream against a
//!   projection tree, producing for every input node the multiset of roles
//!   to assign (paper Example 1/3) and the two node-preservation decisions
//!   (paper conditions (1) and (2), Example 2).
//! * [`dfa::LazyDfa`] — the lazily constructed deterministic automaton of
//!   paper Fig. 5; used by the matcher whenever the projection tree carries
//!   no positional predicates, with a per-instance NFA fallback otherwise.

pub mod dfa;
pub mod matcher;
pub mod path;
pub mod role;
pub mod tree;

pub use matcher::{Outcome, StreamMatcher};
pub use path::{PAxis, PStep, PTest, Pred, RelPath};
pub use role::{Role, RoleCatalog, RoleSet};
pub use tree::{ProjNodeId, ProjTree};
