//! Projection trees (paper §2, Fig. 1/5/12).
//!
//! A projection tree is an unranked, unordered tree whose root is labeled
//! `/` and whose inner nodes are labeled with location steps. Each node may
//! define a role via the mapping `rπ`; during stream preprojection, a
//! document node that matches projection node `v` is buffered and annotated
//! with role `rπ(v)`.

use crate::path::{PAxis, PStep, PTest, Pred};
use crate::role::Role;
use gcx_xml::TagInterner;
use std::fmt::Write as _;

/// Index of a node in a [`ProjTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProjNodeId(pub u32);

impl ProjNodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of a projection tree.
#[derive(Debug, Clone)]
pub struct ProjNode {
    /// The location step labeling this node (ignored for the root).
    pub step: PStep,
    /// `rπ(v)` — the role this node assigns to matched document nodes, if
    /// any. Variable nodes and dependency-path terminals carry roles;
    /// intermediate chain nodes do not.
    pub role: Option<Role>,
    /// When true, the role is an *aggregate role* (paper §6): it is
    /// assigned only to the subtree root at match time and implicitly
    /// covers the descendants. Only meaningful on `dos::node()` nodes.
    pub aggregate: bool,
    pub parent: Option<ProjNodeId>,
    pub children: Vec<ProjNodeId>,
}

/// A projection tree.
#[derive(Debug, Clone, Default)]
pub struct ProjTree {
    nodes: Vec<ProjNode>,
}

impl ProjTree {
    /// The root node `/`.
    pub const ROOT: ProjNodeId = ProjNodeId(0);

    /// Creates a tree containing only the root.
    pub fn new() -> Self {
        ProjTree {
            nodes: vec![ProjNode {
                step: PStep::new(PAxis::Child, PTest::AnyNode),
                role: None,
                aggregate: false,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a child node labeled `step` under `parent`.
    pub fn add_child(&mut self, parent: ProjNodeId, step: PStep, role: Option<Role>) -> ProjNodeId {
        let id = ProjNodeId(self.nodes.len() as u32);
        self.nodes.push(ProjNode {
            step,
            role,
            aggregate: false,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Adds a whole relative path as a chain under `parent`, assigning
    /// `role` to the terminal node. Returns the terminal node id.
    pub fn add_path(
        &mut self,
        parent: ProjNodeId,
        steps: &[PStep],
        role: Option<Role>,
    ) -> ProjNodeId {
        assert!(!steps.is_empty(), "cannot add an empty path");
        let mut at = parent;
        for (i, s) in steps.iter().enumerate() {
            let r = if i + 1 == steps.len() { role } else { None };
            at = self.add_child(at, *s, r);
        }
        at
    }

    #[inline]
    pub fn node(&self, id: ProjNodeId) -> &ProjNode {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: ProjNodeId) -> &mut ProjNode {
        &mut self.nodes[id.index()]
    }

    pub fn children(&self, id: ProjNodeId) -> &[ProjNodeId] {
        &self.nodes[id.index()].children
    }

    pub fn step(&self, id: ProjNodeId) -> PStep {
        self.nodes[id.index()].step
    }

    pub fn role(&self, id: ProjNodeId) -> Option<Role> {
        self.nodes[id.index()].role
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// All node ids in creation order (root first).
    pub fn ids(&self) -> impl Iterator<Item = ProjNodeId> {
        (0..self.nodes.len() as u32).map(ProjNodeId)
    }

    /// True when any node carries a `[position() = 1]` predicate, which
    /// forces the matcher into per-instance (NFA) mode.
    pub fn has_positional(&self) -> bool {
        self.nodes.iter().any(|n| n.step.pred == Pred::First)
    }

    /// Marks the role of `id` as aggregate (paper §6). Only sensible for
    /// `dos::node()` terminals.
    pub fn set_aggregate(&mut self, id: ProjNodeId) {
        self.nodes[id.index()].aggregate = true;
    }

    /// Removes the role from a node (redundant-role elimination, §6 /
    /// Fig. 12). The node itself stays: it still drives projection.
    pub fn clear_role(&mut self, id: ProjNodeId) -> Option<Role> {
        self.nodes[id.index()].role.take()
    }

    /// The absolute path of `id` as a string (paper's "XPath representation
    /// of v": the path from the root `/` to `v`).
    pub fn xpath_of(&self, id: ProjNodeId, tags: &TagInterner) -> String {
        if id == Self::ROOT {
            return "/".to_string();
        }
        let mut parts = Vec::new();
        let mut at = Some(id);
        while let Some(n) = at {
            if n == Self::ROOT {
                break;
            }
            parts.push(n);
            at = self.node(n).parent;
        }
        parts.reverse();
        let mut s = String::new();
        for p in parts {
            let step = self.step(p);
            match step.axis {
                PAxis::Child => {
                    s.push('/');
                    let _ = write!(s, "{}", step.display_test(tags));
                }
                PAxis::Descendant => {
                    s.push_str("//");
                    let _ = write!(s, "{}", step.display_test(tags));
                }
                PAxis::DescendantOrSelf => {
                    s.push('/');
                    let _ = write!(s, "{}", step.display(tags));
                }
            }
        }
        s
    }

    /// Pretty-prints the tree in the style of paper Fig. 1.
    pub fn pretty(&self, tags: &TagInterner) -> String {
        let mut out = String::new();
        self.pretty_rec(Self::ROOT, 0, tags, &mut out);
        out
    }

    fn pretty_rec(&self, id: ProjNodeId, depth: usize, tags: &TagInterner, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let n = self.node(id);
        if id == Self::ROOT {
            out.push_str("n0: /");
        } else {
            let _ = write!(out, "n{}: {}", id.0, n.step.display(tags));
        }
        if let Some(r) = n.role {
            let _ = write!(out, "  [{r}{}]", if n.aggregate { ", agg" } else { "" });
        }
        out.push('\n');
        for &c in &n.children {
            self.pretty_rec(c, depth + 1, tags, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::RelPath;
    use gcx_xml::TagInterner;

    /// Builds the projection tree of paper Fig. 5(a):
    /// `/a/b/dos::node()` and `/a//b/dos::node()`.
    pub(crate) fn fig5_tree(tags: &mut TagInterner) -> ProjTree {
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut t = ProjTree::new();
        let v2 = t.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), None);
        let v3 = t.add_child(v2, PStep::child(PTest::Tag(b)), None);
        let _v4 = t.add_child(v3, PStep::dos_node(), None);
        let v5 = t.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), None);
        let v6 = t.add_child(v5, PStep::descendant(PTest::Tag(b)), None);
        let _v7 = t.add_child(v6, PStep::dos_node(), None);
        t
    }

    #[test]
    fn build_and_navigate() {
        let mut tags = TagInterner::new();
        let t = fig5_tree(&mut tags);
        assert_eq!(t.len(), 7);
        assert_eq!(t.children(ProjTree::ROOT).len(), 2);
        let v2 = t.children(ProjTree::ROOT)[0];
        assert_eq!(t.xpath_of(v2, &tags), "/a");
        let v3 = t.children(v2)[0];
        assert_eq!(t.xpath_of(v3, &tags), "/a/b");
    }

    #[test]
    fn xpath_descendant_notation() {
        let mut tags = TagInterner::new();
        let t = fig5_tree(&mut tags);
        let v5 = t.children(ProjTree::ROOT)[1];
        let v6 = t.children(v5)[0];
        assert_eq!(t.xpath_of(v6, &tags), "/a//b");
    }

    #[test]
    fn add_path_chains() {
        let mut tags = TagInterner::new();
        let title = tags.intern("title");
        let mut t = ProjTree::new();
        let path = RelPath::single(PStep::child(PTest::Tag(title))).then(PStep::dos_node());
        let end = t.add_path(ProjTree::ROOT, &path.steps, Some(Role(7)));
        assert_eq!(t.role(end), Some(Role(7)));
        let mid = t.node(end).parent.unwrap();
        assert_eq!(t.role(mid), None, "intermediate chain nodes are roleless");
    }

    #[test]
    fn has_positional_detects_pred() {
        let mut tags = TagInterner::new();
        let price = tags.intern("price");
        let mut t = ProjTree::new();
        assert!(!t.has_positional());
        t.add_child(
            ProjTree::ROOT,
            PStep::with_pred(PAxis::Child, PTest::Tag(price), Pred::First),
            Some(Role(4)),
        );
        assert!(t.has_positional());
    }

    #[test]
    fn pretty_shows_roles() {
        let mut tags = TagInterner::new();
        let bib = tags.intern("bib");
        let mut t = ProjTree::new();
        let n = t.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(bib)), Some(Role(2)));
        t.set_aggregate(n);
        let p = t.pretty(&tags);
        assert!(p.contains("bib"));
        assert!(p.contains("r2"));
        assert!(p.contains("agg"));
    }

    #[test]
    fn clear_role_removes() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let mut t = ProjTree::new();
        let n = t.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(x)), Some(Role(1)));
        assert_eq!(t.clear_role(n), Some(Role(1)));
        assert_eq!(t.role(n), None);
    }
}
