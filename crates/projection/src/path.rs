//! Projection path steps (paper §2).
//!
//! A projection tree's inner nodes are labeled with location steps
//! `axis::x[p]` where `axis` is `child`, `descendant` or
//! `descendant-or-self`, `x` is `*`, a tag name, `text()` or the wildcard
//! `node()`, and `p` is either `true` (omitted) or `position() = 1` (used
//! for existence checks, where only the first witness matters).

use gcx_xml::{TagId, TagInterner};
use std::fmt;

/// Axis of a projection path step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PAxis {
    Child,
    Descendant,
    /// `descendant-or-self`, abbreviated "dos" in the paper.
    DescendantOrSelf,
}

impl PAxis {
    /// True for the two axes that reach arbitrarily deep.
    pub fn is_descendant_like(self) -> bool {
        !matches!(self, PAxis::Child)
    }
}

/// Node test of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PTest {
    /// A specific element tag.
    Tag(TagId),
    /// `*` — any element.
    Star,
    /// `text()` — any text node.
    Text,
    /// `node()` — any element or text node.
    AnyNode,
}

impl PTest {
    /// Does this test accept an element with tag `t`?
    #[inline]
    pub fn matches_element(self, t: TagId) -> bool {
        match self {
            PTest::Tag(x) => x == t,
            PTest::Star | PTest::AnyNode => true,
            PTest::Text => false,
        }
    }

    /// Does this test accept a text node?
    #[inline]
    pub fn matches_text(self) -> bool {
        matches!(self, PTest::Text | PTest::AnyNode)
    }

    /// Could `self` and `other` accept the *same* node? Used by the
    /// preservation condition (2) of the paper ("for the same tagname a"),
    /// generalized to wildcards conservatively.
    pub fn overlaps(self, other: PTest) -> bool {
        use PTest::*;
        match (self, other) {
            (Tag(a), Tag(b)) => a == b,
            (Text, Text) => true,
            (Text, Star) | (Star, Text) => false,
            (Tag(_), Text) | (Text, Tag(_)) => false,
            (AnyNode, _) | (_, AnyNode) => true,
            (Star, _) | (_, Star) => true,
        }
    }
}

/// Step predicate: `[true]` (omitted) or `[position() = 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pred {
    #[default]
    True,
    /// `[position() = 1]` — keep only the first witness (per origin
    /// instance; see `matcher`).
    First,
}

/// One location step `axis::test[pred]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PStep {
    pub axis: PAxis,
    pub test: PTest,
    pub pred: Pred,
}

impl PStep {
    pub fn new(axis: PAxis, test: PTest) -> Self {
        PStep {
            axis,
            test,
            pred: Pred::True,
        }
    }

    pub fn with_pred(axis: PAxis, test: PTest, pred: Pred) -> Self {
        PStep { axis, test, pred }
    }

    /// `child::t`
    pub fn child(test: PTest) -> Self {
        Self::new(PAxis::Child, test)
    }

    /// `descendant::t`
    pub fn descendant(test: PTest) -> Self {
        Self::new(PAxis::Descendant, test)
    }

    /// `dos::node()` — the step the paper appends to dependency paths for
    /// output and comparison expressions.
    pub fn dos_node() -> Self {
        Self::new(PAxis::DescendantOrSelf, PTest::AnyNode)
    }

    /// Renders the step in the paper's notation (`/price\[1\]`,
    /// `dos::node()`, `//book`, …).
    pub fn display<'a>(&'a self, tags: &'a TagInterner) -> StepDisplay<'a> {
        StepDisplay { step: self, tags }
    }

    /// Renders only `test[pred]`, without the axis prefix (used when the
    /// axis is rendered as `/` or `//` by the caller).
    pub fn display_test<'a>(&'a self, tags: &'a TagInterner) -> TestDisplay<'a> {
        TestDisplay { step: self, tags }
    }
}

/// A relative path: a sequence of steps (used in dependencies and in
/// `signOff($x/π, r)` statements).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RelPath {
    pub steps: Vec<PStep>,
}

impl RelPath {
    /// The empty path ε (refers to the variable's own binding).
    pub fn empty() -> Self {
        RelPath { steps: Vec::new() }
    }

    pub fn single(step: PStep) -> Self {
        RelPath { steps: vec![step] }
    }

    pub fn from_steps(steps: Vec<PStep>) -> Self {
        RelPath { steps }
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step, returning the extended path.
    pub fn then(mut self, step: PStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Renders in the paper's notation, e.g. `title/dos::node()`.
    pub fn display<'a>(&'a self, tags: &'a TagInterner) -> RelPathDisplay<'a> {
        RelPathDisplay { path: self, tags }
    }
}

/// Display helper for [`PStep`].
pub struct StepDisplay<'a> {
    step: &'a PStep,
    tags: &'a TagInterner,
}

impl fmt::Display for StepDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step.axis {
            PAxis::Child => {}
            PAxis::Descendant => write!(f, "descendant::")?,
            PAxis::DescendantOrSelf => write!(f, "dos::")?,
        }
        match self.step.test {
            PTest::Tag(t) => write!(f, "{}", self.tags.name(t))?,
            PTest::Star => write!(f, "*")?,
            PTest::Text => write!(f, "text()")?,
            PTest::AnyNode => write!(f, "node()")?,
        }
        if self.step.pred == Pred::First {
            write!(f, "[1]")?;
        }
        Ok(())
    }
}

/// Display helper rendering only the node test and predicate of a step.
pub struct TestDisplay<'a> {
    step: &'a PStep,
    tags: &'a TagInterner,
}

impl fmt::Display for TestDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step.test {
            PTest::Tag(t) => write!(f, "{}", self.tags.name(t))?,
            PTest::Star => write!(f, "*")?,
            PTest::Text => write!(f, "text()")?,
            PTest::AnyNode => write!(f, "node()")?,
        }
        if self.step.pred == Pred::First {
            write!(f, "[1]")?;
        }
        Ok(())
    }
}

/// Display helper for [`RelPath`].
pub struct RelPathDisplay<'a> {
    path: &'a RelPath,
    tags: &'a TagInterner,
}

impl fmt::Display for RelPathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.steps.is_empty() {
            return write!(f, "ε");
        }
        for (i, s) in self.path.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{}", s.display(self.tags))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcx_xml::TagInterner;

    #[test]
    fn test_matching() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        assert!(PTest::Tag(a).matches_element(a));
        assert!(!PTest::Tag(a).matches_element(b));
        assert!(PTest::Star.matches_element(a));
        assert!(!PTest::Star.matches_text());
        assert!(PTest::Text.matches_text());
        assert!(!PTest::Text.matches_element(a));
        assert!(PTest::AnyNode.matches_element(a));
        assert!(PTest::AnyNode.matches_text());
    }

    #[test]
    fn overlap_rules() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        assert!(PTest::Tag(a).overlaps(PTest::Tag(a)));
        assert!(!PTest::Tag(a).overlaps(PTest::Tag(b)));
        assert!(PTest::Tag(a).overlaps(PTest::Star));
        assert!(PTest::Tag(a).overlaps(PTest::AnyNode));
        assert!(!PTest::Text.overlaps(PTest::Star));
        assert!(PTest::Text.overlaps(PTest::AnyNode));
        assert!(!PTest::Tag(a).overlaps(PTest::Text));
    }

    #[test]
    fn display_notation() {
        let mut tags = TagInterner::new();
        let price = tags.intern("price");
        let s = PStep::with_pred(PAxis::Child, PTest::Tag(price), Pred::First);
        assert_eq!(s.display(&tags).to_string(), "price[1]");
        assert_eq!(PStep::dos_node().display(&tags).to_string(), "dos::node()");
        let p = RelPath::single(PStep::child(PTest::Tag(price))).then(PStep::dos_node());
        assert_eq!(p.display(&tags).to_string(), "price/dos::node()");
        assert_eq!(RelPath::empty().display(&tags).to_string(), "ε");
    }

    #[test]
    fn descendant_like() {
        assert!(!PAxis::Child.is_descendant_like());
        assert!(PAxis::Descendant.is_descendant_like());
        assert!(PAxis::DescendantOrSelf.is_descendant_like());
    }
}
