//! The lazily constructed DFA of paper §2 (Fig. 5).
//!
//! "Similar to processing XPath on streams, we realize stream preprojection
//! with a lazily constructed deterministic finite automaton." A DFA state
//! represents a path shape of the input document and *maps to a multiset of
//! projection tree nodes* (paper Example 1); the multiplicity of a node is
//! the number of possible path-step assignments that lead to matches.
//!
//! States are created on demand: the key of a state is the canonical pair
//! (match multiset, pending-descendant-edge multiset). Transitions are
//! memoized in *dense per-state tables* — one `Vec<StateId>` per state,
//! indexed by [`TagId`] and lazily grown with a sentinel for
//! not-yet-built entries — so repeated document shapes (the common case
//! in data-centric XML like XMark) cost one bounds-checked array load per
//! opening tag instead of a hash probe.
//!
//! The DFA is only used when the projection tree carries no
//! `[position()=1]` predicates; those need per-instance bookkeeping (see
//! [`crate::matcher`]).

use crate::path::{PAxis, Pred};
use crate::role::Role;
use crate::tree::{ProjNodeId, ProjTree};
use gcx_xml::{FxBuildHasher, TagId};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::ops::Range;

/// A DFA state id.
pub type StateId = u32;

/// A `(start, end)` range into one of the DFA's shared arenas. States
/// used to own three `Vec`s each; per-run DFA construction dominated the
/// engine's residual allocation profile (Q13's "allocation pocket"), so
/// state payloads now live in shared arenas and a state is three ranges.
#[derive(Debug, Clone, Copy)]
struct ArenaRange {
    start: u32,
    end: u32,
}

impl ArenaRange {
    #[inline]
    fn range(self) -> Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// One DFA state: the canonical multisets plus precomputed verdicts.
#[derive(Debug)]
struct DfaState {
    /// Matched projection nodes with their `via_self` flag, sorted
    /// (range into `matches_arena`).
    matches: ArenaRange,
    /// Pending descendant-like edges (multiset, sorted; range into
    /// `pending_arena`).
    pending: ArenaRange,
    /// Roles assigned to a document node entering this state (range into
    /// `roles_arena`).
    entry_roles: ArenaRange,
    /// Condition (2): children of nodes in this state must be preserved.
    preserve_children: bool,
    /// Nothing below a node in this state can match.
    dead_below: bool,
    /// Cached text verdict for text children of nodes in this state
    /// (buffer?, roles range into `roles_arena`).
    text: Option<(bool, ArenaRange)>,
}

/// Sentinel for a transition that has not been constructed yet.
const NO_STATE: StateId = StateId::MAX;

/// The lazy DFA. See module docs.
#[derive(Debug)]
pub struct LazyDfa {
    states: Vec<DfaState>,
    /// Content hash → state id. Lookups hash the canonical multisets and
    /// verify by content against the candidate — no key allocation. A
    /// genuine 64-bit collision between *different* contents merely
    /// loses the earlier entry's discoverability (a behaviorally
    /// identical duplicate state would be built); correctness never
    /// depends on the hash.
    index: HashMap<u64, StateId, FxBuildHasher>,
    /// Dense transition matrix: `trans[state * stride + tag.index()]` is
    /// the target state, [`NO_STATE`] when not yet built. One flat
    /// allocation growing amortized with states (and re-laid-out on the
    /// rare stride growth) instead of one row `Vec` per state.
    trans: Vec<StateId>,
    /// Row width of `trans` (power of two > the highest tag index seen).
    stride: usize,
    /// Shared payload arenas (see [`DfaState`]).
    matches_arena: Vec<(ProjNodeId, bool)>,
    pending_arena: Vec<ProjNodeId>,
    roles_arena: Vec<Role>,
    /// Reused construction scratch: the candidate match/pending multisets
    /// of the state being built. Only live inside
    /// [`LazyDfa::transition`]/[`LazyDfa::text_outcome`].
    scratch_matches: Vec<(ProjNodeId, bool)>,
    scratch_pending: Vec<ProjNodeId>,
}

impl LazyDfa {
    /// The initial state (the virtual document root).
    pub const INITIAL: StateId = 0;

    /// Builds the DFA with its initial state from the root match set
    /// (which already includes the root dos self-closure).
    pub fn new(tree: &ProjTree, root_matches: &[(ProjNodeId, bool)]) -> Self {
        debug_assert!(!tree.has_positional(), "DFA mode requires no predicates");
        // Pre-sized for the common case (a handful of states over a
        // double-digit tag vocabulary): lazy DFA construction used to be
        // the engine's dominant residual allocation source per run.
        let mut dfa = LazyDfa {
            states: Vec::with_capacity(16),
            index: HashMap::with_capacity_and_hasher(16, FxBuildHasher::default()),
            trans: Vec::with_capacity(16 * 64),
            stride: 64,
            matches_arena: Vec::with_capacity(64),
            pending_arena: Vec::with_capacity(64),
            roles_arena: Vec::with_capacity(32),
            scratch_matches: Vec::with_capacity(16),
            scratch_pending: Vec::with_capacity(16),
        };
        let mut matches = std::mem::take(&mut dfa.scratch_matches);
        matches.extend_from_slice(root_matches);
        let mut pending = std::mem::take(&mut dfa.scratch_pending);
        collect_pending_into(tree, &matches, &mut pending);
        let id = dfa.intern_scratch(tree, &mut matches, &mut pending);
        dfa.scratch_matches = matches;
        dfa.scratch_pending = pending;
        debug_assert_eq!(id, Self::INITIAL);
        dfa
    }

    /// Number of constructed states (grows lazily).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no state has been constructed (never the case after
    /// `new`).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    #[inline]
    fn matches_of(&self, s: StateId) -> &[(ProjNodeId, bool)] {
        &self.matches_arena[self.states[s as usize].matches.range()]
    }

    #[inline]
    fn pending_of(&self, s: StateId) -> &[ProjNodeId] {
        &self.pending_arena[self.states[s as usize].pending.range()]
    }

    /// The paper's state mapping: the multiset of projection-tree nodes a
    /// state maps to, excluding `dos` self-closure entries (matching the
    /// presentation in Example 1). Returns a lazy iterator — no `Vec` is
    /// allocated; collect at the call site when a materialized multiset
    /// is needed.
    pub fn mapping(&self, s: StateId) -> impl Iterator<Item = ProjNodeId> + '_ {
        self.matches_of(s)
            .iter()
            .filter(|&&(_, via_self)| !via_self)
            .map(|&(n, _)| n)
    }

    /// The full match multiset including self-closure entries.
    pub fn full_matches(&self, s: StateId) -> &[(ProjNodeId, bool)] {
        self.matches_of(s)
    }

    /// Roles assigned on entering `s`.
    pub fn entry_roles(&self, s: StateId) -> &[Role] {
        &self.roles_arena[self.states[s as usize].entry_roles.range()]
    }

    /// True when `s` maps to at least one projection node.
    pub fn has_matches(&self, s: StateId) -> bool {
        !self.matches_of(s).is_empty()
    }

    /// Condition (2) verdict for children of nodes in `s`.
    pub fn preserve_children(&self, s: StateId) -> bool {
        self.states[s as usize].preserve_children
    }

    /// True when nothing below a node in state `s` can match.
    pub fn is_dead(&self, s: StateId) -> bool {
        self.states[s as usize].dead_below
    }

    /// Takes the transition `(from, tag)`, constructing the target state on
    /// first use. Memoized transitions are one array load in the dense
    /// per-state row; construction itself reuses the DFA's scratch
    /// buffers and allocates only for genuinely new states.
    pub fn transition(&mut self, tree: &ProjTree, from: StateId, tag: TagId) -> StateId {
        if tag.index() < self.stride {
            let to = self.trans[from as usize * self.stride + tag.index()];
            if to != NO_STATE {
                return to;
            }
        }
        let mut new = std::mem::take(&mut self.scratch_matches);
        new.clear();
        for &(m, _) in self.matches_of(from) {
            for &c in tree.children(m) {
                let s = tree.step(c);
                if s.axis == PAxis::Child && s.test.matches_element(tag) {
                    new.push((c, false));
                }
            }
        }
        for &p in self.pending_of(from) {
            if tree.step(p).test.matches_element(tag) {
                new.push((p, false));
            }
        }
        // dos self-closure.
        let mut i = 0;
        while i < new.len() {
            let v = new[i].0;
            for &c in tree.children(v) {
                let s = tree.step(c);
                if s.axis == PAxis::DescendantOrSelf && s.test.matches_element(tag) {
                    debug_assert_eq!(s.pred, Pred::True);
                    new.push((c, true));
                }
            }
            i += 1;
        }
        let mut pending = std::mem::take(&mut self.scratch_pending);
        pending.clear();
        pending.extend_from_slice(self.pending_of(from)); // inherited
        collect_pending_into(tree, &new, &mut pending);
        let to = self.intern_scratch(tree, &mut new, &mut pending);
        self.scratch_matches = new;
        self.scratch_pending = pending;
        if tag.index() >= self.stride {
            self.grow_stride(tag.index() + 1);
        }
        self.trans[from as usize * self.stride + tag.index()] = to;
        to
    }

    /// Widens the transition matrix to cover tag indices up to at least
    /// `need`, re-laying the rows out at the new stride. Rare: strides
    /// are powers of two, so a run over a `t`-tag vocabulary re-lays out
    /// at most `log2(t) - 5` times.
    fn grow_stride(&mut self, need: usize) {
        let new_stride = need.next_power_of_two().max(self.stride * 2);
        let mut new_trans = vec![NO_STATE; self.states.len() * new_stride];
        for s in 0..self.states.len() {
            new_trans[s * new_stride..s * new_stride + self.stride]
                .copy_from_slice(&self.trans[s * self.stride..(s + 1) * self.stride]);
        }
        self.trans = new_trans;
        self.stride = new_stride;
    }

    /// The verdict for a text child of a node in state `s`: whether to
    /// buffer it and which roles to assign. Memoized per state; the
    /// cached roles are returned by reference, so repeated text children
    /// of the same document shape cost no allocation.
    pub fn text_outcome(&mut self, tree: &ProjTree, s: StateId) -> (bool, &[Role]) {
        if self.states[s as usize].text.is_none() {
            let mut new = std::mem::take(&mut self.scratch_matches);
            new.clear();
            for &(m, _) in self.matches_of(s) {
                for &c in tree.children(m) {
                    let st = tree.step(c);
                    if st.axis == PAxis::Child && st.test.matches_text() {
                        new.push((c, false));
                    }
                }
            }
            for &p in self.pending_of(s) {
                if tree.step(p).test.matches_text() {
                    new.push((p, false));
                }
            }
            let mut i = 0;
            while i < new.len() {
                let v = new[i].0;
                for &c in tree.children(v) {
                    let st = tree.step(c);
                    if st.axis == PAxis::DescendantOrSelf && st.test.matches_text() {
                        new.push((c, true));
                    }
                }
                i += 1;
            }
            let start = self.roles_arena.len() as u32;
            entry_roles_into(tree, &new, &mut self.roles_arena);
            let range = ArenaRange {
                start,
                end: self.roles_arena.len() as u32,
            };
            self.states[s as usize].text = Some((!new.is_empty(), range));
            self.scratch_matches = new;
        }
        let cached = self.states[s as usize].text.expect("just computed");
        (cached.0, &self.roles_arena[cached.1.range()])
    }

    /// Content hash of a canonical (matches, pending) pair.
    fn content_hash(&self, matches: &[(ProjNodeId, bool)], pending: &[ProjNodeId]) -> u64 {
        let mut h = self.index.hasher().build_hasher();
        matches.hash(&mut h);
        pending.hash(&mut h);
        h.finish()
    }

    /// Canonicalizes (sorts) the scratch multisets and interns the state
    /// they describe: an existing state is found by content hash plus
    /// verification (no allocation); a new state copies the scratch into
    /// the shared arenas.
    fn intern_scratch(
        &mut self,
        tree: &ProjTree,
        matches: &mut Vec<(ProjNodeId, bool)>,
        pending: &mut Vec<ProjNodeId>,
    ) -> StateId {
        matches.sort_unstable();
        pending.sort_unstable();
        let hash = self.content_hash(matches, pending);
        if let Some(&id) = self.index.get(&hash) {
            if self.matches_of(id) == matches.as_slice()
                && self.pending_of(id) == pending.as_slice()
            {
                return id;
            }
            // A 64-bit content collision: fall through and build a
            // duplicate state (behaviorally identical; see `index` docs).
        }
        let m_start = self.matches_arena.len() as u32;
        self.matches_arena.extend_from_slice(matches);
        let p_start = self.pending_arena.len() as u32;
        self.pending_arena.extend_from_slice(pending);
        let r_start = self.roles_arena.len() as u32;
        entry_roles_into(tree, matches, &mut self.roles_arena);
        let preserve_children = preserve_condition(tree, matches, pending);
        let dead_below = pending.is_empty()
            && !preserve_children
            && matches.iter().all(|&(m, _)| tree.children(m).is_empty());
        let id = self.states.len() as StateId;
        debug_assert!(id != NO_STATE, "state space exhausted");
        self.states.push(DfaState {
            matches: ArenaRange {
                start: m_start,
                end: self.matches_arena.len() as u32,
            },
            pending: ArenaRange {
                start: p_start,
                end: self.pending_arena.len() as u32,
            },
            entry_roles: ArenaRange {
                start: r_start,
                end: self.roles_arena.len() as u32,
            },
            preserve_children,
            dead_below,
            text: None,
        });
        // One fresh (unbuilt) row in the transition matrix.
        self.trans.resize(self.states.len() * self.stride, NO_STATE);
        self.index.insert(hash, id);
        id
    }
}

/// Appends the descendant-like child edges of `matches` to `pending`
/// (the caller seeds `pending` with the inherited multiset).
fn collect_pending_into(
    tree: &ProjTree,
    matches: &[(ProjNodeId, bool)],
    pending: &mut Vec<ProjNodeId>,
) {
    for &(m, _) in matches {
        for &c in tree.children(m) {
            if tree.step(c).axis.is_descendant_like() {
                pending.push(c);
            }
        }
    }
}

/// Role instances assigned when entering a state with these matches;
/// aggregate roles only on self matches (paper §6). Appended to the
/// caller's buffer (the DFA's shared role arena).
fn entry_roles_into(tree: &ProjTree, matches: &[(ProjNodeId, bool)], roles: &mut Vec<Role>) {
    for &(m, via_self) in matches {
        let n = tree.node(m);
        if let Some(r) = n.role {
            if !n.aggregate || via_self {
                roles.push(r);
            }
        }
    }
}

/// Condition (2), same logic as the NFA path (see `matcher`).
fn preserve_condition(
    tree: &ProjTree,
    matches: &[(ProjNodeId, bool)],
    pending: &[ProjNodeId],
) -> bool {
    if pending.is_empty() {
        return false;
    }
    for &(m, _) in matches {
        for &c in tree.children(m) {
            let s = tree.step(c);
            if s.axis != PAxis::Child {
                continue;
            }
            for &p in pending {
                if s.test.overlaps(tree.step(p).test) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{PStep, PTest};
    use gcx_xml::TagInterner;

    /// Projection tree of Fig. 5(a): /a/b/dos::node() and /a//b/dos::node().
    /// Returns (tree, [v2, v3, v4, v5, v6, v7]).
    fn fig5_tree(tags: &mut TagInterner) -> (ProjTree, Vec<ProjNodeId>) {
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut t = ProjTree::new();
        let v2 = t.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), None);
        let v3 = t.add_child(v2, PStep::child(PTest::Tag(b)), None);
        let v4 = t.add_child(v3, PStep::dos_node(), None);
        let v5 = t.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), None);
        let v6 = t.add_child(v5, PStep::descendant(PTest::Tag(b)), None);
        let v7 = t.add_child(v6, PStep::dos_node(), None);
        (t, vec![v2, v3, v4, v5, v6, v7])
    }

    /// Paper Example 1, first part: state mappings for the Fig. 5 DFA over
    /// the Fig. 5(a) tree.
    #[test]
    fn example1_fig5_mappings() {
        let mut tags = TagInterner::new();
        let (tree, v) = fig5_tree(&mut tags);
        let a = tags.get("a").unwrap();
        let b = tags.get("b").unwrap();
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);

        // q0 maps to {v1} (the root).
        assert_eq!(
            dfa.mapping(LazyDfa::INITIAL).collect::<Vec<_>>(),
            vec![ProjTree::ROOT]
        );
        // q1 = δ(q0, a) maps to {v2, v5}.
        let q1 = dfa.transition(&tree, LazyDfa::INITIAL, a);
        assert_eq!(dfa.mapping(q1).collect::<Vec<_>>(), vec![v[0], v[3]]);
        // q2 = δ(q1, a) maps to ∅.
        let q2 = dfa.transition(&tree, q1, a);
        assert_eq!(dfa.mapping(q2).count(), 0);
        // q3 = δ(q2, b) maps to {v6}.
        let q3 = dfa.transition(&tree, q2, b);
        assert_eq!(dfa.mapping(q3).collect::<Vec<_>>(), vec![v[4]]);
        // q4 = δ(q1, b) maps to {v3, v6}.
        let q4 = dfa.transition(&tree, q1, b);
        assert_eq!(dfa.mapping(q4).collect::<Vec<_>>(), vec![v[1], v[4]]);
    }

    /// Paper Example 1, second part: over the Fig. 4(b) tree (//a//b),
    /// state q3 (path /a/a/b) maps to the multiset {v3, v3}.
    #[test]
    fn example1_fig4b_multiplicity() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let b = tags.intern("b");
        let mut tree = ProjTree::new();
        let v2 = tree.add_child(
            ProjTree::ROOT,
            PStep::descendant(PTest::Tag(a)),
            Some(Role(2)),
        );
        let v3 = tree.add_child(v2, PStep::descendant(PTest::Tag(b)), Some(Role(3)));
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);
        let q1 = dfa.transition(&tree, LazyDfa::INITIAL, a);
        let q2 = dfa.transition(&tree, q1, a);
        let q3 = dfa.transition(&tree, q2, b);
        assert_eq!(dfa.mapping(q3).collect::<Vec<_>>(), vec![v3, v3]);
        assert_eq!(dfa.entry_roles(q3), &[Role(3), Role(3)]);
        // And /a/b maps to {v3} only.
        let q4 = dfa.transition(&tree, q1, b);
        assert_eq!(dfa.mapping(q4).collect::<Vec<_>>(), vec![v3]);
    }

    /// Paper Example 2: in state q1, reading another `a` yields a state
    /// with no matches, but q1's preserve_children flag forces structural
    /// preservation.
    #[test]
    fn example2_preservation_flag() {
        let mut tags = TagInterner::new();
        let (tree, _) = fig5_tree(&mut tags);
        let a = tags.get("a").unwrap();
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);
        let q1 = dfa.transition(&tree, LazyDfa::INITIAL, a);
        assert!(
            dfa.preserve_children(q1),
            "child ./b and descendant .//b edges for the same tag force preservation"
        );
        let q2 = dfa.transition(&tree, q1, a);
        assert!(!dfa.has_matches(q2));
        // q0 has both child edges (/a) but no pending overlap (no pending at
        // all), so no preservation there.
        assert!(!dfa.preserve_children(LazyDfa::INITIAL));
    }

    /// Transitions are memoized: same (state, tag) does not grow the DFA.
    #[test]
    fn laziness_and_memoization() {
        let mut tags = TagInterner::new();
        let (tree, _) = fig5_tree(&mut tags);
        let a = tags.get("a").unwrap();
        let b = tags.get("b").unwrap();
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);
        let q1 = dfa.transition(&tree, LazyDfa::INITIAL, a);
        let before = dfa.len();
        let q1_again = dfa.transition(&tree, LazyDfa::INITIAL, a);
        assert_eq!(q1, q1_again);
        assert_eq!(dfa.len(), before);
        let _ = dfa.transition(&tree, q1, b);
        assert!(dfa.len() > before);
    }

    /// Sibling-equivalent paths collapse to the same state (canonical
    /// multiset keys).
    #[test]
    fn state_sharing_across_siblings() {
        let mut tags = TagInterner::new();
        let (tree, _) = fig5_tree(&mut tags);
        let a = tags.get("a").unwrap();
        let c = tags.intern("c");
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);
        let q1 = dfa.transition(&tree, LazyDfa::INITIAL, a);
        // /a/c and /a/c/c — the dead state self-collapses.
        let qc = dfa.transition(&tree, q1, c);
        let qcc = dfa.transition(&tree, qc, c);
        // Both have no matches; q1's pending (.//b) is inherited by both, so
        // they are the same state.
        assert_eq!(qc, qcc);
    }

    /// Text verdicts are cached and respect dos::node().
    #[test]
    fn text_outcome_cached() {
        let mut tags = TagInterner::new();
        let x = tags.intern("x");
        let mut tree = ProjTree::new();
        let vx = tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(x)), Some(Role(1)));
        tree.add_child(vx, PStep::dos_node(), Some(Role(5)));
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);
        let qx = dfa.transition(&tree, LazyDfa::INITIAL, x);
        let (buf, roles) = dfa.text_outcome(&tree, qx);
        assert!(buf);
        let roles = roles.to_vec();
        assert_eq!(roles, vec![Role(5)]);
        let (buf2, roles2) = dfa.text_outcome(&tree, qx);
        assert_eq!((buf2, roles2.to_vec()), (buf, roles));
    }

    /// Dead-state detection.
    #[test]
    fn dead_state() {
        let mut tags = TagInterner::new();
        let a = tags.intern("a");
        let z = tags.intern("z");
        let mut tree = ProjTree::new();
        tree.add_child(ProjTree::ROOT, PStep::child(PTest::Tag(a)), Some(Role(1)));
        let mut dfa = LazyDfa::new(&tree, &[(ProjTree::ROOT, false)]);
        let qz = dfa.transition(&tree, LazyDfa::INITIAL, z);
        assert!(dfa.is_dead(qz));
        let qa = dfa.transition(&tree, LazyDfa::INITIAL, a);
        assert!(dfa.is_dead(qa), "a has no children in the projection tree");
        assert!(!dfa.is_dead(LazyDfa::INITIAL));
    }
}
