//! Roles and role multisets (paper §2, "Preliminaries").
//!
//! A *role-set* is a multiset over roles: `m : roles → ℕ` maps each role to
//! its multiplicity. Nodes in the buffer are annotated with role-sets; a
//! node can carry the same role several times when a descendant-axis path
//! matches it in several ways (paper Example 1: `//a//b` matches `/a/a/b`
//! with multiplicity 2).

use std::fmt;

/// An interned role. Each projection-tree node defines one role
/// (`rπ : nodes → roles`), and each query subexpression is assigned one
/// (`rQ : XQ → roles`, injective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Role(pub u32);

impl Role {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Inline capacity of a [`RoleSet`]: distinct roles beyond this spill to
/// a heap vector. Two covers the overwhelming majority of buffered nodes
/// (a variable role plus a dos/aggregate role), making role bookkeeping
/// heap-free on the hot path.
const ROLESET_INLINE: usize = 2;

/// Sentinel for `inline_len` marking a spilled set (entries live in the
/// heap vector instead of the inline array).
const SPILLED: u8 = u8::MAX;

/// A multiset of roles, optimized for the common cases of zero, one or two
/// instances.
///
/// Stored as a sorted sequence of `(role, multiplicity)` pairs — inline
/// (no heap) up to [`ROLESET_INLINE`] distinct roles, spilled wholesale
/// to a `Vec` beyond that. The paper notes that "the memory overhead is
/// small" is a key advantage of reference-counting-style schemes, so the
/// representation matters: most buffered nodes never touch the allocator
/// for their roles at all.
#[derive(Clone)]
pub struct RoleSet {
    inline: [(Role, u32); ROLESET_INLINE],
    /// `0..=ROLESET_INLINE` when inline; [`SPILLED`] when in `spill`.
    inline_len: u8,
    spill: Vec<(Role, u32)>,
}

impl Default for RoleSet {
    fn default() -> Self {
        RoleSet {
            inline: [(Role(0), 0); ROLESET_INLINE],
            inline_len: 0,
            spill: Vec::new(),
        }
    }
}

impl RoleSet {
    /// The empty role-set (all multiplicities zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// The sorted entries, wherever they live.
    #[inline]
    fn entries(&self) -> &[(Role, u32)] {
        if self.inline_len == SPILLED {
            &self.spill
        } else {
            &self.inline[..self.inline_len as usize]
        }
    }

    /// True when every multiplicity is zero.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Total number of role *instances* (sum of multiplicities).
    pub fn total(&self) -> u32 {
        self.entries().iter().map(|&(_, c)| c).sum()
    }

    /// Number of distinct roles present.
    pub fn distinct(&self) -> usize {
        self.entries().len()
    }

    /// Multiplicity of `role` in this set.
    pub fn count(&self, role: Role) -> u32 {
        match self.entries().binary_search_by_key(&role, |&(r, _)| r) {
            Ok(i) => self.entries()[i].1,
            Err(_) => 0,
        }
    }

    /// `addρ(r, n)` from the paper: increments the multiplicity of `role`.
    pub fn add(&mut self, role: Role) {
        self.add_n(role, 1);
    }

    /// Adds `n` instances of `role` at once.
    pub fn add_n(&mut self, role: Role, n: u32) {
        if n == 0 {
            return;
        }
        match self.entries().binary_search_by_key(&role, |&(r, _)| r) {
            Ok(i) => {
                if self.inline_len == SPILLED {
                    self.spill[i].1 += n;
                } else {
                    self.inline[i].1 += n;
                }
            }
            Err(i) => self.insert_at(i, (role, n)),
        }
    }

    fn insert_at(&mut self, i: usize, entry: (Role, u32)) {
        if self.inline_len == SPILLED {
            self.spill.insert(i, entry);
            return;
        }
        let len = self.inline_len as usize;
        if len < ROLESET_INLINE {
            // Shift the tail right within the array.
            let mut j = len;
            while j > i {
                self.inline[j] = self.inline[j - 1];
                j -= 1;
            }
            self.inline[i] = entry;
            self.inline_len += 1;
            return;
        }
        // Inline full: spill everything (the cleared spill vector keeps
        // its capacity across slot recycling, so steady-state churn of
        // role-heavy nodes re-spills without allocating).
        self.spill.clear();
        self.spill.reserve(ROLESET_INLINE + 1);
        self.spill.extend_from_slice(&self.inline[..len]);
        self.spill.insert(i, entry);
        self.inline_len = SPILLED;
    }

    /// Removes every entry, keeping any spill allocation for reuse
    /// (buffer node slots recycle their role-sets on the hot path).
    pub fn clear(&mut self) {
        self.spill.clear();
        self.inline_len = 0;
    }

    /// `remρ(r, n)` from the paper: decrements the multiplicity of `role`.
    ///
    /// Removal of a role with multiplicity zero is *undefined* in the paper
    /// (safety requirement (1)); here it returns `false` and leaves the set
    /// unchanged, so callers can surface the violation.
    #[must_use]
    pub fn remove(&mut self, role: Role) -> bool {
        self.remove_n(role, 1) == 1
    }

    /// Removes up to `n` instances; returns how many were actually removed.
    pub fn remove_n(&mut self, role: Role, n: u32) -> u32 {
        match self.entries().binary_search_by_key(&role, |&(r, _)| r) {
            Ok(i) => {
                let spilled = self.inline_len == SPILLED;
                let slot = if spilled {
                    &mut self.spill[i]
                } else {
                    &mut self.inline[i]
                };
                let have = slot.1;
                let removed = have.min(n);
                if removed == have {
                    if spilled {
                        self.spill.remove(i);
                    } else {
                        // Shift the tail left within the array.
                        let len = self.inline_len as usize;
                        for j in i..len - 1 {
                            self.inline[j] = self.inline[j + 1];
                        }
                        self.inline_len -= 1;
                    }
                } else {
                    slot.1 -= removed;
                }
                removed
            }
            Err(_) => 0,
        }
    }

    /// Iterates `(role, multiplicity)` pairs in role order.
    pub fn iter(&self) -> impl Iterator<Item = (Role, u32)> + '_ {
        self.entries().iter().copied()
    }

    /// Approximate *heap* footprint in bytes (the inline storage is part
    /// of the containing struct and charged there).
    pub fn approx_bytes(&self) -> usize {
        self.spill.capacity() * std::mem::size_of::<(Role, u32)>()
    }
}

impl fmt::Debug for RoleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.entries()).finish()
    }
}

impl PartialEq for RoleSet {
    fn eq(&self, other: &Self) -> bool {
        // Compare logical content: stale inline slots and spill state
        // must not matter.
        self.entries() == other.entries()
    }
}

impl Eq for RoleSet {}

impl fmt::Display for RoleSet {
    /// Renders like the paper's figures: `{r2,r3,r3}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (r, c) in self.iter() {
            for _ in 0..c {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{r}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<Role> for RoleSet {
    fn from_iter<I: IntoIterator<Item = Role>>(iter: I) -> Self {
        let mut s = RoleSet::new();
        for r in iter {
            s.add(r);
        }
        s
    }
}

/// Allocates roles and remembers a human-readable origin for each, used by
/// traces, the pretty-printer and error messages.
#[derive(Debug, Default, Clone)]
pub struct RoleCatalog {
    origins: Vec<String>,
}

impl RoleCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh role with a description of the query expression
    /// it belongs to (the paper's injective `rQ`).
    pub fn fresh(&mut self, origin: impl Into<String>) -> Role {
        let r = Role(self.origins.len() as u32);
        self.origins.push(origin.into());
        r
    }

    /// Description of the expression that defined `role`.
    pub fn origin(&self, role: Role) -> &str {
        &self.origins[role.index()]
    }

    /// Number of allocated roles.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Iterates all roles in allocation order.
    pub fn roles(&self) -> impl Iterator<Item = Role> {
        (0..self.origins.len() as u32).map(Role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut s = RoleSet::new();
        let r1 = Role(1);
        let r2 = Role(2);
        s.add(r1);
        s.add(r1);
        s.add(r2);
        assert_eq!(s.count(r1), 2);
        assert_eq!(s.count(r2), 1);
        assert_eq!(s.total(), 3);
        assert!(s.remove(r1));
        assert_eq!(s.count(r1), 1);
        assert!(s.remove(r1));
        assert!(!s.remove(r1), "removal at multiplicity zero is rejected");
        assert!(!s.is_empty());
        assert!(s.remove(r2));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_n_partial() {
        let mut s = RoleSet::new();
        s.add_n(Role(7), 5);
        assert_eq!(s.remove_n(Role(7), 3), 3);
        assert_eq!(s.count(Role(7)), 2);
        assert_eq!(s.remove_n(Role(7), 10), 2);
        assert!(s.is_empty());
        assert_eq!(s.remove_n(Role(7), 1), 0);
    }

    #[test]
    fn display_matches_paper_figures() {
        let mut s = RoleSet::new();
        s.add(Role(3));
        s.add(Role(3));
        s.add(Role(2));
        assert_eq!(s.to_string(), "{r2,r3,r3}");
        assert_eq!(RoleSet::new().to_string(), "{}");
    }

    #[test]
    fn from_iterator() {
        let s: RoleSet = [Role(1), Role(2), Role(1)].into_iter().collect();
        assert_eq!(s.count(Role(1)), 2);
        assert_eq!(s.count(Role(2)), 1);
    }

    #[test]
    fn catalog_allocates_sequentially() {
        let mut c = RoleCatalog::new();
        let a = c.fresh("for $x");
        let b = c.fresh("exists($x/price)");
        assert_eq!(a, Role(0));
        assert_eq!(b, Role(1));
        assert_eq!(c.origin(b), "exists($x/price)");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut s = RoleSet::new();
        s.add_n(Role(0), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn spill_and_unspill_roundtrip() {
        // More distinct roles than the inline capacity: spill, stay
        // sorted, survive removals and a clear/reuse cycle.
        let mut s = RoleSet::new();
        for r in [5u32, 1, 9, 3, 7] {
            s.add(Role(r));
        }
        assert_eq!(s.distinct(), 5);
        assert_eq!(
            s.iter().map(|(r, _)| r.0).collect::<Vec<_>>(),
            vec![1, 3, 5, 7, 9],
            "sorted across the spill boundary"
        );
        for r in [1u32, 3, 5, 7, 9] {
            assert!(s.remove(Role(r)));
        }
        assert!(s.is_empty());
        assert_eq!(s, RoleSet::new(), "empty spilled set equals fresh set");
        // Recycled: clear + refill goes inline again, then re-spills
        // without growing past the kept capacity.
        s.clear();
        let cap = s.approx_bytes();
        for r in 0..5u32 {
            s.add(Role(r));
        }
        assert_eq!(s.distinct(), 5);
        assert!(s.approx_bytes() >= cap);
    }

    #[test]
    fn inline_sets_are_heap_free() {
        let mut s = RoleSet::new();
        s.add(Role(4));
        s.add_n(Role(2), 3);
        assert_eq!(s.approx_bytes(), 0, "two distinct roles stay inline");
        assert_eq!(s.count(Role(2)), 3);
        assert_eq!(s.total(), 4);
        s.add(Role(6)); // third distinct role spills
        assert!(s.approx_bytes() > 0);
        assert_eq!(
            s.iter().map(|(r, c)| (r.0, c)).collect::<Vec<_>>(),
            vec![(2, 3), (4, 1), (6, 1)]
        );
    }
}
